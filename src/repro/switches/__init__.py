"""Switch dataplane substrate: match-action pipeline, memory map, TPP execution."""

from .counters import PortStats, StatsBlock, UTILIZATION_SCALE, utilization_basis_points
from .memory import SwitchMemory
from .parser import ParseResult, TPPParser, parse_graph_edges
from .pipeline import Pipeline, PipelineResult, Stage
from .switch import DEFAULT_UTILIZATION_INTERVAL_S, TPPSwitch
from .tables import FlowEntry, FlowTable, Group, GroupTable

__all__ = [
    "DEFAULT_UTILIZATION_INTERVAL_S", "FlowEntry", "FlowTable", "Group", "GroupTable",
    "ParseResult", "Pipeline", "PipelineResult", "PortStats", "Stage", "StatsBlock",
    "SwitchMemory", "TPPParser", "TPPSwitch", "UTILIZATION_SCALE",
    "parse_graph_edges", "utilization_basis_points",
]
