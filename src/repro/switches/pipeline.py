"""The abstract ingress/egress match-action pipeline (Figure 6).

A :class:`Pipeline` is a list of :class:`Stage` objects.  Each stage owns a
flow table (which the memory map exposes as ``Stage$i:``) and eight
application-specific registers (``Stage$i:Reg0..Reg7``), mirroring the
NetFPGA prototype's "64 kbit block RAM and 8 registers at each stage".

The functional simulator collapses the per-stage TCPU execution units into a
single sequential pass (the reordering freedom of §3.5 only matters for
hardware latency, which :mod:`repro.hardware.latency_model` accounts for
separately), but the stage structure is real: forwarding happens in the first
stage that produces a match, and the matched stage index is recorded in the
packet's metadata so TPPs can read it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.packet import Packet

from .tables import FlowEntry, FlowTable


@dataclass
class Stage:
    """One match-action stage: a flow table plus app-specific registers."""

    index: int
    table: FlowTable
    registers: list[int] = field(default_factory=lambda: [0] * 8)

    def read_register(self, reg: int) -> Optional[int]:
        if 0 <= reg < len(self.registers):
            return self.registers[reg]
        return None

    def write_register(self, reg: int, value: int) -> bool:
        if 0 <= reg < len(self.registers):
            self.registers[reg] = value
            return True
        return False


@dataclass
class PipelineResult:
    """Outcome of running a packet through the ingress pipeline."""

    action: str                      # "forward" | "group" | "drop" | "no_match"
    output_port: Optional[int] = None
    group_id: Optional[int] = None
    matched_entry: Optional[FlowEntry] = None
    matched_stage: int = 0


class Pipeline:
    """A sequence of match-action stages."""

    def __init__(self, num_stages: int = 4, name: str = "ingress") -> None:
        if num_stages < 1:
            raise ValueError("a pipeline needs at least one stage")
        self.name = name
        self.stages = [Stage(index=i, table=FlowTable(name=f"{name}-stage{i}"))
                       for i in range(num_stages)]

    def __len__(self) -> int:
        return len(self.stages)

    def stage(self, index: int) -> Optional[Stage]:
        if 0 <= index < len(self.stages):
            return self.stages[index]
        return None

    @property
    def forwarding_table(self) -> FlowTable:
        """The table routing entries are installed into (stage 0 by convention)."""
        return self.stages[0].table

    def process(self, packet: Packet) -> PipelineResult:
        """Run the packet through the stages; first match decides forwarding."""
        for stage in self.stages:
            if not stage.table.entries:
                continue
            entry = stage.table.lookup(packet)
            if entry is None:
                continue
            if entry.action == "drop":
                return PipelineResult(action="drop", matched_entry=entry,
                                      matched_stage=stage.index)
            if entry.action == "group":
                return PipelineResult(action="group", group_id=entry.group_id,
                                      matched_entry=entry, matched_stage=stage.index)
            return PipelineResult(action="forward", output_port=entry.output_port,
                                  matched_entry=entry, matched_stage=stage.index)
        return PipelineResult(action="no_match")
