"""The abstract ingress/egress match-action pipeline (Figure 6).

A :class:`Pipeline` is a list of :class:`Stage` objects.  Each stage owns a
flow table (which the memory map exposes as ``Stage$i:``) and eight
application-specific registers (``Stage$i:Reg0..Reg7``), mirroring the
NetFPGA prototype's "64 kbit block RAM and 8 registers at each stage".

The functional simulator collapses the per-stage TCPU execution units into a
single sequential pass (the reordering freedom of §3.5 only matters for
hardware latency, which :mod:`repro.hardware.latency_model` accounts for
separately), but the stage structure is real: forwarding happens in the first
stage that produces a match, and the matched stage index is recorded in the
packet's metadata so TPPs can read it.

Batched processing
------------------

Traffic is bursty, and consecutive packets at a switch usually belong to the
same flow.  :class:`FlowLookupCache` memoizes the last forwarding decision
keyed by the packet's flow identity and replays the per-table statistics
updates a real lookup would have made, so same-flow runs skip the
match-action scan entirely.  The cache only engages while *every* installed
entry matches on flow-identity fields (the common case — routes match on
``dst``); any entry matching on another attribute, or any table mutation,
disables or invalidates it, so results are always identical to
:meth:`Pipeline.process`.  :meth:`Pipeline.process_batch` and the switch's
batched receive path are built on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.packet import Packet

from .tables import FlowEntry, FlowTable


@dataclass
class Stage:
    """One match-action stage: a flow table plus app-specific registers."""

    index: int
    table: FlowTable
    registers: list[int] = field(default_factory=lambda: [0] * 8)

    def read_register(self, reg: int) -> Optional[int]:
        if 0 <= reg < len(self.registers):
            return self.registers[reg]
        return None

    def write_register(self, reg: int, value: int) -> bool:
        if 0 <= reg < len(self.registers):
            self.registers[reg] = value
            return True
        return False


@dataclass
class PipelineResult:
    """Outcome of running a packet through the ingress pipeline."""

    action: str                      # "forward" | "group" | "drop" | "no_match"
    output_port: Optional[int] = None
    group_id: Optional[int] = None
    matched_entry: Optional[FlowEntry] = None
    matched_stage: int = 0


class Pipeline:
    """A sequence of match-action stages."""

    def __init__(self, num_stages: int = 4, name: str = "ingress") -> None:
        if num_stages < 1:
            raise ValueError("a pipeline needs at least one stage")
        self.name = name
        self.stages = [Stage(index=i, table=FlowTable(name=f"{name}-stage{i}"))
                       for i in range(num_stages)]
        # One shared mutation cell across every stage table: flow-lookup
        # memos detect any install/remove by reading a single integer.
        self.generation: list[int] = [0]
        for stage in self.stages:
            stage.table.generation = self.generation

    def __len__(self) -> int:
        return len(self.stages)

    def stage(self, index: int) -> Optional[Stage]:
        if 0 <= index < len(self.stages):
            return self.stages[index]
        return None

    @property
    def forwarding_table(self) -> FlowTable:
        """The table routing entries are installed into (stage 0 by convention)."""
        return self.stages[0].table

    def process(self, packet: Packet) -> PipelineResult:
        """Run the packet through the stages; first match decides forwarding."""
        for stage in self.stages:
            if not stage.table.entries:
                continue
            entry = stage.table.lookup(packet)
            if entry is None:
                continue
            if entry.action == "drop":
                return PipelineResult(action="drop", matched_entry=entry,
                                      matched_stage=stage.index)
            if entry.action == "group":
                return PipelineResult(action="group", group_id=entry.group_id,
                                      matched_entry=entry, matched_stage=stage.index)
            return PipelineResult(action="forward", output_port=entry.output_port,
                                  matched_entry=entry, matched_stage=stage.index)
        return PipelineResult(action="no_match")

    def lookup_cache(self) -> "FlowLookupCache":
        """A fresh same-flow memoizing view of this pipeline (see module docs)."""
        return FlowLookupCache(self)

    def process_batch(self, packets: list[Packet]) -> list[PipelineResult]:
        """Process a list of packets in one call, skipping re-lookup for
        same-flow runs.  Results and statistics match per-packet
        :meth:`process` calls exactly."""
        process = FlowLookupCache(self).process
        return [process(packet) for packet in packets]


#: Packet attributes that together identify a flow for memoization purposes —
#: the field-name view of :meth:`repro.net.packet.Packet.flow_key`.  An
#: installed entry is "flow-keyed" when every field it matches on is in this
#: set; only then can a decision be replayed for an identical key.
FLOW_KEY_FIELDS = frozenset(
    {"src", "dst", "protocol", "sport", "dport", "vlan", "flow_id"})


class FlowLookupCache:
    """Memoizes forwarding decisions keyed by the packet's flow identity.

    Semantics-preserving by construction: the memo only engages while every
    entry in the pipeline matches exclusively on :data:`FLOW_KEY_FIELDS`
    (re-checked, and the memo dropped, whenever any table's shared
    generation cell moves), and a replayed decision re-applies the same
    lookup/match statistics the skipped scan would have counted, so TPPs
    reading ``[Stage$i:LookupPackets]`` observe identical values either way.
    """

    #: Bound on distinct memoized flows; the memo is cleared wholesale when
    #: exceeded (flow populations in the reproduced experiments are small).
    MEMO_LIMIT = 4096

    __slots__ = ("pipeline", "_memo", "_generation", "_safe")

    def __init__(self, pipeline: Pipeline) -> None:
        self.pipeline = pipeline
        # flow key -> (PipelineResult, consulted tables, matched table).
        self._memo: dict[tuple, tuple] = {}
        self._generation: Optional[int] = None
        self._safe = False

    def process(self, packet: Packet) -> PipelineResult:
        pipeline = self.pipeline
        generation = pipeline.generation[0]
        if generation != self._generation:
            self._generation = generation
            self._memo.clear()
            self._safe = all(
                FLOW_KEY_FIELDS.issuperset(entry.match)
                for stage in pipeline.stages
                for entry in stage.table.entries)
        if not self._safe:
            return pipeline.process(packet)
        key = packet.flow_key()
        hit = self._memo.get(key)
        if hit is not None:
            result, consulted, matched_table = hit
            size = packet.size
            for table in consulted:
                table.lookup_stats.count(size)
            entry = result.matched_entry
            if entry is not None:
                entry.stats.count(size)
                matched_table.match_stats.count(size)
            return result
        result = pipeline.process(packet)
        stages = pipeline.stages
        if result.action == "no_match":
            consulted = tuple(stage.table for stage in stages if stage.table.entries)
            matched_table = None
        else:
            consulted = tuple(stage.table
                              for stage in stages[:result.matched_stage + 1]
                              if stage.table.entries)
            matched_table = stages[result.matched_stage].table
        if len(self._memo) >= self.MEMO_LIMIT:
            self._memo.clear()
        self._memo[key] = (result, consulted, matched_table)
        return result
