"""Switch memory: resolving TPP virtual addresses against live switch state.

:class:`SwitchMemory` is the glue between the TCPU (which only knows 16-bit
virtual addresses and a per-packet context) and the concrete switch model
(ports, queues, flow tables, registers).  It implements the
:class:`repro.core.tcpu.MemoryInterface` protocol.

Read-only vs read-write follows Table 2: statistics and metadata are
readable; the per-link application-specific registers, per-stage registers,
and a packet's output port / queue / path tag are writable (the latter is how
"fast network updates" and output-port rewriting work).
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING, Optional

from repro.core import addressing
from repro.core.tcpu import PacketContext

if TYPE_CHECKING:  # pragma: no cover
    from .switch import TPPSwitch

#: Field-level readers mirroring :meth:`PacketContext.metadata_word` (same
#: offsets, same values); used by :meth:`SwitchMemory.read_resolver`.
_METADATA_RESOLVERS = {
    0: lambda context: context.input_port,
    1: lambda context: context.output_port,
    2: lambda context: context.output_queue,
    3: lambda context: context.matched_entry_id,
    4: lambda context: context.matched_entry_version,
    5: lambda context: context.matched_stage,
    6: lambda context: context.hop_number,
    7: lambda context: context.path_id,
    8: lambda context: context.packet_length,
    9: lambda context: int(context.arrival_time * 1e6) & 0xFFFFFFFF,
}


class SwitchMemory:
    """Memory-mapped view of one switch's state."""

    def __init__(self, switch: "TPPSwitch") -> None:
        self.switch = switch
        # Per-port application-specific registers: (port index, register) -> value.
        self.app_registers: dict[tuple[int, int], int] = {}
        # Region dispatch table: one dict lookup on the hot path instead of a
        # string-comparison ladder.
        self._readers = {
            "switch": self._read_switch_region,
            "stage": self._read_stage_region,
            "link": self._read_link_region,
            "queue": self._read_queue_region,
            "packet_metadata": self._read_metadata_region,
            "dynamic_link": self._read_dynamic_link_region,
            "dynamic_queue": self._read_dynamic_queue_region,
        }

    # ------------------------------------------------------------------ read
    def read(self, address: int, context: PacketContext) -> Optional[int]:
        try:
            decoded = addressing.decode(address)
        except addressing.AddressError:
            return None
        reader = self._readers.get(decoded.region)
        if reader is None:
            return None
        return reader(decoded, context)

    def read_resolver(self, address: int):
        """An address-specialized reader: ``resolver(context)`` ≡ ``read(address, context)``.

        The compiled-trace engine (:mod:`repro.core.trace`) binds one of
        these per read instruction, paying the address decode and region
        dispatch once per (program, switch) instead of once per packet.  The
        hottest regions (switch globals, packet-relative queue statistics,
        packet metadata) get field-level closures that read the same live
        state the generic ladder would; everything else wraps the per-region
        reader ``read`` itself dispatches to, so the paths cannot diverge —
        the differential sweep in ``tests/test_trace.py`` runs both engines
        over every specialized field.
        """
        try:
            decoded = addressing.decode(address)
        except addressing.AddressError:
            return lambda context: None
        if decoded.region == "switch":
            return self._resolve_switch_field(decoded.field_offset)
        if decoded.region == "dynamic_queue":
            return self._resolve_dynamic_queue_field(decoded.field_offset)
        if decoded.region == "packet_metadata":
            return _METADATA_RESOLVERS.get(decoded.field_offset,
                                           lambda context: None)
        reader = self._readers.get(decoded.region)
        if reader is None:
            return lambda context: None
        return lambda context, _reader=reader, _decoded=decoded: _reader(_decoded, context)

    def _resolve_switch_field(self, offset: int):
        """Field-level closures mirroring :meth:`_read_switch` branch for branch."""
        switch = self.switch
        fields = addressing.SWITCH_FIELDS
        if offset == fields["SwitchID"]:
            return lambda context: switch.switch_id
        if offset == fields["VersionNumber"]:
            return lambda context: switch.forwarding_version
        if offset == fields["Clock"]:
            return lambda context: int(switch.sim.now * switch.clock_hz) & 0xFFFFFFFF
        if offset == fields["ClockFrequency"]:
            return lambda context: int(switch.clock_hz)
        if offset == fields["VendorID"]:
            return lambda context: switch.vendor_id
        if offset == fields["NumPorts"]:
            return lambda context: len(switch.ports)
        if offset == fields["Uptime"]:
            return lambda context: int(switch.sim.now * 1000)
        return lambda context: None

    def _resolve_dynamic_queue_field(self, offset: int):
        """Field-level closures mirroring :meth:`_read_queue` for the
        packet-relative queue region (port/queue taken from the context)."""
        fields = addressing.QUEUE_FIELDS
        attr = {
            fields["QueueOccupancy"]: "occupancy_packets",
            fields["QueueOccupancyBytes"]: "occupancy_bytes",
            fields["Drop-Packets"]: "packets_dropped_total",
            fields["Drop-Bytes"]: "bytes_dropped_total",
            fields["TX-Packets"]: "packets_dequeued_total",
            fields["TX-Bytes"]: "bytes_dequeued_total",
        }.get(offset)
        if attr is None:
            return lambda context: None
        get_field = operator.attrgetter("queue." + attr)
        ports = self.switch.ports          # the live list object; grows in place

        def read_field(context):
            port_index = context.output_port
            if not 0 <= port_index < len(ports):
                return None
            if context.output_queue not in (0, None):
                # One queue per port (see _read_queue): other ids fail gracefully.
                return None
            return get_field(ports[port_index])

        return read_field

    def _read_switch_region(self, decoded, context: PacketContext) -> Optional[int]:
        return self._read_switch(decoded.field_offset)

    def _read_stage_region(self, decoded, context: PacketContext) -> Optional[int]:
        return self._read_stage(decoded.index, decoded.field_offset)

    def _read_link_region(self, decoded, context: PacketContext) -> Optional[int]:
        return self._read_link(decoded.index, decoded.field_offset)

    def _read_queue_region(self, decoded, context: PacketContext) -> Optional[int]:
        return self._read_queue(decoded.index, decoded.queue_index, decoded.field_offset)

    def _read_metadata_region(self, decoded, context: PacketContext) -> Optional[int]:
        return context.metadata_word(decoded.field_offset)

    def _read_dynamic_link_region(self, decoded, context: PacketContext) -> Optional[int]:
        port = self._dynamic_port(decoded.field_offset, context)
        return self._read_link(port, decoded.field_offset)

    def _read_dynamic_queue_region(self, decoded, context: PacketContext) -> Optional[int]:
        return self._read_queue(context.output_port, context.output_queue,
                                decoded.field_offset)

    # ----------------------------------------------------------------- write
    def write(self, address: int, value: int, context: PacketContext) -> bool:
        try:
            decoded = addressing.decode(address)
        except addressing.AddressError:
            return False

        if decoded.region in ("link", "dynamic_link"):
            port = (decoded.index if decoded.region == "link"
                    else self._dynamic_port(decoded.field_offset, context))
            return self._write_link(port, decoded.field_offset, value)
        if decoded.region == "stage":
            stage = self.switch.pipeline.stage(decoded.index)
            if stage is None:
                return False
            reg = decoded.field_offset - addressing.STAGE_FIELDS["Reg0"]
            return stage.write_register(reg, value) if reg >= 0 else False
        if decoded.region == "packet_metadata":
            return self._write_packet_metadata(decoded.field_offset, value, context)
        # Everything else (switch globals, queue stats, counters) is read-only.
        return False

    # ------------------------------------------------------------ resolvers
    def _dynamic_port(self, field_offset: int, context: PacketContext) -> int:
        """Packet-relative Link: fields — RX stats come from the input port."""
        if addressing.is_dynamic_rx_field(field_offset):
            return context.input_port
        return context.output_port

    def _read_switch(self, offset: int) -> Optional[int]:
        switch = self.switch
        fields = addressing.SWITCH_FIELDS
        if offset == fields["SwitchID"]:
            return switch.switch_id
        if offset == fields["VersionNumber"]:
            return switch.forwarding_version
        if offset == fields["Clock"]:
            return int(switch.sim.now * switch.clock_hz) & 0xFFFFFFFF
        if offset == fields["ClockFrequency"]:
            return int(switch.clock_hz)
        if offset == fields["VendorID"]:
            return switch.vendor_id
        if offset == fields["NumPorts"]:
            return len(switch.ports)
        if offset == fields["Uptime"]:
            return int(switch.sim.now * 1000)
        return None

    def _read_stage(self, stage_index: int, offset: int) -> Optional[int]:
        stage = self.switch.pipeline.stage(stage_index)
        if stage is None:
            return None
        fields = addressing.STAGE_FIELDS
        table = stage.table
        if offset == fields["VersionNumber"]:
            return table.version
        if offset == fields["ReferenceCount"]:
            return table.reference_count
        if offset == fields["LookupPackets"]:
            return table.lookup_stats.packets
        if offset == fields["LookupBytes"]:
            return table.lookup_stats.bytes
        if offset == fields["MatchPackets"]:
            return table.match_stats.packets
        if offset == fields["MatchBytes"]:
            return table.match_stats.bytes
        if offset >= fields["Reg0"]:
            return stage.read_register(offset - fields["Reg0"])
        return None

    def _read_link(self, port_index: Optional[int], offset: int) -> Optional[int]:
        if port_index is None or not 0 <= port_index < len(self.switch.ports):
            return None
        port = self.switch.ports[port_index]
        stats = self.switch.port_stats[port_index]
        fields = addressing.LINK_FIELDS
        if offset == fields["ID"]:
            return self.switch.link_id(port_index)
        if offset == fields["QueueSizeBytes"]:
            return port.queue.occupancy_bytes
        if offset == fields["QueueSizePackets"]:
            return port.queue.occupancy_packets
        if offset == fields["TX-Bytes"]:
            return port.tx_bytes
        if offset == fields["TX-Packets"]:
            return port.tx_packets
        if offset == fields["TX-Utilization"]:
            return stats.tx_utilization_bp
        if offset == fields["RX-Bytes"]:
            return port.rx_bytes
        if offset == fields["RX-Packets"]:
            return port.rx_packets
        if offset == fields["RX-Utilization"]:
            return stats.rx_utilization_bp
        if offset == fields["Drop-Bytes"]:
            return port.queue.bytes_dropped_total
        if offset == fields["Drop-Packets"]:
            return port.queue.packets_dropped_total
        if offset == fields["PortStatus"]:
            return 1 if (port.up and port.link is not None and port.link.up) else 0
        if offset == fields["TX-Rate"]:
            return int(stats.transmit.byte_rate)
        if offset == fields["RX-Rate"]:
            return int(stats.receive.byte_rate)
        if offset == fields["Capacity"]:
            return int(port.link.rate_bps // 1_000_000) if port.link else 0
        if offset >= fields["AppSpecific_0"]:
            reg = offset - fields["AppSpecific_0"]
            if reg >= 8:
                return None
            return self.app_registers.get((port_index, reg), 0)
        return None

    def _write_link(self, port_index: Optional[int], offset: int, value: int) -> bool:
        if port_index is None or not 0 <= port_index < len(self.switch.ports):
            return False
        fields = addressing.LINK_FIELDS
        if offset >= fields["AppSpecific_0"]:
            reg = offset - fields["AppSpecific_0"]
            if reg >= 8:
                return False
            self.app_registers[(port_index, reg)] = value
            return True
        return False

    def _read_queue(self, port_index: Optional[int], queue_index: Optional[int],
                    offset: int) -> Optional[int]:
        if port_index is None or not 0 <= port_index < len(self.switch.ports):
            return None
        if queue_index not in (0, None):
            # The model keeps a single queue per port; other queue ids do not exist,
            # so instructions addressing them fail gracefully.
            return None
        queue = self.switch.ports[port_index].queue
        fields = addressing.QUEUE_FIELDS
        if offset == fields["QueueOccupancy"]:
            return queue.occupancy_packets
        if offset == fields["QueueOccupancyBytes"]:
            return queue.occupancy_bytes
        if offset == fields["Drop-Packets"]:
            return queue.packets_dropped_total
        if offset == fields["Drop-Bytes"]:
            return queue.bytes_dropped_total
        if offset == fields["TX-Packets"]:
            return queue.packets_dequeued_total
        if offset == fields["TX-Bytes"]:
            return queue.bytes_dequeued_total
        return None

    def _write_packet_metadata(self, offset: int, value: int, context: PacketContext) -> bool:
        fields = addressing.PACKET_METADATA_FIELDS
        if offset == fields["OutputPort"]:
            if not 0 <= value < len(self.switch.ports):
                return False
            context.output_port = value
            return True
        if offset == fields["OutputQueue"]:
            context.output_queue = value
            return True
        if offset == fields["PathID"]:
            context.path_id = value
            return True
        return False
