"""The TPP-capable switch.

:class:`TPPSwitch` glues the substrate together: packets arriving on a port
run through the ingress match-action pipeline (forwarding decision), the
per-packet context is assembled, the embedded TCPU executes any attached TPP
against the switch's memory map, and the packet is queued on its output port.

This mirrors the execution point the paper's hardware uses: TPP instructions
execute inside the ingress/egress pipeline *after* the forwarding decision,
so reads observe the packet-consistent values (§3.2) — e.g.
``[PacketMetadata:OutputPort]`` is the port the packet really leaves on and
``[Queue:QueueOccupancy]`` is the occupancy of that port's queue at the
moment this packet is enqueued behind it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.tcpu import PacketContext, TCPU
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.port import Port
from repro.net.sim import Simulator

from .counters import PortStats
from .memory import SwitchMemory
from .parser import TPPParser
from .pipeline import Pipeline
from .tables import FlowEntry, Group, GroupTable

#: How often switches refresh link utilisation counters (§2.2: every millisecond).
DEFAULT_UTILIZATION_INTERVAL_S = 1e-3


class TPPSwitch(Node):
    """A switch that forwards packets and executes TPPs at line rate."""

    def __init__(self, sim: Simulator, name: str, switch_id: int,
                 num_stages: int = 4,
                 tpp_enabled: bool = True,
                 write_enabled: bool = True,
                 compile_traces: bool = False,
                 forwarding_latency_s: float = 0.0,
                 utilization_interval_s: float = DEFAULT_UTILIZATION_INTERVAL_S,
                 utilization_ewma_alpha: float = 0.0,
                 vendor_id: int = 0xACE1,
                 clock_hz: float = 1e9) -> None:
        super().__init__(sim, name)
        self.switch_id = switch_id
        self.vendor_id = vendor_id
        self.clock_hz = clock_hz
        self.tpp_enabled = tpp_enabled
        self.forwarding_latency_s = forwarding_latency_s
        self.utilization_interval_s = utilization_interval_s
        self.utilization_ewma_alpha = utilization_ewma_alpha

        self.pipeline = Pipeline(num_stages=num_stages)
        self.group_table = GroupTable()
        self.memory = SwitchMemory(self)
        # compile_traces selects the compiled-trace TCPU engine (see
        # repro.core.trace); it may also be toggled later through the
        # ``compile_traces`` property — the Scenario layer does exactly that.
        self.tcpu = TCPU(write_enabled=write_enabled, compile_traces=compile_traces)
        self.parser = TPPParser()
        self.port_stats: list[PortStats] = []
        # Same-flow forwarding memo (semantics-preserving; see pipeline docs).
        self._lookup_cache = self.pipeline.lookup_cache()
        self._fwd_name = f"fwd@{name}"

        # Drop visibility hook (§2.6: dropped packets can be sent to a collector).
        self.drop_callback: Optional[Callable[[Packet, "TPPSwitch"], None]] = None

        # Aggregate counters.
        self.packets_forwarded = 0
        self.packets_dropped = 0
        self.tpp_packets_seen = 0
        # TPP hops where an instruction was skipped with SKIPPED_PACKET_FULL
        # (§3.3: the packet ran out of memory at *this* switch).  The end
        # host sees the same signal as TPP.out_of_room / tpps_truncated.
        self.tpps_packet_full = 0

        self._stats_process = sim.schedule_periodic(utilization_interval_s,
                                                    self._update_port_stats)

    # ------------------------------------------------------------------ ports
    def add_port(self, queue_capacity_bytes: int = 512 * 1024,
                 queue_capacity_packets: Optional[int] = None) -> Port:
        port = super().add_port(queue_capacity_bytes, queue_capacity_packets)
        self.port_stats.append(PortStats())
        return port

    def link_id(self, port_index: int) -> int:
        """Globally-unique-ish link identifier exposed as ``[Link:ID]``."""
        return (self.switch_id * 64 + port_index) & 0xFFFF

    @property
    def compile_traces(self) -> bool:
        """Whether this switch's TCPU runs compiled per-program traces."""
        return self.tcpu.compile_traces

    @compile_traces.setter
    def compile_traces(self, enabled: bool) -> None:
        self.tcpu.compile_traces = enabled

    @property
    def forwarding_version(self) -> int:
        """A switch-wide forwarding-state generation number."""
        return sum(stage.table.version for stage in self.pipeline.stages)

    # ----------------------------------------------------------- provisioning
    def install_route(self, dst: str, output_port: int, priority: int = 0,
                      stage: int = 0) -> FlowEntry:
        """Install an exact-match forwarding entry for destination ``dst``."""
        entry = FlowEntry(match={"dst": dst}, action="forward", output_port=output_port,
                          priority=priority, installed_at=self.sim.now)
        return self.pipeline.stages[stage].table.install(entry)

    def install_group_route(self, dst: str, group_id: int, priority: int = 0,
                            stage: int = 0) -> FlowEntry:
        """Install a forwarding entry that resolves through a multipath group."""
        if group_id not in self.group_table:
            raise KeyError(f"group {group_id} must be installed before routes reference it")
        entry = FlowEntry(match={"dst": dst}, action="group", group_id=group_id,
                          priority=priority, installed_at=self.sim.now)
        return self.pipeline.stages[stage].table.install(entry)

    def install_group(self, group_id: int, ports: list[int], policy: str = "hash",
                      salt: int = 0) -> Group:
        """Install a multipath group (ECMP hash, VLAN-selected, or dport-selected)."""
        group = Group(group_id=group_id, ports=list(ports), policy=policy, salt=salt)
        self.group_table.install(group)
        return group

    # ------------------------------------------------------------- forwarding
    def receive(self, packet: Packet, in_port: Port) -> None:
        self._receive_one(packet, in_port.index, PacketContext())

    def receive_batch(self, packets: list[Packet], in_port: Port) -> None:
        """Process a burst of packets arriving on one port in a single call.

        The batched injection path: one :class:`PacketContext` is reused
        across the whole burst (every field is rewritten per packet) and the
        same-flow lookup memo turns back-to-back packets of one flow into a
        single match-action scan.  Per-packet results, statistics, and any
        events scheduled are identical to sequential :meth:`receive` calls.
        """
        context = PacketContext()
        in_index = in_port.index
        for packet in packets:
            self._receive_one(packet, in_index, context)

    def _receive_one(self, packet: Packet, in_index: int,
                     context: PacketContext) -> None:
        packet.record_hop(self.name)
        if self.recorder is not None:
            self.recorder.on_switch_recv(self, packet, in_index)
        result = self._lookup_cache.process(packet)

        action = result.action
        if action == "forward":
            output_port = result.output_port
        elif action == "group":
            output_port = self.group_table.select(result.group_id, packet)
        else:
            self._drop(packet, reason=f"{action} at {self.name}")
            return
        if output_port is None or not 0 <= output_port < len(self.ports):
            self._drop(packet, reason=f"invalid output port at {self.name}")
            return

        entry = result.matched_entry
        context.input_port = in_index
        context.output_port = output_port
        context.output_queue = 0
        context.matched_entry_id = entry.entry_id if entry else 0
        context.matched_entry_version = entry.version if entry else 0
        context.matched_stage = result.matched_stage
        context.hop_number = packet.tpp.hop_number if packet.tpp is not None else 0
        context.path_id = packet.vlan
        context.packet_length = packet.size
        context.arrival_time = self.sim.now

        if packet.tpp is not None and self.tpp_enabled:
            if self.parser.classify(packet):
                self.tpp_packets_seen += 1
                execution = self.tcpu.execute_program(packet.tpp, self.memory,
                                                      context)
                if execution.packet_full:
                    self.tpps_packet_full += 1
                if self.recorder is not None:
                    self.recorder.on_tpp_exec(self, packet, execution)
                packet.tpp.advance_hop()
                # A TPP may have rewritten the packet's output port (Table 2
                # marks it writable); honour the redirection.
                output_port = context.output_port
                # Reflective TPPs (§4.4): the target switch turns the probe
                # around so the sender gets its answer in half a round trip.
                if (packet.metadata.get("tpp_reflect_switch") == self.switch_id
                        and not packet.metadata.get("tpp_reflected")):
                    packet.metadata["tpp_reflected"] = True
                    packet.src, packet.dst = packet.dst, packet.src
                    reflected = self.pipeline.process(packet)
                    if reflected.action == "group":
                        output_port = self.group_table.select(reflected.group_id, packet)
                    elif reflected.action == "forward" and reflected.output_port is not None:
                        output_port = reflected.output_port
                    else:
                        self._drop(packet, reason=f"no return route at {self.name}")
                        return

        self.packets_forwarded += 1
        if self.forwarding_latency_s > 0:
            self.sim.schedule(self.forwarding_latency_s, self._enqueue, packet, output_port,
                              name=self._fwd_name)
        else:
            self._enqueue(packet, output_port)

    def _enqueue(self, packet: Packet, output_port: int) -> None:
        self.ports[output_port].send(packet)

    def _drop(self, packet: Packet, reason: str) -> None:
        packet.dropped = True
        packet.drop_reason = reason
        self.packets_dropped += 1
        if self.recorder is not None:
            # Pipeline drops (drop action, invalid output port, no return
            # route) have no Port.drops_by_reason category; the recorder
            # files them under "pipeline" at the switch itself.
            self.recorder.on_drop(self.name, self.name, packet,
                                  "pipeline", reason)
        if self.drop_callback is not None:
            self.drop_callback(packet, self)

    def on_packet_dropped(self, packet: Packet, port: Port) -> None:
        self.packets_dropped += 1
        if self.drop_callback is not None:
            self.drop_callback(packet, self)

    # ------------------------------------------------------------- statistics
    def _update_port_stats(self) -> None:
        """Refresh per-port rates/utilisation from the raw port counters."""
        for port, stats in zip(self.ports, self.port_stats):
            stats.transmit.packets = port.tx_packets
            stats.transmit.bytes = port.tx_bytes
            stats.receive.packets = port.rx_packets
            stats.receive.bytes = port.rx_bytes
            stats.drops.packets = port.queue.packets_dropped_total
            stats.drops.bytes = port.queue.bytes_dropped_total
            capacity = port.link.rate_bps if port.link is not None else 0.0
            if capacity > 0:
                stats.update(self.utilization_interval_s, capacity,
                             self.utilization_ewma_alpha)

    def stop(self) -> None:
        """Stop the periodic statistics updater (used by tests/benchmarks)."""
        self._stats_process.stop()
