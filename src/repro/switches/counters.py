"""Statistics blocks and rate/utilisation estimators kept by switches.

The appendix of the paper defines a "stats block" as four counters: packets,
bytes, packet rate and byte rate.  Rates (and hence link utilisation) are
refreshed periodically — the paper's prototype updates link utilisation every
millisecond (§2.2), and end-hosts that need faster signals read the raw byte
counters instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StatsBlock:
    """Packets/bytes counters plus periodically-computed rates."""

    packets: int = 0
    bytes: int = 0
    packet_rate: float = 0.0     # packets per second, from the last update window
    byte_rate: float = 0.0       # bytes per second, from the last update window
    _last_packets: int = field(default=0, repr=False)
    _last_bytes: int = field(default=0, repr=False)

    def count(self, size_bytes: int, packets: int = 1) -> None:
        """Record ``packets`` totalling ``size_bytes``."""
        self.packets += packets
        self.bytes += size_bytes

    def update_rates(self, interval_s: float, ewma_alpha: float = 0.0) -> None:
        """Recompute rates over the window since the previous update.

        ``ewma_alpha`` of zero keeps the plain windowed rate; a value in
        (0, 1] smooths it (rate = alpha * window_rate + (1-alpha) * old_rate).
        """
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        window_packets = self.packets - self._last_packets
        window_bytes = self.bytes - self._last_bytes
        window_packet_rate = window_packets / interval_s
        window_byte_rate = window_bytes / interval_s
        if ewma_alpha <= 0:
            self.packet_rate = window_packet_rate
            self.byte_rate = window_byte_rate
        else:
            self.packet_rate = ewma_alpha * window_packet_rate + (1 - ewma_alpha) * self.packet_rate
            self.byte_rate = ewma_alpha * window_byte_rate + (1 - ewma_alpha) * self.byte_rate
        self._last_packets = self.packets
        self._last_bytes = self.bytes


#: Utilisation values exposed through the memory map are integers in basis
#: points so they fit in a 16-bit packet-memory word: 10000 == 100 % utilised.
UTILIZATION_SCALE = 10000


def utilization_basis_points(byte_rate: float, capacity_bps: float) -> int:
    """Convert a byte rate into link utilisation in basis points (clamped)."""
    if capacity_bps <= 0:
        return 0
    fraction = (byte_rate * 8.0) / capacity_bps
    return min(UTILIZATION_SCALE, max(0, int(round(fraction * UTILIZATION_SCALE))))


@dataclass
class PortStats:
    """The per-port statistics the memory map exposes under ``Link$i:``."""

    transmit: StatsBlock = field(default_factory=StatsBlock)
    receive: StatsBlock = field(default_factory=StatsBlock)
    drops: StatsBlock = field(default_factory=StatsBlock)
    tx_utilization_bp: int = 0
    rx_utilization_bp: int = 0

    def update(self, interval_s: float, capacity_bps: float, ewma_alpha: float = 0.0) -> None:
        """Refresh rates and utilisation (called every utilisation interval)."""
        self.transmit.update_rates(interval_s, ewma_alpha)
        self.receive.update_rates(interval_s, ewma_alpha)
        self.drops.update_rates(interval_s, ewma_alpha)
        self.tx_utilization_bp = utilization_basis_points(self.transmit.byte_rate, capacity_bps)
        self.rx_utilization_bp = utilization_basis_points(self.receive.byte_rate, capacity_bps)
