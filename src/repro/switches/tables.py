"""Match-action flow tables and group tables.

The forwarding substrate the paper assumes is the "multiple match table"
model [Bosshart et al.]: a packet flows through a pipeline of match-action
stages; each stage holds a flow table whose entries match on header fields
and emit an action (forward out of a port, send to a group, drop).

Only the pieces the reproduced experiments exercise are modelled:

* exact-match tables keyed on arbitrary header fields (we use the destination
  host, which stands in for an L3 LPM/L2 MAC lookup),
* per-table and per-entry statistics and version numbers (NetSight's packet
  histories read ``[PacketMetadata:MatchedEntryID]`` and the table version),
* group tables for multipath: a group maps to several egress ports, and the
  selection policy can be an ECMP-style hash or a header tag (VLAN / UDP
  destination port), which is how §2.4 lets end-hosts pick paths.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.packet import Packet

from .counters import StatsBlock

_entry_ids = itertools.count(1)


@dataclass
class FlowEntry:
    """One entry in a match-action table."""

    match: dict                      # field name -> required value ("*" entries omit the field)
    action: str                      # "forward" | "group" | "drop"
    output_port: Optional[int] = None
    group_id: Optional[int] = None
    priority: int = 0
    entry_id: int = field(default_factory=lambda: next(_entry_ids))
    version: int = 1
    installed_at: float = 0.0
    stats: StatsBlock = field(default_factory=StatsBlock)

    def matches(self, packet: Packet) -> bool:
        for field_name, expected in self.match.items():
            if getattr(packet, field_name, None) != expected:
                return False
        return True


class FlowTable:
    """A priority-ordered exact-match table with lookup/match statistics."""

    def __init__(self, name: str = "l3") -> None:
        self.name = name
        self.entries: list[FlowEntry] = []
        self.version = 1
        self.lookup_stats = StatsBlock()
        self.match_stats = StatsBlock()
        # Mutation-detection cell: a pipeline points every stage table at one
        # shared list, so flow-lookup memos can detect any table change by
        # reading a single integer instead of re-hashing per-table versions.
        self.generation: list[int] = [0]

    def install(self, entry: FlowEntry) -> FlowEntry:
        """Add an entry and bump the table version (monotonically increasing)."""
        entry.version = self.version + 1
        self.entries.append(entry)
        self.entries.sort(key=lambda e: -e.priority)
        self.version += 1
        self.generation[0] += 1
        return entry

    def remove(self, entry_id: int) -> bool:
        before = len(self.entries)
        self.entries = [e for e in self.entries if e.entry_id != entry_id]
        if len(self.entries) != before:
            self.version += 1
            self.generation[0] += 1
            return True
        return False

    def lookup(self, packet: Packet) -> Optional[FlowEntry]:
        """Find the highest-priority matching entry, updating statistics."""
        self.lookup_stats.count(packet.size)
        for entry in self.entries:
            if entry.matches(packet):
                entry.stats.count(packet.size)
                self.match_stats.count(packet.size)
                return entry
        return None

    @property
    def reference_count(self) -> int:
        return len(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


def _flow_hash(packet: Packet, salt: int = 0) -> int:
    """Deterministic 5-tuple-ish hash used for ECMP selection."""
    key = f"{packet.src}|{packet.dst}|{packet.protocol}|{packet.sport}|{packet.dport}|{salt}"
    return zlib.crc32(key.encode())


# Selection policies a group can use to pick among its ports.
SelectionPolicy = Callable[[Packet, list[int], int], int]


def select_by_hash(packet: Packet, ports: list[int], salt: int) -> int:
    """ECMP: hash the flow identity; all packets of a flow take one path."""
    return ports[_flow_hash(packet, salt) % len(ports)]


def select_by_vlan(packet: Packet, ports: list[int], salt: int) -> int:
    """Path chosen by the VLAN tag — the §2.4 mechanism end-hosts control."""
    return ports[packet.vlan % len(ports)]


def select_by_dport(packet: Packet, ports: list[int], salt: int) -> int:
    """Path chosen by the destination UDP port (the CONGA* prototype's knob)."""
    return ports[packet.dport % len(ports)]


SELECTION_POLICIES: dict[str, SelectionPolicy] = {
    "hash": select_by_hash,
    "vlan": select_by_vlan,
    "dport": select_by_dport,
}


@dataclass
class Group:
    """A multipath group: a set of candidate egress ports plus a selector."""

    group_id: int
    ports: list[int]
    policy: str = "hash"
    salt: int = 0

    def select(self, packet: Packet) -> int:
        if not self.ports:
            raise ValueError(f"group {self.group_id} has no ports")
        try:
            selector = SELECTION_POLICIES[self.policy]
        except KeyError:
            raise ValueError(f"unknown group selection policy {self.policy!r}") from None
        return selector(packet, self.ports, self.salt)


class GroupTable:
    """The switch's group table (§2.4 / OpenFlow §5.6.1)."""

    #: Bound on the selection memo; cleared wholesale when exceeded.
    MEMO_LIMIT = 4096

    def __init__(self) -> None:
        self.groups: dict[int, Group] = {}
        # Every selection policy is a pure function of the packet's flow
        # identity and the group's state, so per-flow decisions can be
        # memoized.  Group is a plain mutable dataclass that install_group
        # hands back to callers, so the group's state is part of the memo
        # key — in-place mutations (ports/policy/salt) simply miss the memo
        # instead of being served stale.  Invalidated on install.
        self._memo: dict[tuple, int] = {}

    def install(self, group: Group) -> None:
        self.groups[group.group_id] = group
        self._memo.clear()

    def select(self, group_id: int, packet: Packet) -> int:
        group = self.groups.get(group_id)
        if group is None:
            raise KeyError(f"group {group_id} is not installed")
        if group.policy != "hash":
            # vlan/dport selection is one modulo — cheaper than a memo probe.
            return group.select(packet)
        key = (group_id, group.salt, tuple(group.ports)) + packet.flow_key()
        port = self._memo.get(key)
        if port is None:
            port = group.select(packet)
            if len(self._memo) >= self.MEMO_LIMIT:
                self._memo.clear()
            self._memo[key] = port
        return port

    def __contains__(self, group_id: int) -> bool:
        return group_id in self.groups
