"""The TPP parse graph (§3.4, Figure 7a).

A TPP can reach a switch in two ways:

* **standalone**: an Ethernet frame whose ethertype is ``0x6666`` — the TPP
  is the payload (optionally encapsulating another frame), or
* **transparent / piggy-backed**: a normal UDP packet whose destination (or
  source) port is ``0x6666`` — the TPP rides inside the UDP payload in front
  of the application data.

The simulator's :class:`~repro.net.packet.Packet` carries the attached TPP as
an object rather than raw bytes, so "parsing" here is the classification step
of the parse graph plus (for completeness and for the wire-format tests) the
byte-level decode of encoded TPPs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.packet_format import TPP
from repro.net.packet import Packet, TPP_ETHERTYPE, TPP_UDP_PORT


@dataclass(frozen=True)
class ParseResult:
    """What the ingress parser concluded about a packet."""

    is_tpp: bool
    mode: str               # "standalone", "piggybacked", or "none"
    tpp: Optional[TPP] = None


class TPPParser:
    """Classifies packets according to the TPP parse graph."""

    def __init__(self, ethertype: int = TPP_ETHERTYPE, udp_port: int = TPP_UDP_PORT) -> None:
        self.ethertype = ethertype
        self.udp_port = udp_port
        self.packets_parsed = 0
        self.tpps_identified = 0

    def classify(self, packet: Packet) -> bool:
        """Fast-path classification: is there a TPP to execute on this packet?

        Maintains the same counters and reaches the same verdict as
        :meth:`parse` (every packet carrying a TPP object parses as a TPP in
        one of the graph's modes) without allocating a :class:`ParseResult`;
        the switch hot path only needs the boolean.
        """
        self.packets_parsed += 1
        if packet.tpp is None:
            return False
        self.tpps_identified += 1
        return True

    def parse(self, packet: Packet) -> ParseResult:
        """Walk the parse graph for one packet."""
        self.packets_parsed += 1
        if packet.tpp is None:
            return ParseResult(is_tpp=False, mode="none")
        if packet.tpp_standalone:
            # ether.type == 0x6666 -> TPP (optionally encapsulating a payload).
            self.tpps_identified += 1
            return ParseResult(is_tpp=True, mode="standalone", tpp=packet.tpp)
        # Transparent mode: IPv4/UDP with the reserved port carries the TPP.
        if packet.protocol == "udp" and (packet.dport == self.udp_port
                                         or packet.sport == self.udp_port
                                         or packet.tpp is not None):
            self.tpps_identified += 1
            return ParseResult(is_tpp=True, mode="piggybacked", tpp=packet.tpp)
        self.tpps_identified += 1
        return ParseResult(is_tpp=True, mode="piggybacked", tpp=packet.tpp)


def parse_graph_edges() -> list[tuple[str, str, str]]:
    """The parse graph of Figure 7a as (from-node, to-node, condition) edges.

    Exposed for documentation, the quickstart example, and tests that check
    both TPP entry points are represented.
    """
    return [
        ("Ethernet", "TPP", f"ether.type == {TPP_ETHERTYPE:#06x}"),
        ("Ethernet", "IPv4", "ether.type == 0x0800"),
        ("Ethernet", "ARP", "ether.type == 0x0806"),
        ("TPP", "IPv4", "tpp.proto == 0x0800"),
        ("IPv4", "UDP", "ip.p == 17"),
        ("IPv4", "TCP", "ip.p == 6"),
        ("UDP", "TPP", f"udp.dstport == {TPP_UDP_PORT:#06x}"),
        ("UDP", "non-TPP", f"udp.dstport != {TPP_UDP_PORT:#06x}"),
    ]
