"""A compact TCP (Reno-flavoured AIMD) model.

The paper uses TCP twice: as the congestion-control baseline whose overhead
RCP* is compared against (§2.2 "Overheads"), and as the traffic source for
the end-host dataplane throughput microbenchmark (Figure 10).  This model
implements the pieces those comparisons need:

* window-based transmission with ack clocking,
* slow start / congestion avoidance, fast retransmit on three duplicate
  acks, and a coarse retransmission timeout,
* per-flow accounting of data and acknowledgement bytes so header/ack
  overhead can be measured directly.

It is intentionally simple — no SACK, no delayed acks, no Nagle — because the
reproduced results only depend on AIMD dynamics and on the ratio of control
bytes to data bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .node import Host
from .packet import tcp_packet
from .sim import Simulator

ACK_PAYLOAD_BYTES = 0          # a pure ack carries no payload
DEFAULT_MSS = 1240             # the paper's Figure 10 setup (1500 MTU, 1240 MSS)


@dataclass
class TcpStats:
    """Per-connection accounting used by the overhead experiments."""

    data_packets_sent: int = 0
    data_bytes_sent: int = 0
    retransmissions: int = 0
    acks_sent: int = 0
    ack_bytes_sent: int = 0
    acks_received: int = 0
    packets_delivered: int = 0
    bytes_delivered: int = 0
    completed_at: Optional[float] = None


class TcpReceiver:
    """Receiving side: delivers in-order data and returns cumulative acks.

    Acks are delayed (one ack per ``ack_every`` in-order segments), matching
    common stacks; out-of-order arrivals trigger an immediate duplicate ack so
    fast retransmit still works.
    """

    def __init__(self, sim: Simulator, host: Host, sender_name: str,
                 ack_dport: int, listen_dport: int, stats: TcpStats,
                 ack_every: int = 2) -> None:
        self.sim = sim
        self.host = host
        self.sender_name = sender_name
        self.ack_dport = ack_dport
        self.listen_dport = listen_dport
        self.stats = stats
        self.ack_every = max(1, ack_every)
        self.expected_seq = 0
        self._out_of_order: set[int] = set()
        self._unacked_segments = 0
        host.listen(listen_dport, self.on_data)

    def on_data(self, packet) -> None:
        seq = packet.payload.get("seq", -1) if isinstance(packet.payload, dict) else -1
        in_order = seq == self.expected_seq
        if in_order:
            self.expected_seq += 1
            while self.expected_seq in self._out_of_order:
                self._out_of_order.discard(self.expected_seq)
                self.expected_seq += 1
        elif seq > self.expected_seq:
            self._out_of_order.add(seq)
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += packet.size
        self._unacked_segments += 1
        if in_order and self._unacked_segments < self.ack_every:
            return
        self._send_ack()

    def _send_ack(self) -> None:
        self._unacked_segments = 0
        ack = tcp_packet(self.host.name, self.sender_name, ACK_PAYLOAD_BYTES,
                         dport=self.ack_dport, created_at=self.sim.now)
        ack.payload = {"ack": self.expected_seq}
        self.stats.acks_sent += 1
        self.stats.ack_bytes_sent += ack.size
        self.host.send(ack)


class TcpConnection:
    """A one-directional TCP transfer between two hosts."""

    _next_port = 30000

    def __init__(self, sim: Simulator, src: Host, dst: Host,
                 total_packets: Optional[int] = None, mss: int = DEFAULT_MSS,
                 initial_cwnd: float = 2.0, ssthresh: float = 64.0,
                 min_rto_s: float = 10e-3, start_time: float = 0.0) -> None:
        self.sim = sim
        self.src = src
        self.dst = dst
        self.total_packets = total_packets      # None => long-lived flow
        self.mss = mss
        self.cwnd = initial_cwnd
        self.ssthresh = ssthresh
        self.min_rto_s = min_rto_s
        self.stats = TcpStats()

        TcpConnection._next_port += 2
        self.data_dport = TcpConnection._next_port
        self.ack_dport = TcpConnection._next_port + 1

        self.send_base = 0
        self.next_seq = 0
        self.dup_acks = 0
        self.rtt_estimate_s = 4 * min_rto_s
        self._rto_event = None
        self._send_times: dict[int, float] = {}

        self.receiver = TcpReceiver(sim, dst, src.name, self.ack_dport,
                                    self.data_dport, self.stats)
        src.listen(self.ack_dport, self._on_ack)
        sim.schedule(start_time, self._pump)

    # --------------------------------------------------------------- sending
    @property
    def finished(self) -> bool:
        return (self.total_packets is not None
                and self.send_base >= self.total_packets)

    def _pump(self) -> None:
        """Send as much as the window allows."""
        if self.finished:
            return
        limit = self.total_packets if self.total_packets is not None else float("inf")
        while self.next_seq < min(self.send_base + int(self.cwnd), limit):
            self._transmit(self.next_seq)
            self.next_seq += 1
        self._arm_rto()

    def _transmit(self, seq: int, retransmission: bool = False) -> None:
        packet = tcp_packet(self.src.name, self.dst.name, self.mss,
                            dport=self.data_dport, flow_id=self.data_dport,
                            created_at=self.sim.now)
        packet.payload = {"seq": seq}
        self.stats.data_packets_sent += 1
        self.stats.data_bytes_sent += packet.size
        if retransmission:
            self.stats.retransmissions += 1
        self._send_times[seq] = self.sim.now
        self.src.send(packet)

    # ------------------------------------------------------------------ acks
    def _on_ack(self, packet) -> None:
        ack = packet.payload.get("ack", 0) if isinstance(packet.payload, dict) else 0
        self.stats.acks_received += 1
        if ack > self.send_base:
            newly_acked = ack - self.send_base
            sent_at = self._send_times.get(self.send_base)
            if sent_at is not None:
                sample = self.sim.now - sent_at
                self.rtt_estimate_s = 0.875 * self.rtt_estimate_s + 0.125 * sample
            self.send_base = ack
            self.dup_acks = 0
            for _ in range(newly_acked):
                if self.cwnd < self.ssthresh:
                    self.cwnd += 1.0                      # slow start
                else:
                    self.cwnd += 1.0 / max(self.cwnd, 1)  # congestion avoidance
            if self.finished:
                self.stats.completed_at = self.sim.now
                self._cancel_rto()
                return
            self._pump()
        else:
            self.dup_acks += 1
            if self.dup_acks == 3:
                self.ssthresh = max(self.cwnd / 2.0, 2.0)
                self.cwnd = self.ssthresh
                self._transmit(self.send_base, retransmission=True)
                self.dup_acks = 0

    # ------------------------------------------------------------------- RTO
    def _arm_rto(self) -> None:
        self._cancel_rto()
        rto = max(self.min_rto_s, 2.0 * self.rtt_estimate_s)
        self._rto_event = self.sim.schedule(rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _on_rto(self) -> None:
        if self.finished:
            return
        if self.send_base < self.next_seq:
            self.ssthresh = max(self.cwnd / 2.0, 2.0)
            self.cwnd = 1.0
            self.dup_acks = 0
            self._transmit(self.send_base, retransmission=True)
        self._arm_rto()

    # ------------------------------------------------------------- reporting
    def goodput_bps(self, duration_s: float) -> float:
        """Delivered application bytes per second over ``duration_s``."""
        if duration_s <= 0:
            return 0.0
        return self.send_base * self.mss * 8.0 / duration_s

    def overhead_fraction(self) -> float:
        """Control traffic (acknowledgements) as a fraction of the data bytes sent.

        This is the quantity §2.2's overhead comparison uses: RCP*'s probe and
        update TPPs play the same role for RCP* that acks play for TCP.
        """
        if self.stats.data_bytes_sent == 0:
            return 0.0
        return self.stats.ack_bytes_sent / self.stats.data_bytes_sent
