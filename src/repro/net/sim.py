"""Discrete-event simulation engine.

Every other substrate in this reproduction (links, switches, hosts,
applications) is driven by a single :class:`Simulator` instance.  The engine
is a classic event-heap design:

* time is a ``float`` number of seconds,
* events are ``(time, sequence, Event)`` tuples on a binary heap, so events
  scheduled for the same instant fire in FIFO order,
* callbacks are plain callables; periodic processes are built on top with
  :meth:`Simulator.schedule_periodic`.

The simulator is deliberately synchronous and single-threaded: determinism is
a design requirement because the reproduced experiments (queue occupancy time
series, fairness convergence) are compared against the paper's figures.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the simulator is used incorrectly (e.g. scheduling in the past)."""


@dataclass(order=True)
class _HeapEntry:
    time: float
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """A scheduled callback.

    Events support cancellation: a cancelled event stays in the heap but is
    skipped when popped.  This keeps scheduling O(log n) without requiring
    heap surgery.
    """

    __slots__ = ("time", "callback", "args", "cancelled", "name")

    def __init__(self, time: float, callback: Callable, args: tuple, name: str = ""):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.name = name or getattr(callback, "__name__", "event")

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when its time comes."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event {self.name} t={self.time:.9f} {state}>"


class PeriodicProcess:
    """A recurring callback created by :meth:`Simulator.schedule_periodic`."""

    __slots__ = ("sim", "interval", "callback", "args", "_event", "stopped", "jitter_fn")

    def __init__(self, sim: "Simulator", interval: float, callback: Callable,
                 args: tuple = (), jitter_fn: Optional[Callable[[], float]] = None):
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.args = args
        self.stopped = False
        self.jitter_fn = jitter_fn
        self._event = sim.schedule(self._next_delay(), self._fire)

    def _next_delay(self) -> float:
        if self.jitter_fn is None:
            return self.interval
        return max(0.0, self.interval + self.jitter_fn())

    def _fire(self) -> None:
        if self.stopped:
            return
        self.callback(*self.args)
        if not self.stopped:
            self._event = self.sim.schedule(self._next_delay(), self._fire)

    def stop(self) -> None:
        """Stop the process; the pending occurrence is cancelled."""
        self.stopped = True
        if self._event is not None:
            self._event.cancel()


class Simulator:
    """Single-threaded discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1e-3, lambda: print("one millisecond in"))
        sim.run(until=0.01)
    """

    def __init__(self) -> None:
        self._heap: list[_HeapEntry] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_executed = 0
        self._running = False

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (useful for benchmarks)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------ scheduling
    def schedule(self, delay: float, callback: Callable, *args, name: str = "") -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")
        return self.schedule_at(self._now + delay, callback, *args, name=name)

    def schedule_at(self, when: float, callback: Callable, *args, name: str = "") -> Event:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} which is before now={self._now}")
        event = Event(when, callback, args, name=name)
        heapq.heappush(self._heap, _HeapEntry(when, next(self._seq), event))
        return event

    def schedule_periodic(self, interval: float, callback: Callable, *args,
                          jitter_fn: Optional[Callable[[], float]] = None) -> PeriodicProcess:
        """Run ``callback(*args)`` every ``interval`` seconds until stopped."""
        return PeriodicProcess(self, interval, callback, args, jitter_fn=jitter_fn)

    # --------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the next non-cancelled event.  Returns False when idle."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            event = entry.event
            if event.cancelled:
                continue
            self._now = entry.time
            event.callback(*event.args)
            self._events_executed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in time order.

        Args:
            until: stop once simulation time would exceed this value; the
                simulator clock is advanced to ``until`` on return.
            max_events: safety valve; stop after executing this many events.
        """
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    break
                # Peek for the time limit before popping.
                next_time = self._heap[0].time
                if until is not None and next_time > until:
                    break
                if not self.step():
                    break
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain (bounded by ``max_events``)."""
        self.run(max_events=max_events)

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._heap.clear()
        self._now = 0.0
        self._events_executed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator t={self._now:.6f}s pending={self.pending_events} "
                f"executed={self._events_executed}>")
