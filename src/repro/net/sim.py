"""Discrete-event simulation engine.

Every other substrate in this reproduction (links, switches, hosts,
applications) is driven by a single :class:`Simulator` instance.  The engine
is a classic event-heap design:

* time is a ``float`` number of seconds,
* events are ``(time, sequence, Event)`` tuples on a binary heap, so events
  scheduled for the same instant fire in FIFO order.  Plain tuples keep the
  heap comparisons in C (the sequence number breaks every tie, so the Event
  object itself is never compared),
* callbacks are plain callables; periodic processes are built on top with
  :meth:`Simulator.schedule_periodic`.

Cancellation is lazy: a cancelled event stays in the heap and is skipped when
popped, which keeps :meth:`Event.cancel` O(1).  To stop long-lived workloads
(mass retries, stopped periodic processes) from bloating the heap with dead
entries, the simulator counts cancelled-but-still-heaped events and compacts
the heap once more than half of it is dead.  :attr:`Simulator.pending_events`
therefore reports only *live* events.

Bursty producers (links draining a queue, the end-host dataplane injecting a
batch of packets) should use :meth:`Simulator.schedule_many`, which validates
once and inserts the whole burst with a single heapify when that is cheaper
than repeated pushes.

The simulator is deliberately synchronous and single-threaded: determinism is
a design requirement because the reproduced experiments (queue occupancy time
series, fairness convergence) are compared against the paper's figures.  All
of the fast paths above preserve the exact (time, sequence) execution order
of the straightforward implementation.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Iterable, Optional, Sequence

#: Never bother compacting heaps smaller than this; the scan costs more than
#: the dead entries do.
_COMPACT_MIN_HEAP = 64


class SimulationError(RuntimeError):
    """Raised when the simulator is used incorrectly (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events support cancellation: a cancelled event stays in the heap but is
    skipped when popped.  This keeps scheduling O(log n) without requiring
    heap surgery; the owning simulator tracks how many dead entries remain
    and compacts the heap when they dominate.
    """

    __slots__ = ("time", "callback", "args", "cancelled", "_name", "_sim")

    def __init__(self, time: float, callback: Callable, args: tuple, name: str = "",
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._name = name
        self._sim = sim

    @property
    def name(self) -> str:
        """Debugging label (resolved lazily so the hot path never pays for it)."""
        return self._name or getattr(self.callback, "__name__", "event")

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when its time comes."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event {self.name} t={self.time:.9f} {state}>"


class PeriodicProcess:
    """A recurring callback created by :meth:`Simulator.schedule_periodic`."""

    __slots__ = ("sim", "interval", "callback", "args", "_event", "stopped", "jitter_fn")

    def __init__(self, sim: "Simulator", interval: float, callback: Callable,
                 args: tuple = (), jitter_fn: Optional[Callable[[], float]] = None):
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.args = args
        self.stopped = False
        self.jitter_fn = jitter_fn
        self._event = sim.schedule(self._next_delay(), self._fire)

    def _next_delay(self) -> float:
        if self.jitter_fn is None:
            return self.interval
        return max(0.0, self.interval + self.jitter_fn())

    def _fire(self) -> None:
        if self.stopped:
            return
        self.callback(*self.args)
        if not self.stopped:
            self._event = self.sim.schedule(self._next_delay(), self._fire)

    def stop(self) -> None:
        """Stop the process; the pending occurrence is cancelled."""
        self.stopped = True
        if self._event is not None:
            self._event.cancel()


class Simulator:
    """Single-threaded discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1e-3, lambda: print("one millisecond in"))
        sim.run(until=0.01)
    """

    def __init__(self) -> None:
        # Heap of (time, seq, Event) tuples; seq is unique so ties never
        # compare the Event objects.
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_executed = 0
        self._cancelled = 0
        self._running = False

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (useful for benchmarks)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of *live* (non-cancelled) events still on the heap."""
        return len(self._heap) - self._cancelled

    @property
    def cancelled_events_pending(self) -> int:
        """Cancelled events still occupying heap slots (before compaction)."""
        return self._cancelled

    @property
    def heap_size(self) -> int:
        """Raw heap length, including cancelled entries (for hygiene tests)."""
        return len(self._heap)

    # ------------------------------------------------------------ scheduling
    def schedule(self, delay: float, callback: Callable, *args, name: str = "") -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        self._check_delay(delay)
        when = self._now + delay
        event = Event(when, callback, args, name=name, sim=self)
        heapq.heappush(self._heap, (when, next(self._seq), event))
        return event

    def schedule_at(self, when: float, callback: Callable, *args, name: str = "") -> Event:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if math.isnan(when):
            raise SimulationError("cannot schedule an event at a NaN time")
        if math.isinf(when):
            raise SimulationError("cannot schedule an event at an infinite time")
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} which is before now={self._now}")
        event = Event(when, callback, args, name=name, sim=self)
        heapq.heappush(self._heap, (when, next(self._seq), event))
        return event

    def schedule_many(self, specs: Iterable[Sequence], name: str = "") -> list[Event]:
        """Schedule a burst of events in one call (the batch-injection path).

        ``specs`` is an iterable of ``(delay, callback)``,
        ``(delay, callback, args)`` or ``(delay, callback, args, name)``
        tuples, each relative to *now* (a per-spec name overrides the
        burst-wide ``name``).  The events receive consecutive sequence
        numbers in iteration order, so the execution order is exactly what
        the equivalent loop of :meth:`schedule` calls would produce; the
        difference is purely that large bursts are inserted with one heapify
        instead of per-event sifting.
        """
        now = self._now
        seq = self._seq
        entries: list[tuple[float, int, Event]] = []
        events: list[Event] = []
        for spec in specs:
            delay, callback = spec[0], spec[1]
            args = tuple(spec[2]) if len(spec) > 2 else ()
            self._check_delay(delay)
            event = Event(now + delay, callback, args,
                          name=spec[3] if len(spec) > 3 else name, sim=self)
            entries.append((event.time, next(seq), event))
            events.append(event)
        heap = self._heap
        if len(entries) * 4 >= len(heap):
            # O(n + k) rebuild beats k O(log n) pushes for big bursts.
            heap.extend(entries)
            heapq.heapify(heap)
        else:
            push = heapq.heappush
            for entry in entries:
                push(heap, entry)
        return events

    def schedule_periodic(self, interval: float, callback: Callable, *args,
                          jitter_fn: Optional[Callable[[], float]] = None) -> PeriodicProcess:
        """Run ``callback(*args)`` every ``interval`` seconds until stopped."""
        return PeriodicProcess(self, interval, callback, args, jitter_fn=jitter_fn)

    @staticmethod
    def _check_delay(delay: float) -> None:
        if delay != delay:  # NaN compares unequal to itself
            raise SimulationError("cannot schedule an event with a NaN delay")
        if delay == math.inf or delay == -math.inf:
            raise SimulationError("cannot schedule an event with an infinite delay")
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} seconds in the past")

    # -------------------------------------------------------- heap hygiene
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts the heap when dead entries win."""
        self._cancelled += 1
        if (self._cancelled * 2 > len(self._heap)
                and len(self._heap) >= _COMPACT_MIN_HEAP):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Pop order of the surviving entries is untouched: it is fully
        determined by their (time, seq) keys, which do not change.  The
        compaction happens *in place* — the run loop holds a reference to
        the heap list while callbacks (which may cancel events and trigger
        compaction) execute, so the list object must never be swapped out.
        """
        self._heap[:] = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    # --------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the next non-cancelled event.  Returns False when idle."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            when, _seq, event = pop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            # Detach before executing: a late cancel() on an event that has
            # already left the heap must not skew the dead-entry counter.
            event._sim = None
            self._now = when
            event.callback(*event.args)
            self._events_executed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in time order.

        Args:
            until: stop once simulation time would exceed this value; the
                simulator clock is advanced to ``until`` on return.
            max_events: safety valve; stop after executing this many events.

        The time limit is checked against the next *live* event: cancelled
        entries at the head of the heap are discarded without consuming the
        budget or (unlike a naive peek-then-step loop) letting an event past
        ``until`` slip through behind them.
        """
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        try:
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                when, _seq, event = heap[0]
                if event.cancelled:
                    pop(heap)
                    self._cancelled -= 1
                    continue
                if until is not None and when > until:
                    break
                pop(heap)
                # Detach before executing (see step()): a late cancel() on a
                # popped event must not skew the dead-entry counter.
                event._sim = None
                self._now = when
                event.callback(*event.args)
                self._events_executed += 1
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain (bounded by ``max_events``)."""
        self.run(max_events=max_events)

    # ----------------------------------------------------------- observability
    def register_telemetry(self, telemetry, prefix: str = "sim") -> None:
        """Register this simulator's health as pull-based gauges.

        The gauges read existing counters at snapshot time only — the run
        loop is untouched, so registering telemetry can never perturb the
        event sequence (the repro.obs no-perturbation invariant).
        """
        metrics = telemetry.metrics
        metrics.gauge(f"{prefix}.now_s", lambda: self._now)
        metrics.gauge(f"{prefix}.events_executed", lambda: self._events_executed)
        metrics.gauge(f"{prefix}.pending_events", lambda: self.pending_events)
        metrics.gauge(f"{prefix}.heap_size", lambda: len(self._heap))
        metrics.gauge(f"{prefix}.cancelled_events_pending",
                      lambda: self._cancelled)

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        for _, _, event in self._heap:
            event._sim = None       # late cancels must not touch the counter
        self._heap.clear()
        self._now = 0.0
        self._events_executed = 0
        self._cancelled = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Simulator t={self._now:.6f}s pending={self.pending_events} "
                f"executed={self._events_executed}>")
