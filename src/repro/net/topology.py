"""Topology construction and the :class:`Network` container.

A :class:`Network` owns the simulator, hosts, switches and links, and knows
how to compute and install shortest-path (optionally ECMP) routes into every
switch's forwarding table.  Builders for the specific topologies used by the
paper's experiments live at the bottom of the module:

* :func:`build_dumbbell` — Figure 1's six-host dumbbell,
* :func:`build_rcp_chain` — Figure 2's two-bottleneck chain,
* :func:`build_conga_topology` — Figure 4's two-leaf/two-spine pod,
* :func:`build_leaf_spine` and :func:`build_fat_tree` — larger fabrics used by
  the measurement/sketch experiments and the scale tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .link import Link, mbps
from .node import Host, Node
from .sim import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.switches.switch import TPPSwitch


@dataclass
class Network:
    """A simulated network: nodes, links and route computation."""

    sim: Simulator
    hosts: dict[str, Host] = field(default_factory=dict)
    switches: dict[str, "TPPSwitch"] = field(default_factory=dict)
    links: list[Link] = field(default_factory=list)
    _next_switch_id: int = 1

    # ------------------------------------------------------------- build-up
    def add_host(self, name: str) -> Host:
        if name in self.hosts or name in self.switches:
            raise ValueError(f"duplicate node name {name!r}")
        host = Host(self.sim, name)
        self.hosts[name] = host
        return host

    def add_switch(self, name: str, **kwargs) -> "TPPSwitch":
        # Imported lazily: the switch model depends on repro.net primitives,
        # so a module-level import here would create an import cycle.
        from repro.switches.switch import TPPSwitch

        if name in self.hosts or name in self.switches:
            raise ValueError(f"duplicate node name {name!r}")
        switch = TPPSwitch(self.sim, name, switch_id=self._next_switch_id, **kwargs)
        self._next_switch_id += 1
        self.switches[name] = switch
        return switch

    def node(self, name: str) -> Node:
        if name in self.hosts:
            return self.hosts[name]
        if name in self.switches:
            return self.switches[name]
        raise KeyError(f"unknown node {name!r}")

    @property
    def nodes(self) -> dict[str, Node]:
        merged: dict[str, Node] = {}
        merged.update(self.hosts)
        merged.update(self.switches)
        return merged

    def connect(self, name_a: str, name_b: str, rate_bps: float = mbps(100),
                delay_s: float = 10e-6, queue_capacity_bytes: int = 512 * 1024,
                queue_capacity_packets: Optional[int] = None) -> Link:
        """Create a full-duplex link between two named nodes."""
        node_a, node_b = self.node(name_a), self.node(name_b)
        port_a = node_a.add_port(queue_capacity_bytes, queue_capacity_packets)
        port_b = node_b.add_port(queue_capacity_bytes, queue_capacity_packets)
        link = Link(port_a, port_b, rate_bps=rate_bps, delay_s=delay_s,
                    name=f"{name_a}<->{name_b}")
        self.links.append(link)
        return link

    # ----------------------------------------------------------- adjacency
    def neighbors(self, name: str) -> list[tuple[str, int]]:
        """(neighbor name, local port index) pairs for a node."""
        node = self.node(name)
        result = []
        for port in node.ports:
            if port.peer is not None:
                result.append((port.peer.node.name, port.index))
        return result

    def up_neighbors(self, name: str) -> list[tuple[str, int]]:
        """Like :meth:`neighbors`, but only over currently-usable links.

        A link is usable when the link itself and both endpoint ports are
        up.  Routing uses this view, so recomputing routes after a failure
        (or a remediation policy disabling a link) steers around it.
        """
        node = self.node(name)
        result = []
        for port in node.ports:
            peer = port.peer
            if (peer is not None and port.up and peer.up
                    and port.link is not None and port.link.up):
                result.append((peer.node.name, port.index))
        return result

    def ports_towards(self, name: str, neighbor: str) -> list[int]:
        """Local port indices on ``name`` whose peer is ``neighbor``."""
        return [idx for peer, idx in self.neighbors(name) if peer == neighbor]

    def link_between(self, name_a: str, name_b: str) -> Optional[Link]:
        for link in self.links:
            ends = {link.port_a.node.name, link.port_b.node.name}
            if ends == {name_a, name_b}:
                return link
        return None

    # --------------------------------------------------------------- routing
    def hop_distances_to(self, destination: str) -> dict[str, int]:
        """BFS hop counts from every node to ``destination``.

        Only usable (up) links count: a node cut off by failures simply
        does not appear in the result.
        """
        if destination not in self.hosts and destination not in self.switches:
            raise ValueError(f"unknown destination {destination!r}")
        distances = {destination: 0}
        frontier = deque([destination])
        while frontier:
            current = frontier.popleft()
            for neighbor, _ in self.up_neighbors(current):
                if neighbor not in distances:
                    distances[neighbor] = distances[current] + 1
                    frontier.append(neighbor)
        return distances

    def install_shortest_path_routes(self, ecmp: bool = True,
                                     group_policy: str = "hash",
                                     priority: int = 0,
                                     salt: int = 0) -> None:
        """Compute shortest paths to every host and install forwarding state.

        When a switch has several equal-cost next hops towards a destination
        and ``ecmp`` is True, a multipath group is installed (selection policy
        ``group_policy``, hash salt ``salt``); otherwise the first next hop
        wins.  Routes go around down links.

        ``priority`` matters when re-routing mid-run: flow tables resolve
        equal-priority matches oldest-first, so a recomputation that should
        *replace* existing routes must be installed at a strictly higher
        priority than the incumbent entries.
        """
        next_group_id = {name: 1000 for name in self.switches}
        for dst_name in self.hosts:
            distances = self.hop_distances_to(dst_name)
            for switch_name, switch in self.switches.items():
                if switch_name not in distances:
                    continue
                my_distance = distances[switch_name]
                candidate_ports: list[int] = []
                for neighbor, port_index in self.up_neighbors(switch_name):
                    if distances.get(neighbor, float("inf")) == my_distance - 1:
                        candidate_ports.append(port_index)
                if not candidate_ports:
                    continue
                if len(candidate_ports) == 1 or not ecmp:
                    switch.install_route(dst_name, candidate_ports[0],
                                         priority=priority)
                else:
                    group_id = next_group_id[switch_name]
                    next_group_id[switch_name] += 1
                    switch.install_group(group_id, candidate_ports,
                                         policy=group_policy, salt=salt)
                    switch.install_group_route(dst_name, group_id,
                                               priority=priority)

    def compute_path(self, src: str, dst: str) -> list[str]:
        """One shortest path (node names, inclusive) from ``src`` to ``dst``."""
        distances = self.hop_distances_to(dst)
        if src not in distances:
            raise ValueError(f"no path from {src} to {dst}")
        path = [src]
        current = src
        while current != dst:
            for neighbor, _ in self.up_neighbors(current):
                if distances.get(neighbor, float("inf")) == distances[current] - 1:
                    path.append(neighbor)
                    current = neighbor
                    break
            else:  # pragma: no cover - disconnected mid-walk
                raise ValueError(f"routing walk stuck at {current}")
        return path

    def stop_switch_processes(self) -> None:
        """Stop periodic per-switch statistics updaters (keeps run_until_idle finite)."""
        for switch in self.switches.values():
            switch.stop()


# ---------------------------------------------------------------------------
# Topology builders used by the paper's experiments
# ---------------------------------------------------------------------------
@dataclass
class BuiltTopology:
    """A constructed network plus the node-name groups builders hand back."""

    network: Network
    host_names: list[str]
    switch_names: list[str]
    extra: dict = field(default_factory=dict)


def build_dumbbell(sim: Simulator, hosts_per_side: int = 3,
                   link_rate_bps: float = mbps(100), link_delay_s: float = 50e-6,
                   queue_capacity_packets: Optional[int] = None,
                   **switch_kwargs) -> BuiltTopology:
    """Figure 1's topology: two switches, ``hosts_per_side`` hosts on each."""
    net = Network(sim)
    left_switch = net.add_switch("s0", **switch_kwargs)
    right_switch = net.add_switch("s1", **switch_kwargs)
    host_names = []
    for i in range(hosts_per_side):
        name = f"h{i}"
        net.add_host(name)
        net.connect(name, "s0", rate_bps=link_rate_bps, delay_s=link_delay_s,
                    queue_capacity_packets=queue_capacity_packets)
        host_names.append(name)
    for i in range(hosts_per_side):
        name = f"h{hosts_per_side + i}"
        net.add_host(name)
        net.connect(name, "s1", rate_bps=link_rate_bps, delay_s=link_delay_s,
                    queue_capacity_packets=queue_capacity_packets)
        host_names.append(name)
    net.connect("s0", "s1", rate_bps=link_rate_bps, delay_s=link_delay_s,
                queue_capacity_packets=queue_capacity_packets)
    net.install_shortest_path_routes()
    return BuiltTopology(net, host_names, ["s0", "s1"],
                         extra={"left_switch": left_switch, "right_switch": right_switch})


def build_rcp_chain(sim: Simulator, link_rate_bps: float = mbps(100),
                    link_delay_s: float = 100e-6, **switch_kwargs) -> BuiltTopology:
    """Figure 2's traffic pattern: flow *a* crosses two bottlenecks, *b* and *c* one each.

    Topology::

        ha --- s0 ======= s1 ======= s2 --- ha_dst
        hb --- s0                    s2 --- hb_dst   (flow b uses s0-s1)
               hc --- s1             s2 --- hc_dst   (flow c uses s1-s2)

    The two switch-switch links (s0-s1 and s1-s2) are the shared bottlenecks.
    """
    net = Network(sim)
    for name in ("s0", "s1", "s2"):
        net.add_switch(name, **switch_kwargs)
    hosts = ["ha", "hb", "hc", "ha_dst", "hb_dst", "hc_dst"]
    for name in hosts:
        net.add_host(name)
    edge = dict(rate_bps=link_rate_bps * 10, delay_s=link_delay_s)   # non-bottleneck edges
    core = dict(rate_bps=link_rate_bps, delay_s=link_delay_s)
    net.connect("ha", "s0", **edge)
    net.connect("hb", "s0", **edge)
    net.connect("hc", "s1", **edge)
    net.connect("hb_dst", "s1", **edge)
    net.connect("ha_dst", "s2", **edge)
    net.connect("hc_dst", "s2", **edge)
    net.connect("s0", "s1", **core)
    net.connect("s1", "s2", **core)
    net.install_shortest_path_routes()
    return BuiltTopology(net, hosts, ["s0", "s1", "s2"],
                         extra={"bottlenecks": [("s0", "s1"), ("s1", "s2")]})


def build_conga_topology(sim: Simulator, link_rate_bps: float = mbps(100),
                         link_delay_s: float = 20e-6,
                         group_policy: str = "dport",
                         **switch_kwargs) -> BuiltTopology:
    """Figure 4's example: leaves L0, L1, L2 and spines S0, S1.

    L0 has a single path to L2 (via S0); L1 has two paths to L2 (via S0 or
    S1).  Each leaf has one attached host (``hl0``, ``hl1``, ``hl2``).
    Multipath selection at the leaves uses ``group_policy`` so end-hosts can
    steer flowlets by changing the corresponding header field.
    """
    net = Network(sim)
    for name in ("L0", "L1", "L2", "S0", "S1"):
        net.add_switch(name, **switch_kwargs)
    for name in ("hl0", "hl1", "hl2"):
        net.add_host(name)
    edge = dict(rate_bps=link_rate_bps * 10, delay_s=link_delay_s)
    core = dict(rate_bps=link_rate_bps, delay_s=link_delay_s)
    net.connect("hl0", "L0", **edge)
    net.connect("hl1", "L1", **edge)
    net.connect("hl2", "L2", **edge)
    # L0 only attaches to S0 (single path), L1 attaches to both spines.
    net.connect("L0", "S0", **core)
    net.connect("L1", "S0", **core)
    net.connect("L1", "S1", **core)
    net.connect("L2", "S0", **core)
    net.connect("L2", "S1", **core)
    net.install_shortest_path_routes(ecmp=True, group_policy=group_policy)
    return BuiltTopology(net, ["hl0", "hl1", "hl2"], ["L0", "L1", "L2", "S0", "S1"])


def build_leaf_spine(sim: Simulator, num_leaves: int = 4, num_spines: int = 2,
                     hosts_per_leaf: int = 4, link_rate_bps: float = mbps(100),
                     link_delay_s: float = 20e-6, group_policy: str = "hash",
                     **switch_kwargs) -> BuiltTopology:
    """A generic leaf-spine fabric (used by the sketch/measurement experiments)."""
    net = Network(sim)
    spine_names = [f"spine{i}" for i in range(num_spines)]
    leaf_names = [f"leaf{i}" for i in range(num_leaves)]
    for name in spine_names + leaf_names:
        net.add_switch(name, **switch_kwargs)
    host_names = []
    for leaf_index, leaf in enumerate(leaf_names):
        for h in range(hosts_per_leaf):
            host = f"h{leaf_index}_{h}"
            net.add_host(host)
            net.connect(host, leaf, rate_bps=link_rate_bps, delay_s=link_delay_s)
            host_names.append(host)
        for spine in spine_names:
            net.connect(leaf, spine, rate_bps=link_rate_bps, delay_s=link_delay_s)
    net.install_shortest_path_routes(ecmp=True, group_policy=group_policy)
    return BuiltTopology(net, host_names, leaf_names + spine_names,
                         extra={"leaves": leaf_names, "spines": spine_names})


def build_fat_tree(sim: Simulator, k: int = 4, link_rate_bps: float = mbps(100),
                   link_delay_s: float = 20e-6, **switch_kwargs) -> BuiltTopology:
    """A k-ary fat tree (k even): (k/2)^2 core switches, k pods of k switches.

    Hosts: k^3/4.  Used by scale-oriented tests and the sketch experiment's
    "core links" scenario; k=4 keeps simulations tractable.
    """
    if k % 2:
        raise ValueError("fat-tree k must be even")
    net = Network(sim)
    half = k // 2
    core_names = [f"core{i}" for i in range(half * half)]
    for name in core_names:
        net.add_switch(name, **switch_kwargs)
    host_names: list[str] = []
    agg_names: list[str] = []
    edge_names: list[str] = []
    for pod in range(k):
        pod_aggs = [f"agg{pod}_{i}" for i in range(half)]
        pod_edges = [f"edge{pod}_{i}" for i in range(half)]
        agg_names.extend(pod_aggs)
        edge_names.extend(pod_edges)
        for name in pod_aggs + pod_edges:
            net.add_switch(name, **switch_kwargs)
        for edge_index, edge in enumerate(pod_edges):
            for h in range(half):
                host = f"h{pod}_{edge_index}_{h}"
                net.add_host(host)
                net.connect(host, edge, rate_bps=link_rate_bps, delay_s=link_delay_s)
                host_names.append(host)
            for agg in pod_aggs:
                net.connect(edge, agg, rate_bps=link_rate_bps, delay_s=link_delay_s)
        for agg_index, agg in enumerate(pod_aggs):
            for c in range(half):
                core = core_names[agg_index * half + c]
                net.connect(agg, core, rate_bps=link_rate_bps, delay_s=link_delay_s)
    net.install_shortest_path_routes(ecmp=True)
    return BuiltTopology(net, host_names, core_names + agg_names + edge_names,
                         extra={"cores": core_names, "aggs": agg_names, "edges": edge_names})
