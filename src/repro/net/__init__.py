"""Discrete-event network substrate: simulator, packets, links, hosts, topologies."""

from .link import Link, gbps, mbps
from .node import Host, Node
from .packet import (Packet, TPP_ETHERTYPE, TPP_UDP_PORT, tcp_packet, tpp_probe_packet,
                     udp_packet)
from .port import EgressQueue, Port
from .sim import Event, PeriodicProcess, SimulationError, Simulator
from .topology import (BuiltTopology, Network, build_conga_topology, build_dumbbell,
                       build_fat_tree, build_leaf_spine, build_rcp_chain)
from .flows import MessageWorkload, RateLimitedFlow, ThroughputMeter, next_flow_id
from .tcp import TcpConnection, TcpStats

__all__ = [
    "BuiltTopology", "EgressQueue", "Event", "Host", "Link", "MessageWorkload",
    "Network", "Node", "Packet", "PeriodicProcess", "Port", "RateLimitedFlow",
    "SimulationError", "Simulator", "TPP_ETHERTYPE", "TPP_UDP_PORT", "TcpConnection",
    "TcpStats", "ThroughputMeter", "build_conga_topology", "build_dumbbell",
    "build_fat_tree", "build_leaf_spine", "build_rcp_chain", "gbps", "mbps",
    "next_flow_id", "tcp_packet", "tpp_probe_packet", "udp_packet",
]
