"""Packet model used by the network substrate.

A :class:`Packet` models an Ethernet frame carrying an (optional) IP/UDP/TCP
payload, plus an optional attached TPP (a ``repro.core.packet_format.TPP``
instance — kept untyped here to avoid a circular dependency between the
network substrate and the TPP core).

Sizes are in bytes, and ``size`` always reflects the full on-wire size
including any attached TPP, so serialisation delays and bandwidth overheads
(e.g. the §2.2 / §2.3 overhead experiments) fall out of the link model for
free.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

# Header sizes used consistently across the library (bytes).
ETHERNET_HEADER_BYTES = 14
ETHERNET_OVERHEAD_BYTES = 24       # preamble + SFD + FCS + IFG, used for line-rate math
IPV4_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
TCP_HEADER_BYTES = 20

# Identifiers the paper reserves for TPPs (§3.4).
TPP_ETHERTYPE = 0x6666
TPP_UDP_PORT = 0x6666

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """A network packet.

    Attributes:
        src: source host name (stands in for the source IP/MAC).
        dst: destination host name.
        size: total on-wire size in bytes, including attached TPP bytes.
        protocol: "udp", "tcp", or "raw".
        sport, dport: transport ports.
        vlan: VLAN tag; used by the multipath "group table" for path selection
            (§2.4 lets end-hosts pick paths by changing a header tag).
        flow_id: opaque flow identifier used by flow generators and ECMP.
        tpp: the attached tiny packet program, if any.
        tpp_standalone: True when the packet *is* a TPP probe (ethertype
            0x6666) rather than a data packet with a piggy-backed TPP.
        payload: application payload descriptor (opaque to the network).
        created_at: simulation time the packet was created.
        metadata: scratch space for applications and instrumentation.
    """

    src: str
    dst: str
    size: int
    protocol: str = "udp"
    sport: int = 0
    dport: int = 0
    vlan: int = 0
    flow_id: int = 0
    tpp: Optional[Any] = None
    tpp_standalone: bool = False
    payload: Any = None
    created_at: float = 0.0
    metadata: dict = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    # Filled in by the network as the packet travels.
    path: list = field(default_factory=list)
    enqueue_times: list = field(default_factory=list)
    dropped: bool = False
    drop_reason: str = ""
    delivered_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")

    # ------------------------------------------------------------------ TPP
    @property
    def is_tpp(self) -> bool:
        """True when the packet carries a TPP (piggy-backed or standalone)."""
        return self.tpp is not None

    def attach_tpp(self, tpp: Any, standalone: bool = False) -> None:
        """Attach a TPP, growing the on-wire size by the TPP's byte length."""
        if self.tpp is not None:
            raise ValueError("packet already carries a TPP; only one TPP per packet (§4.2)")
        self.tpp = tpp
        self.tpp_standalone = standalone
        self.size += tpp.wire_length()

    def detach_tpp(self) -> Any:
        """Strip the TPP, shrinking the packet back to its original size."""
        if self.tpp is None:
            raise ValueError("packet does not carry a TPP")
        tpp = self.tpp
        self.size -= tpp.wire_length()
        self.tpp = None
        self.tpp_standalone = False
        return tpp

    # ------------------------------------------------------------ convenience
    def flow_key(self) -> tuple:
        """The packet's flow identity.

        This is the *single* definition shared by every same-flow memo layer
        (pipeline forwarding decisions, group-table path selection, end-host
        filter matching): two packets with equal flow keys are
        indistinguishable to any rule or policy that operates on
        flow-identity fields.  Extending flow identity means changing this
        method (and ``repro.switches.pipeline.FLOW_KEY_FIELDS``), not the
        individual memos.
        """
        return (self.src, self.dst, self.protocol, self.sport, self.dport,
                self.vlan, self.flow_id)

    def record_hop(self, node_name: str) -> None:
        """Append a node to the packet's observed path (simulation bookkeeping)."""
        self.path.append(node_name)

    def transmission_time(self, rate_bps: float) -> float:
        """Serialisation delay of this packet on a link of ``rate_bps``."""
        return self.size * 8.0 / rate_bps

    def copy_headers(self) -> "Packet":
        """A shallow header copy (new packet id, no TPP, no path history)."""
        return Packet(src=self.src, dst=self.dst, size=self.size,
                      protocol=self.protocol, sport=self.sport, dport=self.dport,
                      vlan=self.vlan, flow_id=self.flow_id, payload=self.payload,
                      created_at=self.created_at)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tpp = " +TPP" if self.is_tpp else ""
        return (f"<Packet #{self.packet_id} {self.src}->{self.dst} {self.protocol}"
                f" {self.size}B flow={self.flow_id}{tpp}>")


def udp_packet(src: str, dst: str, payload_bytes: int, sport: int = 10000,
               dport: int = 20000, flow_id: int = 0, vlan: int = 0,
               created_at: float = 0.0) -> Packet:
    """Build a UDP data packet; ``size`` covers Ethernet+IP+UDP headers."""
    size = ETHERNET_HEADER_BYTES + IPV4_HEADER_BYTES + UDP_HEADER_BYTES + payload_bytes
    return Packet(src=src, dst=dst, size=size, protocol="udp", sport=sport,
                  dport=dport, flow_id=flow_id, vlan=vlan, created_at=created_at)


def tcp_packet(src: str, dst: str, payload_bytes: int, sport: int = 10000,
               dport: int = 80, flow_id: int = 0, created_at: float = 0.0) -> Packet:
    """Build a TCP data packet; ``size`` covers Ethernet+IP+TCP headers."""
    size = ETHERNET_HEADER_BYTES + IPV4_HEADER_BYTES + TCP_HEADER_BYTES + payload_bytes
    return Packet(src=src, dst=dst, size=size, protocol="tcp", sport=sport,
                  dport=dport, flow_id=flow_id, created_at=created_at)


def tpp_probe_packet(src: str, dst: str, tpp: Any, dport: int = TPP_UDP_PORT,
                     flow_id: int = 0, vlan: int = 0, created_at: float = 0.0) -> Packet:
    """Build a standalone TPP probe packet (UDP destined to port 0x6666)."""
    base = ETHERNET_HEADER_BYTES + IPV4_HEADER_BYTES + UDP_HEADER_BYTES
    pkt = Packet(src=src, dst=dst, size=base, protocol="udp", sport=TPP_UDP_PORT,
                 dport=dport, flow_id=flow_id, vlan=vlan, created_at=created_at)
    pkt.attach_tpp(tpp, standalone=True)
    return pkt
