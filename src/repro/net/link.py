"""Full-duplex point-to-point links.

A :class:`Link` joins two :class:`~repro.net.port.Port` objects.  The link
itself only stores capacity, propagation delay and aggregate counters; the
transmission state machines live in the ports (one per direction), which is
what makes the link full duplex.

Links also carry the fault plane's degradation state (see
:mod:`repro.faults`): a time-varying Bernoulli corruption rate applied at
the *receiving* end — a failed CRC, so tx/link counters stand while the
peer's rx counters do not move — and up/down transition accounting.  The
healthy path is untouched: with ``loss_rate == 0`` no random draw happens,
so a run with an empty fault plan is byte-identical to one without any.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from .port import DROP_CORRUPTED, DROP_LINK_DOWN, DROP_PEER_DOWN

if TYPE_CHECKING:  # pragma: no cover
    from .packet import Packet
    from .port import Port


def mbps(value: float) -> float:
    """Convert megabits/second to bits/second."""
    return value * 1e6


def gbps(value: float) -> float:
    """Convert gigabits/second to bits/second."""
    return value * 1e9


class Link:
    """A full-duplex link between two ports."""

    def __init__(self, port_a: "Port", port_b: "Port", rate_bps: float,
                 delay_s: float = 10e-6, name: str = "") -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay_s < 0:
            raise ValueError("link delay cannot be negative")
        self.port_a = port_a
        self.port_b = port_b
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.up = True
        self.name = name or f"{port_a.name}<->{port_b.name}"
        self.total_bytes = 0
        self.total_packets = 0
        # Degradation state (repro.faults): Bernoulli corruption probability
        # applied per delivered packet, drawn from a seeded per-link stream.
        self.loss_rate = 0.0
        self._loss_rng: Optional[random.Random] = None
        self.packets_corrupted = 0
        self.bytes_corrupted = 0
        # Up/down transition accounting: actual state changes only (repeated
        # set_down() calls while already down do not count).
        self.down_transitions = 0
        self.up_transitions = 0
        self.last_transition_time: Optional[float] = None
        # Flight-recorder tap (repro.obs.flightrec): fault transitions on
        # this link become context records for drop forensics.  None by
        # default; every use below is guarded.
        self.recorder = None
        port_a.attach(self, port_b)
        port_b.attach(self, port_a)

    def on_transmit(self, packet: "Packet", from_port: "Port") -> None:
        """Account for a packet serialised onto the link (either direction)."""
        self.total_bytes += packet.size
        self.total_packets += 1

    def deliver_burst(self, packets: list["Packet"], from_port: "Port") -> int:
        """Batched injection: hand ``packets`` to the node at the far end of
        ``from_port`` as if they had just arrived off the wire.

        Load generators and macro benchmarks use this to drive the fabric at
        scale: it skips the per-packet serialisation/propagation state
        machine (the caller models an ideal source, not a NIC) while keeping
        link- and port-level byte/packet accounting consistent, so TPPs that
        read ``[Link:RX-Bytes]`` and friends still see coherent values.
        TPP-capable switches are fed through their batched receive path —
        one reused PacketContext and one pipeline lookup per same-flow run.
        Returns the number of packets delivered.
        """
        peer = self.other_end(from_port)
        if not self.up or not from_port.up:
            # Send-side failure: mirrors Port.send's link-down accounting.
            queue = from_port.queue
            recorder = from_port.recorder
            for packet in packets:
                packet.dropped = True
                packet.drop_reason = f"link down at {from_port.name}"
                queue.packets_dropped_total += 1
                queue.bytes_dropped_total += packet.size
                from_port.count_drop(DROP_LINK_DOWN)
                if recorder is not None:
                    recorder.on_drop(from_port.name, from_port.node.name,
                                     packet, DROP_LINK_DOWN,
                                     packet.drop_reason)
            return 0
        burst_bytes = 0
        for packet in packets:
            burst_bytes += packet.size
        count = len(packets)
        self.total_bytes += burst_bytes
        self.total_packets += count
        from_port.tx_bytes += burst_bytes
        from_port.tx_packets += count
        if not peer.up:
            # Receive-side failure: the burst was "serialised" (tx and link
            # counters above stand), then lost — mirrors _deliver_to_peer.
            # Like the counters, the drop record lands at the *sending*
            # port: the downed receive side never saw the packet.
            recorder = from_port.recorder
            for packet in packets:
                packet.dropped = True
                packet.drop_reason = "peer port down"
                from_port.count_drop(DROP_PEER_DOWN)
                if recorder is not None:
                    recorder.on_drop(from_port.name, from_port.node.name,
                                     packet, DROP_PEER_DOWN,
                                     packet.drop_reason)
            return 0
        if self.loss_rate:
            recorder = peer.recorder
            survivors = []
            for packet in packets:
                if self.corrupt(packet):
                    # Corruption is a failed CRC at the *receiving* port —
                    # the asymmetry the loss-localization TPP measures.
                    peer.error_packets += 1
                    peer.count_drop(DROP_CORRUPTED)
                    if recorder is not None:
                        recorder.on_drop(peer.name, peer.node.name, packet,
                                         DROP_CORRUPTED, packet.drop_reason)
                else:
                    survivors.append(packet)
            packets = survivors
            count = len(packets)
            burst_bytes = sum(packet.size for packet in packets)
            if not packets:
                return 0
        peer.rx_bytes += burst_bytes
        peer.rx_packets += count
        recorder = peer.recorder
        if recorder is not None:
            for packet in packets:
                recorder.on_deliver(peer, packet)
        receive_batch = getattr(peer.node, "receive_batch", None)
        if receive_batch is not None:
            receive_batch(packets, peer)
        else:
            receive = peer.node.receive
            for packet in packets:
                receive(packet, peer)
        return count

    # ---------------------------------------------------------- degradation
    def set_loss(self, loss_rate: float, rng: Optional[random.Random] = None) -> None:
        """Set the Bernoulli corruption probability for delivered packets.

        ``rng`` supplies the per-link random stream (the fault injector
        seeds one deterministically per link); without one, a stream seeded
        from the link name keeps standalone use deterministic too.
        """
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {loss_rate}")
        self.loss_rate = loss_rate
        if rng is not None:
            self._loss_rng = rng
        elif self.loss_rate and self._loss_rng is None:
            self._loss_rng = random.Random(self.name)
        if self.recorder is not None:
            self.recorder.on_fault(self, "set-loss", loss_rate)

    def clear_loss(self) -> None:
        """Stop corrupting (the counters stand; the rng stream is kept)."""
        self.loss_rate = 0.0
        if self.recorder is not None:
            self.recorder.on_fault(self, "clear-loss", 0.0)

    def corrupt(self, packet: "Packet") -> bool:
        """One Bernoulli draw for a packet reaching the far end of the wire.

        Callers guard on ``self.loss_rate`` being non-zero, so healthy
        links never consume a random draw.  A corrupted packet is marked
        dropped and counted here; the *caller* owns the receive-side port
        accounting (error_packets, drops_by_reason) and must not count the
        packet into the peer's rx counters — that tx/rx deficit is the
        signal the loss-localization TPP measures.
        """
        if self._loss_rng.random() >= self.loss_rate:
            return False
        packet.dropped = True
        packet.drop_reason = f"corrupted on {self.name}"
        self.packets_corrupted += 1
        self.bytes_corrupted += packet.size
        return True

    def set_down(self) -> None:
        """Fail the link; packets sent over it are dropped."""
        if self.up:
            self.up = False
            self.down_transitions += 1
            self.last_transition_time = self.port_a.sim.now
            if self.recorder is not None:
                self.recorder.on_fault(self, "set-down")

    def set_up(self) -> None:
        if not self.up:
            self.up = True
            self.up_transitions += 1
            self.last_transition_time = self.port_a.sim.now
            if self.recorder is not None:
                self.recorder.on_fault(self, "set-up")

    def other_end(self, port: "Port") -> "Port":
        """The port at the opposite end of ``port``."""
        if port is self.port_a:
            return self.port_b
        if port is self.port_b:
            return self.port_a
        raise ValueError(f"port {port.name} is not an endpoint of link {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.rate_bps/1e6:.0f}Mb/s {self.delay_s*1e6:.0f}us>"
