"""Full-duplex point-to-point links.

A :class:`Link` joins two :class:`~repro.net.port.Port` objects.  The link
itself only stores capacity, propagation delay and aggregate counters; the
transmission state machines live in the ports (one per direction), which is
what makes the link full duplex.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .packet import Packet
    from .port import Port


def mbps(value: float) -> float:
    """Convert megabits/second to bits/second."""
    return value * 1e6


def gbps(value: float) -> float:
    """Convert gigabits/second to bits/second."""
    return value * 1e9


class Link:
    """A full-duplex link between two ports."""

    def __init__(self, port_a: "Port", port_b: "Port", rate_bps: float,
                 delay_s: float = 10e-6, name: str = "") -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay_s < 0:
            raise ValueError("link delay cannot be negative")
        self.port_a = port_a
        self.port_b = port_b
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.up = True
        self.name = name or f"{port_a.name}<->{port_b.name}"
        self.total_bytes = 0
        self.total_packets = 0
        port_a.attach(self, port_b)
        port_b.attach(self, port_a)

    def on_transmit(self, packet: "Packet", from_port: "Port") -> None:
        """Account for a packet serialised onto the link (either direction)."""
        self.total_bytes += packet.size
        self.total_packets += 1

    def set_down(self) -> None:
        """Fail the link; packets sent over it are dropped."""
        self.up = False

    def set_up(self) -> None:
        self.up = True

    def other_end(self, port: "Port") -> "Port":
        """The port at the opposite end of ``port``."""
        if port is self.port_a:
            return self.port_b
        if port is self.port_b:
            return self.port_a
        raise ValueError(f"port {port.name} is not an endpoint of link {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.rate_bps/1e6:.0f}Mb/s {self.delay_s*1e6:.0f}us>"
