"""Full-duplex point-to-point links.

A :class:`Link` joins two :class:`~repro.net.port.Port` objects.  The link
itself only stores capacity, propagation delay and aggregate counters; the
transmission state machines live in the ports (one per direction), which is
what makes the link full duplex.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .packet import Packet
    from .port import Port


def mbps(value: float) -> float:
    """Convert megabits/second to bits/second."""
    return value * 1e6


def gbps(value: float) -> float:
    """Convert gigabits/second to bits/second."""
    return value * 1e9


class Link:
    """A full-duplex link between two ports."""

    def __init__(self, port_a: "Port", port_b: "Port", rate_bps: float,
                 delay_s: float = 10e-6, name: str = "") -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay_s < 0:
            raise ValueError("link delay cannot be negative")
        self.port_a = port_a
        self.port_b = port_b
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.up = True
        self.name = name or f"{port_a.name}<->{port_b.name}"
        self.total_bytes = 0
        self.total_packets = 0
        port_a.attach(self, port_b)
        port_b.attach(self, port_a)

    def on_transmit(self, packet: "Packet", from_port: "Port") -> None:
        """Account for a packet serialised onto the link (either direction)."""
        self.total_bytes += packet.size
        self.total_packets += 1

    def deliver_burst(self, packets: list["Packet"], from_port: "Port") -> int:
        """Batched injection: hand ``packets`` to the node at the far end of
        ``from_port`` as if they had just arrived off the wire.

        Load generators and macro benchmarks use this to drive the fabric at
        scale: it skips the per-packet serialisation/propagation state
        machine (the caller models an ideal source, not a NIC) while keeping
        link- and port-level byte/packet accounting consistent, so TPPs that
        read ``[Link:RX-Bytes]`` and friends still see coherent values.
        TPP-capable switches are fed through their batched receive path —
        one reused PacketContext and one pipeline lookup per same-flow run.
        Returns the number of packets delivered.
        """
        peer = self.other_end(from_port)
        if not self.up or not from_port.up:
            # Send-side failure: mirrors Port.send's link-down accounting.
            queue = from_port.queue
            for packet in packets:
                packet.dropped = True
                packet.drop_reason = f"link down at {from_port.name}"
                queue.packets_dropped_total += 1
                queue.bytes_dropped_total += packet.size
            return 0
        burst_bytes = 0
        for packet in packets:
            burst_bytes += packet.size
        count = len(packets)
        self.total_bytes += burst_bytes
        self.total_packets += count
        from_port.tx_bytes += burst_bytes
        from_port.tx_packets += count
        if not peer.up:
            # Receive-side failure: the burst was "serialised" (tx and link
            # counters above stand), then lost — mirrors _deliver_to_peer.
            for packet in packets:
                packet.dropped = True
                packet.drop_reason = "peer port down"
            return 0
        peer.rx_bytes += burst_bytes
        peer.rx_packets += count
        receive_batch = getattr(peer.node, "receive_batch", None)
        if receive_batch is not None:
            receive_batch(packets, peer)
        else:
            receive = peer.node.receive
            for packet in packets:
                receive(packet, peer)
        return count

    def set_down(self) -> None:
        """Fail the link; packets sent over it are dropped."""
        self.up = False

    def set_up(self) -> None:
        self.up = True

    def other_end(self, port: "Port") -> "Port":
        """The port at the opposite end of ``port``."""
        if port is self.port_a:
            return self.port_b
        if port is self.port_b:
            return self.port_a
        raise ValueError(f"port {port.name} is not an endpoint of link {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.rate_bps/1e6:.0f}Mb/s {self.delay_s*1e6:.0f}us>"
