"""Traffic generators.

Three kinds of workloads drive the reproduced experiments:

* :class:`RateLimitedFlow` — a UDP stream paced at a configurable rate.  RCP*
  (§2.2) and CONGA* (§2.4) are built on flows like these whose rate or path
  is adjusted by the application.
* :class:`MessageWorkload` — the all-to-all short-message (incast-flavoured)
  workload of Figure 1: every host sends fixed-size messages to every other
  host with exponential inter-arrival times tuned to an offered load.
* :class:`ThroughputMeter` — receiver-side accounting used to produce the
  throughput time series the figures plot.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from .node import Host
from .packet import (ETHERNET_HEADER_BYTES, IPV4_HEADER_BYTES, UDP_HEADER_BYTES,
                     Packet, udp_packet)
from .sim import Simulator

_flow_ids = itertools.count(1)

#: Default maximum transport payload per packet (1500 B MTU minus headers).
DEFAULT_MTU_PAYLOAD = 1500 - IPV4_HEADER_BYTES - UDP_HEADER_BYTES


def next_flow_id() -> int:
    """Allocate a unique flow identifier."""
    return next(_flow_ids)


class RateLimitedFlow:
    """A paced UDP flow whose rate can be changed while it runs.

    The pacing is deterministic (one packet every ``packet_size/rate``
    seconds), which matches the paper's description of RCP* flows as
    "rate-limited UDP streams".
    """

    def __init__(self, sim: Simulator, src: Host, dst: str, rate_bps: float,
                 packet_payload_bytes: int = 1000, dport: int = 20000,
                 vlan: int = 0, flow_id: Optional[int] = None,
                 start_time: float = 0.0, stop_time: Optional[float] = None) -> None:
        if rate_bps <= 0:
            raise ValueError("flow rate must be positive")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_bps = rate_bps
        self.packet_payload_bytes = packet_payload_bytes
        self.dport = dport
        self.vlan = vlan
        self.flow_id = flow_id if flow_id is not None else next_flow_id()
        self.stop_time = stop_time
        self.packets_sent = 0
        self.bytes_sent = 0
        self.running = False
        self._next_send_event = None
        sim.schedule(start_time, self.start)

    # ----------------------------------------------------------------- control
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._schedule_next(0.0)

    def stop(self) -> None:
        self.running = False
        if self._next_send_event is not None:
            self._next_send_event.cancel()
            self._next_send_event = None

    def set_rate(self, rate_bps: float) -> None:
        """Change the pacing rate; takes effect from the next packet."""
        if rate_bps <= 0:
            raise ValueError("flow rate must be positive")
        self.rate_bps = rate_bps

    def set_vlan(self, vlan: int) -> None:
        """Change the path-selection tag stamped on subsequent packets (§2.4)."""
        self.vlan = vlan

    # ------------------------------------------------------------------ sending
    def _packet_interval(self) -> float:
        wire_bytes = (ETHERNET_HEADER_BYTES + IPV4_HEADER_BYTES + UDP_HEADER_BYTES
                      + self.packet_payload_bytes)
        return wire_bytes * 8.0 / self.rate_bps

    def _schedule_next(self, delay: float) -> None:
        self._next_send_event = self.sim.schedule(delay, self._send_one,
                                                  name=f"flow{self.flow_id}")

    def _send_one(self) -> None:
        if not self.running:
            return
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            self.running = False
            return
        packet = udp_packet(self.src.name, self.dst, self.packet_payload_bytes,
                            dport=self.dport, flow_id=self.flow_id, vlan=self.vlan,
                            created_at=self.sim.now)
        self.src.send(packet)
        self.packets_sent += 1
        self.bytes_sent += packet.size
        self._schedule_next(self._packet_interval())


@dataclass
class Message:
    """One application message (a burst of back-to-back packets)."""

    src: str
    dst: str
    size_bytes: int
    created_at: float
    packets: int = 0


class MessageWorkload:
    """All-to-all short messages with exponential inter-arrivals (Figure 1).

    Each host sends ``message_bytes`` messages to destinations chosen
    round-robin among the other hosts; message arrivals form a Poisson
    process whose rate is set so the aggregate offered load equals
    ``offered_load`` of each host's access-link capacity.
    """

    def __init__(self, sim: Simulator, hosts: list[Host], link_rate_bps: float,
                 offered_load: float = 0.3, message_bytes: int = 10_000,
                 packet_payload_bytes: int = 1000, dport: int = 20000,
                 seed: int = 1, start_time: float = 0.0,
                 stop_time: Optional[float] = None) -> None:
        if not 0 < offered_load <= 1.0:
            raise ValueError("offered_load must be in (0, 1]")
        if len(hosts) < 2:
            raise ValueError("the workload needs at least two hosts")
        self.sim = sim
        self.hosts = hosts
        self.message_bytes = message_bytes
        self.packet_payload_bytes = packet_payload_bytes
        self.dport = dport
        self.stop_time = stop_time
        self.messages_sent: list[Message] = []
        self._rng = random.Random(seed)
        # Per-host message arrival rate: offered_load * capacity / message size.
        per_host_bps = offered_load * link_rate_bps
        self._message_rate = per_host_bps / (message_bytes * 8.0)
        self._destinations = {
            host.name: [other for other in hosts if other is not host] for host in hosts}
        self._dst_cursor = {host.name: 0 for host in hosts}
        for host in hosts:
            sim.schedule(start_time + self._next_interval(), self._send_message, host)

    def _next_interval(self) -> float:
        return self._rng.expovariate(self._message_rate)

    def _send_message(self, host: Host) -> None:
        if self.stop_time is not None and self.sim.now >= self.stop_time:
            return
        destinations = self._destinations[host.name]
        cursor = self._dst_cursor[host.name]
        dst = destinations[cursor % len(destinations)]
        self._dst_cursor[host.name] = cursor + 1

        message = Message(src=host.name, dst=dst.name, size_bytes=self.message_bytes,
                          created_at=self.sim.now)
        flow_id = next_flow_id()
        remaining = self.message_bytes
        while remaining > 0:
            payload = min(self.packet_payload_bytes, remaining)
            packet = udp_packet(host.name, dst.name, payload, dport=self.dport,
                                flow_id=flow_id, created_at=self.sim.now)
            host.send(packet)
            message.packets += 1
            remaining -= payload
        self.messages_sent.append(message)
        self.sim.schedule(self._next_interval(), self._send_message, host)


class ThroughputMeter:
    """Measures goodput at a receiving host in fixed windows.

    Attach with ``host.listen(dport, meter.on_packet)`` (or use it as the
    host's default listener); the per-window series is what Figure 2 and the
    CONGA experiment plot.
    """

    def __init__(self, sim: Simulator, window_s: float = 0.1,
                 on_window: Optional[Callable[[float, float], None]] = None) -> None:
        self.sim = sim
        self.window_s = window_s
        self.on_window = on_window
        self.total_bytes = 0
        self.total_packets = 0
        self.windows: list[tuple[float, float]] = []   # (window end time, throughput bps)
        self._window_bytes = 0
        self._process = sim.schedule_periodic(window_s, self._roll_window)

    def on_packet(self, packet: Packet) -> None:
        self.total_bytes += packet.size
        self.total_packets += 1
        self._window_bytes += packet.size

    def _roll_window(self) -> None:
        throughput_bps = self._window_bytes * 8.0 / self.window_s
        self.windows.append((self.sim.now, throughput_bps))
        if self.on_window is not None:
            self.on_window(self.sim.now, throughput_bps)
        self._window_bytes = 0

    def stop(self) -> None:
        self._process.stop()

    def mean_throughput_bps(self, skip_windows: int = 0) -> float:
        """Average over recorded windows, optionally skipping a warm-up prefix."""
        usable = self.windows[skip_windows:]
        if not usable:
            return 0.0
        return sum(bps for _, bps in usable) / len(usable)
