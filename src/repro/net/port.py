"""Ports and egress queues.

Each :class:`Port` models one full-duplex interface on a node.  Transmission
follows the usual store-and-forward state machine: packets are placed in a
drop-tail egress queue; when the transmitter is idle the head packet is
serialised onto the attached link (``size * 8 / rate`` seconds) and then
propagated to the peer port (link propagation delay).

The egress queue keeps the occupancy and drop accounting the paper's TPPs
read ([Queue:QueueOccupancy], [Link:QueueSize], drop stats, …).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .link import Link
    from .node import Node
    from .sim import Simulator

#: Canonical drop-accounting categories.  Every drop site stamps the packet
#: with a human-readable ``drop_reason`` *and* counts the drop under one of
#: these categories in the owning port's ``drops_by_reason``, so experiment
#: telemetry can aggregate losses by cause instead of re-parsing reason
#: strings off individual packets.
DROP_LINK_DOWN = "link-down"
DROP_QUEUE_OVERFLOW = "queue-overflow"
DROP_PEER_DOWN = "peer-down"
DROP_CORRUPTED = "corrupted"


class EgressQueue:
    """Drop-tail FIFO with byte/packet occupancy and drop accounting."""

    def __init__(self, capacity_bytes: int = 512 * 1024,
                 capacity_packets: Optional[int] = None) -> None:
        if capacity_bytes <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.capacity_packets = capacity_packets
        self._queue: deque[Packet] = deque()
        self.bytes_enqueued_total = 0
        self.packets_enqueued_total = 0
        self.bytes_dropped_total = 0
        self.packets_dropped_total = 0
        self.bytes_dequeued_total = 0
        self.packets_dequeued_total = 0
        self._occupancy_bytes = 0

    # ------------------------------------------------------------- occupancy
    @property
    def occupancy_bytes(self) -> int:
        """Bytes currently waiting in the queue."""
        return self._occupancy_bytes

    @property
    def occupancy_packets(self) -> int:
        """Packets currently waiting in the queue."""
        return len(self._queue)

    def is_empty(self) -> bool:
        return not self._queue

    # ------------------------------------------------------------ operations
    def enqueue(self, packet: Packet) -> bool:
        """Append a packet; returns False (and counts a drop) when full."""
        over_bytes = self._occupancy_bytes + packet.size > self.capacity_bytes
        over_packets = (self.capacity_packets is not None
                        and len(self._queue) >= self.capacity_packets)
        if over_bytes or over_packets:
            self.bytes_dropped_total += packet.size
            self.packets_dropped_total += 1
            return False
        self._queue.append(packet)
        self._occupancy_bytes += packet.size
        self.bytes_enqueued_total += packet.size
        self.packets_enqueued_total += 1
        return True

    def dequeue(self) -> Optional[Packet]:
        """Pop the head packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._occupancy_bytes -= packet.size
        self.bytes_dequeued_total += packet.size
        self.packets_dequeued_total += 1
        return packet

    def __len__(self) -> int:
        return len(self._queue)


class Port:
    """One interface of a node, with an egress queue and a transmitter."""

    def __init__(self, node: "Node", index: int,
                 queue_capacity_bytes: int = 512 * 1024,
                 queue_capacity_packets: Optional[int] = None) -> None:
        self.node = node
        self.index = index
        self.link: Optional["Link"] = None
        self.peer: Optional["Port"] = None
        self.queue = EgressQueue(queue_capacity_bytes, queue_capacity_packets)
        self.transmitting = False
        self.up = True
        # Flight-recorder tap (repro.obs.flightrec).  None by default: every
        # hook site below guards on it, so an untapped port runs exactly the
        # pre-recorder code path (the recorder-off byte-identity invariant).
        self.recorder = None
        # Raw counters (the switch statistics layer derives rates from these).
        self.tx_bytes = 0
        self.tx_packets = 0
        self.rx_bytes = 0
        self.rx_packets = 0
        self.error_packets = 0
        # Drops at this port, keyed by the categories above.
        self.drops_by_reason: dict[str, int] = {}
        # Precomputed labels: the transmit state machine schedules two events
        # per packet, and building f-strings there is measurable at scale.
        self._name = f"{node.name}.p{index}"
        self._tx_name = f"tx@{self._name}"
        self._prop_name = f"prop@{self._name}"

    # -------------------------------------------------------------- identity
    @property
    def name(self) -> str:
        return self._name

    @property
    def sim(self) -> "Simulator":
        return self.node.sim

    @property
    def rate_bps(self) -> float:
        if self.link is None:
            raise RuntimeError(f"port {self.name} is not attached to a link")
        return self.link.rate_bps

    def attach(self, link: "Link", peer: "Port") -> None:
        self.link = link
        self.peer = peer

    def count_drop(self, category: str) -> None:
        """Count one drop at this port under a canonical category."""
        self.drops_by_reason[category] = self.drops_by_reason.get(category, 0) + 1

    # ------------------------------------------------------------ transmit path
    def send(self, packet: Packet) -> bool:
        """Enqueue a packet for transmission out of this port.

        Returns False when the packet was dropped (queue overflow or link
        down); the caller is responsible for any loss handling.
        """
        if self.link is None or self.peer is None:
            raise RuntimeError(f"port {self.name} is not connected")
        if not self.up or not self.link.up:
            packet.dropped = True
            packet.drop_reason = f"link down at {self.name}"
            self.queue.packets_dropped_total += 1
            self.queue.bytes_dropped_total += packet.size
            self.count_drop(DROP_LINK_DOWN)
            if self.recorder is not None:
                self.recorder.on_drop(self._name, self.node.name, packet,
                                      DROP_LINK_DOWN, packet.drop_reason)
            return False
        accepted = self.queue.enqueue(packet)
        if not accepted:
            packet.dropped = True
            packet.drop_reason = f"queue overflow at {self.name}"
            self.count_drop(DROP_QUEUE_OVERFLOW)
            if self.recorder is not None:
                self.recorder.on_drop(self._name, self.node.name, packet,
                                      DROP_QUEUE_OVERFLOW, packet.drop_reason)
            self.node.on_packet_dropped(packet, self)
            return False
        packet.enqueue_times.append(self.sim.now)
        if self.recorder is not None:
            self.recorder.on_enqueue(self, packet)
        if not self.transmitting:
            self._start_transmission()
        return True

    def send_many(self, packets: list[Packet]) -> int:
        """Enqueue a burst of packets for transmission in one call.

        The link-state checks run once for the whole burst, but enqueueing
        interleaves with transmitter kicks exactly like a loop of
        :meth:`send` calls — in particular, an idle transmitter dequeues the
        burst's head *before* later packets hit the queue-capacity check, so
        drop behaviour at a near-full queue is identical.  Returns how many
        packets were accepted (the rest were dropped, with per-packet drop
        accounting).
        """
        if self.link is None or self.peer is None:
            raise RuntimeError(f"port {self.name} is not connected")
        recorder = self.recorder
        if not self.up or not self.link.up:
            queue = self.queue
            for packet in packets:
                packet.dropped = True
                packet.drop_reason = f"link down at {self.name}"
                queue.packets_dropped_total += 1
                queue.bytes_dropped_total += packet.size
                self.count_drop(DROP_LINK_DOWN)
                if recorder is not None:
                    recorder.on_drop(self._name, self.node.name, packet,
                                     DROP_LINK_DOWN, packet.drop_reason)
            return 0
        queue = self.queue
        now = self.sim.now
        accepted = 0
        for packet in packets:
            if queue.enqueue(packet):
                packet.enqueue_times.append(now)
                accepted += 1
                if recorder is not None:
                    recorder.on_enqueue(self, packet)
                if not self.transmitting:
                    self._start_transmission()
            else:
                packet.dropped = True
                packet.drop_reason = f"queue overflow at {self.name}"
                self.count_drop(DROP_QUEUE_OVERFLOW)
                if recorder is not None:
                    recorder.on_drop(self._name, self.node.name, packet,
                                     DROP_QUEUE_OVERFLOW, packet.drop_reason)
                self.node.on_packet_dropped(packet, self)
        return accepted

    def _start_transmission(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self.transmitting = False
            return
        if self.recorder is not None:
            self.recorder.on_dequeue(self, packet)
        self.transmitting = True
        tx_time = packet.transmission_time(self.link.rate_bps)
        self.sim.schedule(tx_time, self._finish_transmission, packet,
                          name=self._tx_name)

    def _finish_transmission(self, packet: Packet) -> None:
        self.tx_bytes += packet.size
        self.tx_packets += 1
        self.link.on_transmit(packet, self)
        next_packet = self.queue.dequeue()
        if next_packet is not None and self.recorder is not None:
            self.recorder.on_dequeue(self, next_packet)
        if next_packet is None:
            # Propagate to the peer after the link delay; transmitter idles.
            self.transmitting = False
            self.sim.schedule(self.link.delay_s, self._deliver_to_peer, packet,
                              name=self._prop_name)
            return
        # Busy port: the propagation of this packet and the serialisation of
        # the next one are scheduled together (one heap insertion pass).  The
        # propagation spec comes first, so the two events carry the same
        # (time, seq) keys — hence the same execution order — as the
        # schedule() pair the unbatched chain would have produced.
        self.sim.schedule_many(
            ((self.link.delay_s, self._deliver_to_peer, (packet,), self._prop_name),
             (next_packet.transmission_time(self.link.rate_bps),
              self._finish_transmission, (next_packet,), self._tx_name)))

    def _deliver_to_peer(self, packet: Packet) -> None:
        peer = self.peer
        if peer is None or not peer.up:
            packet.dropped = True
            packet.drop_reason = "peer port down"
            self.count_drop(DROP_PEER_DOWN)
            if self.recorder is not None:
                # Counted at the *sending* port — the receive side never saw
                # the packet (see deliver_burst's asymmetry note).
                self.recorder.on_drop(self._name, self.node.name, packet,
                                      DROP_PEER_DOWN, packet.drop_reason)
            return
        link = self.link
        if link.loss_rate and link.corrupt(packet):
            # Receive-side corruption (a failed CRC): the packet serialised
            # and propagated — tx and link counters stand — but is never
            # counted into the peer's rx counters.  That tx/rx deficit is
            # exactly what the loss-localization TPP diffs across hops.
            peer.error_packets += 1
            peer.count_drop(DROP_CORRUPTED)
            if peer.recorder is not None:
                peer.recorder.on_drop(peer._name, peer.node.name, packet,
                                      DROP_CORRUPTED, packet.drop_reason)
            return
        peer.rx_bytes += packet.size
        peer.rx_packets += 1
        if peer.recorder is not None:
            peer.recorder.on_deliver(peer, packet)
        peer.node.receive(packet, peer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.name} q={self.queue.occupancy_packets}pkts>"
