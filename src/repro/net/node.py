"""Network nodes: the abstract :class:`Node` and the end-host :class:`Host`.

Switches live in :mod:`repro.switches.switch`; this module only provides the
pieces the network substrate needs to wire a topology together.

A :class:`Host` exposes two hook points used by the end-host stack (§4):

* ``tx_hooks`` run on every outgoing packet (the dataplane shim uses this to
  attach TPPs according to its filter table), and
* ``rx_hooks`` run on every incoming packet *before* application delivery
  (the shim uses this to strip completed TPPs, echo standalone probes back to
  their source, and hand results to aggregators).
"""

from __future__ import annotations

from typing import Callable, Optional

from .packet import Packet
from .port import Port
from .sim import Simulator

# A transmit hook may mutate the packet (e.g. attach a TPP); returning False
# drops the packet (used by access-control enforcement).
TxHook = Callable[[Packet], bool]
# A receive hook returns True when it fully consumed the packet.
RxHook = Callable[[Packet, "Host"], bool]


class Node:
    """Anything with ports that can receive packets."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: list[Port] = []
        # Flight-recorder tap (repro.obs.flightrec); None by default, every
        # record site guards on it so untapped nodes pay one attribute load.
        self.recorder = None

    def add_port(self, queue_capacity_bytes: int = 512 * 1024,
                 queue_capacity_packets: Optional[int] = None) -> Port:
        port = Port(self, len(self.ports), queue_capacity_bytes, queue_capacity_packets)
        self.ports.append(port)
        return port

    def receive(self, packet: Packet, in_port: Port) -> None:
        raise NotImplementedError

    def on_packet_dropped(self, packet: Packet, port: Port) -> None:
        """Called when a packet is dropped at one of this node's egress queues."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} ports={len(self.ports)}>"


class Host(Node):
    """An end host: a single-homed traffic source/sink with stack hook points."""

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self.tx_hooks: list[TxHook] = []
        self.rx_hooks: list[RxHook] = []
        self._listeners: dict[int, Callable[[Packet], None]] = {}
        self.default_listener: Optional[Callable[[Packet], None]] = None
        self.packets_sent = 0
        self.packets_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.received_log: list[Packet] = []
        self.keep_received_log = False

    # ------------------------------------------------------------- wiring
    @property
    def uplink_port(self) -> Port:
        """The host's (single) attachment port."""
        if not self.ports:
            raise RuntimeError(f"host {self.name} has no ports")
        return self.ports[0]

    def add_tx_hook(self, hook: TxHook) -> None:
        self.tx_hooks.append(hook)

    def add_rx_hook(self, hook: RxHook) -> None:
        self.rx_hooks.append(hook)

    def listen(self, dport: int, callback: Callable[[Packet], None]) -> None:
        """Deliver packets destined to ``dport`` to ``callback``."""
        self._listeners[dport] = callback

    # --------------------------------------------------------------- traffic
    def send(self, packet: Packet) -> bool:
        """Send a packet out of the host's uplink, running transmit hooks."""
        packet.created_at = packet.created_at or self.sim.now
        for hook in self.tx_hooks:
            if not hook(packet):
                packet.dropped = True
                packet.drop_reason = f"tx hook rejected at {self.name}"
                return False
        self.packets_sent += 1
        self.bytes_sent += packet.size
        packet.record_hop(self.name)
        if self.recorder is not None:
            # After the tx hooks: the recorder sees the packet as it enters
            # the wire path, TPP attached.
            self.recorder.on_host_send(self, packet)
        return self.uplink_port.send(packet)

    def send_many(self, packets: list[Packet]) -> int:
        """Send a burst of packets in one call (the batched injection path).

        Transmit hooks still run per packet and in order (the dataplane shim
        relies on seeing every packet), but the uplink's link-state checks
        and transmitter kick happen once for the whole burst.  Returns how
        many packets were accepted onto the uplink queue.
        """
        now = self.sim.now
        name = self.name
        accepted: list[Packet] = []
        for packet in packets:
            packet.created_at = packet.created_at or now
            ok = True
            for hook in self.tx_hooks:
                if not hook(packet):
                    packet.dropped = True
                    packet.drop_reason = f"tx hook rejected at {name}"
                    ok = False
                    break
            if not ok:
                continue
            self.packets_sent += 1
            self.bytes_sent += packet.size
            packet.record_hop(name)
            if self.recorder is not None:
                self.recorder.on_host_send(self, packet)
            accepted.append(packet)
        if not accepted:
            return 0
        return self.uplink_port.send_many(accepted)

    def receive(self, packet: Packet, in_port: Port) -> None:
        packet.record_hop(self.name)
        for hook in self.rx_hooks:
            if hook(packet, self):
                return
        self.deliver(packet)

    def deliver(self, packet: Packet) -> None:
        """Hand a packet to the local application layer."""
        self.packets_received += 1
        self.bytes_received += packet.size
        packet.delivered_at = self.sim.now
        if self.keep_received_log:
            self.received_log.append(packet)
        listener = self._listeners.get(packet.dport, self.default_listener)
        if listener is not None:
            listener(packet)
