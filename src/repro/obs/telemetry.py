"""The :class:`Telemetry` context: spans and a typed metrics registry.

The runtime's own observability plane — the same argument the paper makes
for dataplanes, applied to the simulator: visibility must be a first-class
primitive, and it must never perturb what it observes.  Two faces:

* **Spans** — wall-clock intervals around coarse phases
  (``experiment.build``, ``experiment.run``, ``engine.slice``,
  ``sweep.task``).  ``span(name)`` is a context manager for nested phases;
  ``interval(name)`` is the begin/finish form for work that overlaps (the
  sweep pool's in-flight tasks).  Finished spans record parent links, so
  exporters can compute self-times and Perfetto nesting.
* **Metrics** — a typed registry (:class:`Counter` push-incremented,
  :class:`Gauge` pull-read at snapshot time, :class:`Histogram` of
  observations).  Engine components do **not** call the registry on their
  hot paths; they keep their existing plain-int counters and the session
  layer registers *gauges over them*, so observation is a read at snapshot
  time, never a write per event.

Two invariants carry the design (enforced by ``tests/test_obs.py``):

1. **No perturbation.**  Spans and metrics read wall-clock and existing
   counters only — never simulation state, never an RNG.  Event totals and
   canonical artifacts are byte-identical with telemetry off, on, or
   exporting.
2. **Zero overhead when off.**  A disabled telemetry's ``span()`` /
   ``interval()`` return one shared no-op object and record nothing; the
   hot path never takes a branch that exists only for telemetry.

The *ambient* telemetry (:func:`get_telemetry` / :func:`use`) defaults to
the disabled :data:`NULL_TELEMETRY`; experiments pick it up at build time
unless handed an explicit instance.
"""

from __future__ import annotations

import contextlib
import math
import time
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NULL_TELEMETRY",
    "Span", "Telemetry", "get_telemetry", "set_telemetry", "use",
]


# --------------------------------------------------------------------------
# Metrics
# --------------------------------------------------------------------------
class Counter:
    """A monotonically increasing count, push-incremented by its owner."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def read(self) -> int:
        return self.value


class Gauge:
    """A pull-based reading: ``fn()`` is called at snapshot time only."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], Any]) -> None:
        self.name = name
        self.fn = fn

    def read(self) -> Any:
        return self.fn()


class Histogram:
    """Wall-clock (or any float) observations: count/sum/min/max + log2 bins.

    Bins are keyed by the power-of-two exponent of the observation
    (``frexp``), so the snapshot stays small at any observation count.
    """

    __slots__ = ("name", "count", "total", "min", "max", "bins")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.bins: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        exponent = 0 if value <= 0 else max(-64, min(64, math.frexp(value)[1]))
        self.bins[exponent] = self.bins.get(exponent, 0) + 1

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": (self.total / self.count) if self.count else None,
            "log2_bins": {str(exp): self.bins[exp] for exp in sorted(self.bins)},
        }


class MetricsRegistry:
    """Named, typed metrics.  Re-registering a name with a different type
    is an error; re-registering a gauge replaces its reader (components are
    rebuilt per experiment, the registry may outlive them)."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        self._check_free(name, self._counters)
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str, fn: Callable[[], Any]) -> Gauge:
        self._check_free(name, self._gauges)
        gauge = Gauge(name, fn)
        self._gauges[name] = gauge
        return gauge

    def histogram(self, name: str) -> Histogram:
        self._check_free(name, self._histograms)
        return self._histograms.setdefault(name, Histogram(name))

    def _check_free(self, name: str, own: dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(f"metric {name!r} already registered "
                                 f"with a different type")

    def snapshot(self) -> dict:
        """Canonical rendering: sorted names, gauges read *now*.

        A gauge whose reader raises (its component was torn down) reports
        ``None`` rather than poisoning the snapshot.
        """
        gauges: dict[str, Any] = {}
        for name in sorted(self._gauges):
            try:
                gauges[name] = self._gauges[name].read()
            except Exception:            # noqa: BLE001 - snapshot must succeed
                gauges[name] = None
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": gauges,
            "histograms": {name: self._histograms[name].snapshot()
                           for name in sorted(self._histograms)},
        }


# --------------------------------------------------------------------------
# Spans
# --------------------------------------------------------------------------
class Span:
    """One recorded phase: name, wall-clock interval, parent link, args.

    Use via ``with telemetry.span(name):`` for nested phases, or
    ``handle = telemetry.interval(name)`` … ``handle.finish()`` for
    overlapping work.  ``duration`` is valid once the span has closed.
    """

    __slots__ = ("telemetry", "name", "args", "track", "start", "end",
                 "parent", "index")

    def __init__(self, telemetry: "Telemetry", name: str, args: dict,
                 track: Optional[str]) -> None:
        self.telemetry = telemetry
        self.name = name
        self.args = args
        self.track = track
        self.start = 0.0
        self.end: Optional[float] = None
        self.parent: Optional[int] = None
        self.index: Optional[int] = None

    @property
    def duration(self) -> float:
        """Seconds from start to finish (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def elapsed(self) -> float:
        """Seconds since start — reads the clock while the span is open."""
        end = self.end if self.end is not None else self.telemetry.clock()
        return end - self.start

    def set(self, **args: Any) -> None:
        """Attach extra key/value arguments to the span."""
        self.args.update(args)

    def finish(self) -> "Span":
        """Close an :meth:`Telemetry.interval` span."""
        self.telemetry._finish(self, stacked=False)
        return self

    # -------------------------------------------------------- with-protocol
    def __enter__(self) -> "Span":
        self.telemetry._enter(self)
        return self

    def __exit__(self, *exc: Any) -> None:
        self.telemetry._finish(self, stacked=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1e3:.3f}ms" if self.end is not None else "open"
        return f"<Span {self.name} {state}>"


class _NullSpan:
    """The shared do-nothing span a disabled telemetry hands out."""

    __slots__ = ()
    duration = 0.0
    elapsed = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass

    def set(self, **args: Any) -> None:
        pass

    def finish(self) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


# --------------------------------------------------------------------------
# The context
# --------------------------------------------------------------------------
class Telemetry:
    """One observability context: a span recorder plus a metrics registry.

    Args:
        enabled: when False, :meth:`span` / :meth:`interval` return the
            shared no-op span and nothing is ever recorded — the
            zero-overhead-off contract.
        slices: how many sub-intervals :meth:`repro.session.Experiment.run`
            splits the simulated duration into (one ``engine.slice`` span,
            one events-per-slice observation each).  0 keeps a single
            ``engine.run`` span.  Slicing never perturbs the simulation:
            ``run(until=a); run(until=b)`` executes the identical event
            sequence as ``run(until=b)``.
        clock: the time source (``time.perf_counter``); injectable for
            tests.
    """

    def __init__(self, enabled: bool = True, *, slices: int = 0,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        if slices < 0:
            raise ValueError("slices must be >= 0")
        self._enabled = bool(enabled)
        self.slices = slices
        self.clock = clock
        self.metrics = MetricsRegistry()
        self.spans: list[Span] = []
        self._stack: list[int] = []

    @property
    def enabled(self) -> bool:
        return self._enabled

    # ----------------------------------------------------------------- spans
    def span(self, name: str, *, track: Optional[str] = None, **args: Any):
        """A context-manager span; no-op (shared singleton) when disabled."""
        if not self._enabled:
            return _NULL_SPAN
        return Span(self, name, args, track)

    def interval(self, name: str, *, track: Optional[str] = None, **args: Any):
        """A begin-now span closed by ``.finish()`` — for overlapping work.

        The parent is whatever span is open *now*; unlike :meth:`span` it
        never joins the nesting stack, so intervals may overlap freely
        (exporters put each track on its own row).
        """
        if not self._enabled:
            return _NULL_SPAN
        span = Span(self, name, args, track)
        span.parent = self._stack[-1] if self._stack else None
        span.start = self.clock()
        return span

    def _enter(self, span: Span) -> None:
        span.parent = self._stack[-1] if self._stack else None
        span.index = len(self.spans)
        self.spans.append(span)
        self._stack.append(span.index)
        span.start = self.clock()

    def _finish(self, span: Span, *, stacked: bool) -> None:
        if span.end is not None:
            return                        # idempotent (double finish/exit)
        span.end = self.clock()
        if span.index is None:            # interval: recorded at finish time
            span.index = len(self.spans)
            self.spans.append(span)
        if stacked and self._stack and self._stack[-1] == span.index:
            self._stack.pop()

    # ------------------------------------------------------------- reductions
    def self_times(self) -> dict[str, float]:
        """Per-span-name *self* wall-clock: duration minus child durations."""
        own = [span.duration for span in self.spans]
        for span in self.spans:
            if span.parent is not None and span.end is not None:
                own[span.parent] -= span.duration
        totals: dict[str, float] = {}
        for span, self_s in zip(self.spans, own):
            if span.end is not None:
                totals[span.name] = totals.get(span.name, 0.0) + self_s
        return totals

    def span_summary(self) -> dict[str, dict]:
        """Per-name aggregates: count, total and self wall-clock seconds."""
        self_times = self.self_times()
        summary: dict[str, dict] = {}
        for span in self.spans:
            if span.end is None:
                continue
            row = summary.setdefault(span.name,
                                     {"count": 0, "total_s": 0.0, "self_s": 0.0})
            row["count"] += 1
            row["total_s"] += span.duration
        for name, self_s in self_times.items():
            summary[name]["self_s"] = self_s
        return {name: summary[name] for name in sorted(summary)}

    def snapshot(self) -> dict:
        """The canonical-JSON telemetry snapshot: metrics + span aggregates.

        Wall-clock through and through, so this never belongs in a
        *canonical* artifact; it travels in result/manifest side channels
        (``ExperimentResult.telemetry``, the sweep manifest) instead.
        """
        return {"metrics": self.metrics.snapshot(),
                "spans": self.span_summary()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self._enabled else "off"
        return f"<Telemetry {state} spans={len(self.spans)}>"


#: The ambient default: disabled, shared, recording nothing.
NULL_TELEMETRY = Telemetry(enabled=False)

_ACTIVE: Telemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry:
    """The ambient telemetry (:data:`NULL_TELEMETRY` unless installed)."""
    return _ACTIVE


def set_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Install the ambient telemetry; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous


@contextlib.contextmanager
def use(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Ambient-install ``telemetry`` for the duration of the block."""
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
