"""Provenance stamping for recorded artifacts (BENCH_*.json and friends).

A benchmark number without its environment is a rumor: the committed
``BENCH_*.json`` artifacts carry a uniform ``provenance`` block so any two
recorded runs can be compared knowing *what* ran *where*:

* ``git_commit`` — the HEAD commit of the working tree the run came from
  (``None`` outside a git checkout; ``dirty`` flags uncommitted changes),
* ``python`` / ``implementation`` / ``platform`` / ``machine`` — the
  interpreter and host,
* ``hostname`` / ``cpu_count`` — where and how wide,
* ``config_fingerprint`` — blake2b over the canonical JSON rendering of
  the benchmark's workload configuration, so artifacts whose *inputs*
  differ can never be mistaken for comparable runs.

Everything degrades to ``None`` rather than raising — provenance must
never be the reason a benchmark fails.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import socket
import subprocess
from typing import Any, Optional

__all__ = ["config_fingerprint", "provenance", "stamp"]


def config_fingerprint(config: Any) -> str:
    """blake2b over the canonical JSON rendering of a config structure."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"),
                           default=repr)
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


def _git(*args: str) -> Optional[str]:
    try:
        out = subprocess.run(["git", *args], capture_output=True, text=True,
                             timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def git_commit() -> Optional[str]:
    """The working tree's HEAD commit, ``"-dirty"``-suffixed when modified."""
    commit = _git("rev-parse", "HEAD")
    if not commit:
        return None
    status = _git("status", "--porcelain")
    if status:
        commit += "-dirty"
    return commit


def provenance(config: Any = None) -> dict:
    """The uniform provenance block every recorded artifact carries."""
    try:
        hostname = socket.gethostname()
    except OSError:  # pragma: no cover - defensive
        hostname = None
    block = {
        "git_commit": git_commit(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "hostname": hostname,
        "cpu_count": os.cpu_count(),
    }
    if config is not None:
        block["config_fingerprint"] = config_fingerprint(config)
    return block


def stamp(artifact: dict, config: Any = None) -> dict:
    """Attach a ``provenance`` block to ``artifact`` (in place) and return it.

    ``config`` defaults to the artifact's own ``workload`` / ``config``
    section when present, so most callers just ``stamp(artifact)``.
    """
    if config is None:
        config = artifact.get("workload", artifact.get("config"))
    artifact["provenance"] = provenance(config)
    return artifact
