"""repro.obs.flightrec — the dataplane flight recorder.

The paper's promise is *visibility*: an operator should be able to ask
"what happened to this packet, hop by hop?".  Aggregate counters
(``Port.drops_by_reason``, ``ExperimentResult.drop_reasons``) answer *how
many*; the flight recorder answers *which packet*, *where in the
pipeline*, and *why this one* — the NetSight-style postcard log, kept
inside the simulator instead of reconstructed from the wire.

Design:

* **Hooks, not wrappers.**  Every dataplane object that can touch a packet
  (``Host``, ``Port``, ``Link``, ``TPPSwitch``) carries a ``recorder``
  attribute that is ``None`` by default.  Each lifecycle site — host send,
  port enqueue/dequeue, link deliver, every ``drops_by_reason`` drop site,
  switch receive, TPP execution — guards its record call with one
  ``is not None`` check.  With no recorder attached the dataplane executes
  exactly the pre-recorder code (the recorder-off byte-identity invariant,
  differential-tested on all six apps).
* **Bounded rings.**  Records land in per-node ring buffers
  (``deque(maxlen=capacity)``); overwrites are counted, never silent.
* **Compact tuple records.**  One record is a flat 9-tuple
  ``(seq, time, node, kind, packet_id, flow_id, site, a, b)`` — no objects
  on the hot path.  ``seq`` is a recorder-wide monotone sequence so records
  with equal timestamps keep their true order.
* **Policies.**  :class:`RecorderSpec` declares sampling (1-in-N flows by
  stable flow-id hash: a sampled flow is recorded at *every* hop, an
  unsampled one at none, so journeys are never partial), an app filter
  (record only packets carrying a TPP of the named applications), a link
  filter (tap only ports attached to the named links), and the ring
  capacity.  **Drop records bypass flow sampling** — forensics stay
  complete even at sample_every=1000 — but respect the app/link filters.
* **Recording is pure observation.**  No random draws, no scheduled
  events, no packet mutation: a run with the recorder on is byte-identical
  (event totals, canonical ResultSummary JSON) to the same run with it
  off.

Record kinds and their ``site`` / ``a`` / ``b`` slots::

    host-send    host name        size            dst
    enqueue      port name        occupancy_pkts  occupancy_bytes (after)
    dequeue      port name        occupancy_pkts  occupancy_bytes (after)
    deliver      rx port name     size            link name
    switch-recv  switch name      input port idx  size
    tpp-exec     switch name      status label    executed instruction count
    drop         port/switch name drop category   human-readable reason
    fault        link name        action          detail (loss rate / None)

Query API: :meth:`JourneyLog.journey` (one packet's ordered hop records),
:meth:`JourneyLog.trace_flow` (every sampled packet of a flow),
:meth:`JourneyLog.explain_drop` (ordered hop records + the terminal drop
site/category/reason, with the nearest preceding fault record on the same
site as context).  A :class:`JourneyLog` is a picklable snapshot — it
crosses process boundaries on :class:`~repro.session.ResultSummary`, so
sweep workers ship journeys home.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.tcpu import ExecutionResult
    from repro.net.link import Link
    from repro.net.node import Host, Node
    from repro.net.packet import Packet
    from repro.net.port import Port
    from repro.net.sim import Simulator
    from repro.net.topology import Network
    from repro.switches.switch import TPPSwitch

__all__ = [
    "DropExplanation", "FlightRecorder", "JourneyLog", "PacketJourney",
    "RecorderSpec",
    "REC_SEQ", "REC_TIME", "REC_NODE", "REC_KIND", "REC_PACKET", "REC_FLOW",
    "REC_SITE", "REC_A", "REC_B",
    "HOST_SEND", "ENQUEUE", "DEQUEUE", "DELIVER", "SWITCH_RECV", "TPP_EXEC",
    "DROP", "FAULT",
]

# Tuple slots of one record.
REC_SEQ, REC_TIME, REC_NODE, REC_KIND = 0, 1, 2, 3
REC_PACKET, REC_FLOW, REC_SITE, REC_A, REC_B = 4, 5, 6, 7, 8

# Record kinds.
HOST_SEND = "host-send"
ENQUEUE = "enqueue"
DEQUEUE = "dequeue"
DELIVER = "deliver"
SWITCH_RECV = "switch-recv"
TPP_EXEC = "tpp-exec"
DROP = "drop"
FAULT = "fault"

#: Kinds that end a packet's journey.
_TERMINAL_KINDS = (DELIVER, DROP)


def _flow_hash(flow_id: int) -> int:
    """A stable (cross-process, cross-run) 32-bit hash of a flow id.

    Python's builtin ``hash`` is salted for strings and identity for small
    ints; neither gives a uniform, process-stable 1-in-N split, so the
    sampler hashes the flow id's bytes instead.
    """
    raw = flow_id.to_bytes(16, "little", signed=True)
    return int.from_bytes(hashlib.blake2b(raw, digest_size=4).digest(),
                          "little")


@dataclass(frozen=True)
class RecorderSpec:
    """The flight-recorder policy a scenario declares (picklable).

    Args:
        capacity: per-node ring-buffer size in records; the oldest record
            is overwritten (and counted) when a node's ring is full.
        sample_every: record 1 in N flows, chosen by a stable hash of the
            flow id — all packets of a sampled flow are recorded at every
            hop, packets of unsampled flows only at drop sites.  ``1``
            records every flow.
        apps: record only packets carrying a TPP that belongs to one of
            these application names (resolved to app ids at attach time).
            ``None`` records everything, TPP-less packets included.
        links: tap only ports attached to these link names (port-level
            events — enqueue/dequeue/deliver/drops — elsewhere are not
            recorded; node-level events are unaffected).  ``None`` taps
            every port.
    """

    capacity: int = 4096
    sample_every: int = 1
    apps: Optional[tuple[str, ...]] = None
    links: Optional[tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"recorder capacity must be >= 1, "
                             f"got {self.capacity}")
        if self.sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, "
                             f"got {self.sample_every}")
        for name, value in (("apps", self.apps), ("links", self.links)):
            if value is not None:
                if isinstance(value, str):
                    raise ValueError(f"{name} must be a sequence of names, "
                                     f"not a bare string")
                object.__setattr__(self, name, tuple(value))
                if not getattr(self, name):
                    raise ValueError(f"{name} filter cannot be empty; "
                                     f"use None to record everything")


@dataclass
class PacketJourney:
    """One packet's ordered lifecycle records (the answer to "what
    happened to packet N?")."""

    packet_id: int
    flow_id: int
    records: list[tuple]

    @property
    def hops(self) -> list[str]:
        """Node names in first-visit order."""
        seen: list[str] = []
        for record in self.records:
            if not seen or seen[-1] != record[REC_NODE]:
                seen.append(record[REC_NODE])
        return seen

    @property
    def terminal(self) -> Optional[tuple]:
        """The journey's last terminal record (deliver or drop), if any."""
        for record in reversed(self.records):
            if record[REC_KIND] in _TERMINAL_KINDS:
                return record
        return None

    @property
    def dropped(self) -> bool:
        terminal = self.terminal
        return terminal is not None and terminal[REC_KIND] == DROP

    @property
    def delivered(self) -> bool:
        terminal = self.terminal
        return terminal is not None and terminal[REC_KIND] == DELIVER

    @property
    def drop_reason(self) -> Optional[str]:
        terminal = self.terminal
        if terminal is not None and terminal[REC_KIND] == DROP:
            return terminal[REC_B]
        return None

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fate = "dropped" if self.dropped else \
            ("delivered" if self.delivered else "in-flight")
        return (f"<PacketJourney #{self.packet_id} flow={self.flow_id} "
                f"{len(self.records)} records via {self.hops} {fate}>")


@dataclass
class DropExplanation:
    """Why one packet died: its hop records plus the terminal drop."""

    packet_id: int
    flow_id: int
    time: float
    site: str                      # port/switch name where the drop landed
    category: str                  # canonical category (repro.net.port.DROP_*)
    reason: str                    # the human-readable drop_reason string
    records: list[tuple]           # the packet's ordered records, drop last
    fault_context: Optional[tuple] = None   # nearest preceding FAULT record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DropExplanation #{self.packet_id} {self.category!r} at "
                f"{self.site} t={self.time:.6f} after "
                f"{len(self.records) - 1} hops>")


class JourneyLog:
    """A picklable, queryable snapshot of recorded flight records.

    Built by :meth:`FlightRecorder.log` (and shipped on
    :class:`~repro.session.ResultSummary.flightrec`); holds plain tuples
    plus the recorder's counters, so it pickles across process boundaries
    and the query API works identically in a sweep parent.
    """

    def __init__(self, records: list[tuple], stats: dict) -> None:
        self.records = records                     # sorted by seq
        self.stats = stats
        self._by_packet: Optional[dict[int, list[tuple]]] = None

    # ------------------------------------------------------------- indexing
    def _packet_index(self) -> dict[int, list[tuple]]:
        if self._by_packet is None:
            index: dict[int, list[tuple]] = {}
            for record in self.records:
                index.setdefault(record[REC_PACKET], []).append(record)
            self._by_packet = index
        return self._by_packet

    def __getstate__(self) -> dict:
        return {"records": self.records, "stats": self.stats}

    def __setstate__(self, state: dict) -> None:
        self.records = state["records"]
        self.stats = state["stats"]
        self._by_packet = None

    def __len__(self) -> int:
        return len(self.records)

    # -------------------------------------------------------------- queries
    def journey(self, packet_id: int) -> Optional[PacketJourney]:
        """The ordered lifecycle of one packet, or None if never recorded."""
        records = self._packet_index().get(packet_id)
        if not records:
            return None
        return PacketJourney(packet_id=packet_id,
                             flow_id=records[0][REC_FLOW],
                             records=list(records))

    def trace_flow(self, flow_id: int) -> list[PacketJourney]:
        """Every recorded packet of one flow, in first-record order."""
        journeys: dict[int, list[tuple]] = {}
        for record in self.records:
            if record[REC_FLOW] == flow_id and record[REC_KIND] != FAULT:
                journeys.setdefault(record[REC_PACKET], []).append(record)
        return [PacketJourney(packet_id=pid, flow_id=flow_id, records=recs)
                for pid, recs in sorted(journeys.items(),
                                        key=lambda kv: kv[1][0][REC_SEQ])]

    def drops(self) -> list[tuple]:
        """Every recorded drop record, in seq order."""
        return [record for record in self.records
                if record[REC_KIND] == DROP]

    def explain_drop(self, packet_id: Optional[int] = None, *,
                     category: Optional[str] = None,
                     site: Optional[str] = None):
        """Drop forensics: ordered hop records plus the terminal reason.

        With ``packet_id``, returns one :class:`DropExplanation` (or
        ``None`` when that packet was not recorded as dropped).  Without,
        returns the list of explanations for every recorded drop,
        optionally filtered by canonical ``category`` (e.g.
        ``"queue-overflow"``) and/or ``site`` substring.
        """
        if packet_id is not None:
            journey = self.journey(packet_id)
            if journey is None or not journey.dropped:
                return None
            return self._explain(journey)
        explanations = []
        for record in self.drops():
            if category is not None and record[REC_A] != category:
                continue
            if site is not None and site not in record[REC_SITE]:
                continue
            journey = self.journey(record[REC_PACKET])
            if journey is not None and journey.dropped:
                explanations.append(self._explain(journey))
        return explanations

    def _explain(self, journey: PacketJourney) -> DropExplanation:
        terminal = journey.terminal
        fault = None
        for record in self.records:            # seq order: keep the latest
            if record[REC_KIND] != FAULT or record[REC_SEQ] > terminal[REC_SEQ]:
                continue
            # A fault on link "a<->b" is context for drops at either end.
            if terminal[REC_SITE] in record[REC_SITE] \
                    or record[REC_SITE] in terminal[REC_B]:
                fault = record
        return DropExplanation(
            packet_id=journey.packet_id, flow_id=journey.flow_id,
            time=terminal[REC_TIME], site=terminal[REC_SITE],
            category=terminal[REC_A], reason=terminal[REC_B],
            records=list(journey.records), fault_context=fault)

    def packets(self) -> list[int]:
        """Every recorded packet id, in first-record order."""
        seen: dict[int, None] = {}
        for record in self.records:
            if record[REC_KIND] != FAULT:
                seen.setdefault(record[REC_PACKET])
        return list(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<JourneyLog {len(self.records)} records, "
                f"{len(self._packet_index())} packets>")


class FlightRecorder:
    """The live recorder: per-node rings fed by the dataplane hook sites.

    Create one from a :class:`RecorderSpec`, then :meth:`attach` it to a
    built :class:`~repro.net.topology.Network` (or :meth:`attach_nodes`
    for hand-built micro-topologies).  Detach by never attaching — the
    dataplane's ``recorder`` attributes default to ``None`` and the hook
    sites cost a single attribute check when unset.
    """

    def __init__(self, spec: Optional[RecorderSpec] = None) -> None:
        self.spec = spec if spec is not None else RecorderSpec()
        self._sim: Optional["Simulator"] = None
        self._rings: dict[str, deque] = {}
        self._capacity = self.spec.capacity
        self._seq = 0
        # Sampling state: app-name filter resolved to app ids at attach,
        # flow pass/fail memoised per flow id (one blake2b per flow, ever).
        self._app_ids: Optional[frozenset[int]] = None
        self._sample_every = self.spec.sample_every
        self._flow_pass_memo: dict[int, bool] = {}
        # Accounting.
        self.records_written = 0
        self.records_overwritten = 0
        self.drops_recorded = 0
        self.drop_counts: dict[str, int] = {}
        self.nodes_attached = 0
        self.ports_tapped = 0

    # ------------------------------------------------------------ attachment
    def attach(self, network: "Network",
               app_ids: Optional[Iterable[int]] = None) -> "FlightRecorder":
        """Install this recorder on every node/port/link of a network.

        ``app_ids`` are the resolved application ids for the spec's
        ``apps`` filter (the session layer resolves names to ids after TPP
        deployment); with an ``apps`` filter and no ids the filter matches
        nothing, which is the right failure mode for a typo'd app name.
        """
        self.attach_nodes(network.sim, network.nodes.values())
        if app_ids is not None:
            self._app_ids = frozenset(app_ids)
        return self

    def attach_nodes(self, sim: "Simulator",
                     nodes: Iterable["Node"]) -> "FlightRecorder":
        """Lower-level attach for hand-built topologies (tests, tools)."""
        self._sim = sim
        tap_links = set(self.spec.links) if self.spec.links is not None \
            else None
        for node in nodes:
            node.recorder = self
            self.nodes_attached += 1
            for port in node.ports:
                link = port.link
                if tap_links is not None:
                    if link is None or link.name not in tap_links:
                        continue
                port.recorder = self
                self.ports_tapped += 1
                if link is not None:
                    link.recorder = self       # fault context on tapped links
        if self.spec.apps is not None and self._app_ids is None:
            self._app_ids = frozenset()
        return self

    # --------------------------------------------------------------- filters
    def _wants(self, packet: "Packet") -> bool:
        # One flat function, no helper calls: this runs for every packet at
        # every hook site, and on the dominant unsampled-flow path its cost
        # IS the recorder's overhead (see bench_flightrec_overhead.py).
        if self._sample_every > 1:
            flow_id = packet.flow_id
            memo = self._flow_pass_memo
            passed = memo.get(flow_id)
            if passed is None:
                passed = memo[flow_id] = \
                    _flow_hash(flow_id) % self._sample_every == 0
            if not passed:
                return False
        if self._app_ids is not None:
            tpp = packet.tpp
            return tpp is not None and tpp.app_id in self._app_ids
        return True

    def _app_pass(self, packet: "Packet") -> bool:
        """The app filter alone — the drop hook's sampling bypass."""
        if self._app_ids is None:
            return True
        tpp = packet.tpp
        return tpp is not None and tpp.app_id in self._app_ids

    # --------------------------------------------------------------- writing
    def _append(self, node: str, kind: str, packet_id: int, flow_id: int,
                site: str, a, b) -> None:
        ring = self._rings.get(node)
        if ring is None:
            ring = self._rings[node] = deque(maxlen=self._capacity)
        elif len(ring) == self._capacity:
            self.records_overwritten += 1
        self._seq += 1
        ring.append((self._seq, self._sim.now, node, kind, packet_id,
                     flow_id, site, a, b))
        self.records_written += 1

    # ------------------------------------------------------------ hook sites
    # Each is called from exactly one dataplane site, behind the caller's
    # ``recorder is not None`` guard.  Keep them allocation-light.
    def on_host_send(self, host: "Host", packet: "Packet") -> None:
        if self._wants(packet):
            self._append(host.name, HOST_SEND, packet.packet_id,
                         packet.flow_id, host.name, packet.size, packet.dst)

    def on_enqueue(self, port: "Port", packet: "Packet") -> None:
        if self._wants(packet):
            queue = port.queue
            self._append(port.node.name, ENQUEUE, packet.packet_id,
                         packet.flow_id, port.name,
                         queue.occupancy_packets, queue.occupancy_bytes)

    def on_dequeue(self, port: "Port", packet: "Packet") -> None:
        if self._wants(packet):
            queue = port.queue
            self._append(port.node.name, DEQUEUE, packet.packet_id,
                         packet.flow_id, port.name,
                         queue.occupancy_packets, queue.occupancy_bytes)

    def on_deliver(self, rx_port: "Port", packet: "Packet") -> None:
        if self._wants(packet):
            link = rx_port.link
            self._append(rx_port.node.name, DELIVER, packet.packet_id,
                         packet.flow_id, rx_port.name, packet.size,
                         link.name if link is not None else "")

    def on_switch_recv(self, switch: "TPPSwitch", packet: "Packet",
                       in_index: int) -> None:
        if self._wants(packet):
            self._append(switch.name, SWITCH_RECV, packet.packet_id,
                         packet.flow_id, switch.name, in_index, packet.size)

    def on_tpp_exec(self, switch: "TPPSwitch", packet: "Packet",
                    execution: "ExecutionResult") -> None:
        if self._wants(packet):
            self._append(switch.name, TPP_EXEC, packet.packet_id,
                         packet.flow_id, switch.name, execution.status_label,
                         execution.executed_count)

    def on_drop(self, site: str, node: str, packet: "Packet",
                category: str, reason: str) -> None:
        """One packet died at ``site`` (a port or switch name).

        Drop records bypass flow sampling — the forensic log stays
        complete under aggressive sampling — but honour the app filter.
        """
        if not self._app_pass(packet):
            return
        self._append(node, DROP, packet.packet_id, packet.flow_id,
                     site, category, reason)
        self.drops_recorded += 1
        self.drop_counts[category] = self.drop_counts.get(category, 0) + 1

    def on_fault(self, link: "Link", action: str, detail=None) -> None:
        """A link state change (set_down / set_up / set_loss / clear_loss).

        Recorded under the link's ``port_a`` node so fault context rides
        the same rings; ``explain_drop`` surfaces the nearest preceding
        fault on the drop's link as ``fault_context``.
        """
        if self._sim is None:       # links attach before sim in odd setups
            return
        self._append(link.port_a.node.name, FAULT, 0, 0, link.name,
                     action, detail)

    # ------------------------------------------------------------- snapshots
    def stats(self) -> dict:
        """Picklable accounting counters (the result's side channel)."""
        return {
            "records_written": self.records_written,
            "records_overwritten": self.records_overwritten,
            "records_retained": sum(len(ring)
                                    for ring in self._rings.values()),
            "drops_recorded": self.drops_recorded,
            "drop_counts": dict(sorted(self.drop_counts.items())),
            "nodes_attached": self.nodes_attached,
            "ports_tapped": self.ports_tapped,
            "capacity": self._capacity,
            "sample_every": self._sample_every,
            "flows_seen": len(self._flow_pass_memo) if self._sample_every > 1
            else None,
            "flows_sampled": sum(self._flow_pass_memo.values())
            if self._sample_every > 1 else None,
        }

    def log(self) -> JourneyLog:
        """A picklable snapshot of everything currently retained."""
        merged: list[tuple] = []
        for ring in self._rings.values():
            merged.extend(ring)
        merged.sort()                              # tuples sort by seq first
        return JourneyLog(merged, self.stats())

    # Convenience: query the live rings without an explicit snapshot.
    def journey(self, packet_id: int) -> Optional[PacketJourney]:
        return self.log().journey(packet_id)

    def trace_flow(self, flow_id: int) -> list[PacketJourney]:
        return self.log().trace_flow(flow_id)

    def explain_drop(self, packet_id: Optional[int] = None, **filters):
        return self.log().explain_drop(packet_id, **filters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlightRecorder {self.records_written} written "
                f"({self.records_overwritten} overwritten) over "
                f"{len(self._rings)} nodes>")
