"""repro.obs — the runtime observability plane.

Spans, a typed metrics registry, Perfetto trace export, and provenance
stamping for recorded artifacts.  A *sidecar* layer: nothing below the
session layer imports it — engine components keep plain counters and the
session layer registers gauges over them — and it must never perturb
results (see :mod:`repro.obs.telemetry` for the two invariants).

Quick start::

    from repro import obs

    telemetry = obs.Telemetry(slices=8)
    with obs.use(telemetry):
        result = scenario.run(duration_s=1.0)

    result.telemetry                      # canonical metrics snapshot
    telemetry.self_times()                # span name -> self wall-clock
    obs.write_trace(telemetry, "run.json")  # load in ui.perfetto.dev
"""

from .flightrec import (DropExplanation, FlightRecorder, JourneyLog,
                        PacketJourney, RecorderSpec)
from .perfetto import (network_trace_events, trace_events,
                       write_network_trace, write_trace)
from .provenance import config_fingerprint, provenance, stamp
from .telemetry import (Counter, Gauge, Histogram, MetricsRegistry,
                        NULL_TELEMETRY, Span, Telemetry, get_telemetry,
                        set_telemetry, use)

__all__ = [
    "Counter", "DropExplanation", "FlightRecorder", "Gauge", "Histogram",
    "JourneyLog", "MetricsRegistry", "NULL_TELEMETRY", "PacketJourney",
    "RecorderSpec", "Span", "Telemetry", "config_fingerprint",
    "get_telemetry", "network_trace_events", "provenance", "set_telemetry",
    "stamp", "trace_events", "use", "write_network_trace", "write_trace",
]
