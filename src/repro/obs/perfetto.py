"""Chrome/Perfetto trace-event export for recorded telemetry spans.

Renders a :class:`~repro.obs.telemetry.Telemetry`'s finished spans as the
JSON object format both ``chrome://tracing`` and https://ui.perfetto.dev
load: ``{"traceEvents": [...]}`` with one complete (``"ph": "X"``) event
per span, timestamps in microseconds relative to the earliest span start.

Tracks: stacked spans (the ``with telemetry.span(...)`` form) nest on the
main track (tid 0) exactly as they nested at runtime.  Overlapping
:meth:`~repro.obs.telemetry.Telemetry.interval` spans carry a ``track``
label and each distinct label gets its own tid row, so the sweep pool's
concurrent tasks render side by side instead of as bogus nesting.

The second exporter, :func:`network_trace_events`, renders a flight
recorder's :class:`~repro.obs.flightrec.JourneyLog` — *simulated* time, not
wall-clock: one thread track per node carrying packet lifelines as "X"
slices (first to last record of each packet at that node), plus counter
("C") tracks for queue occupancy at every recorded enqueue/dequeue and
time-binned link utilization in Mbit/s.  A whole experiment opens in the
Perfetto UI: queue buildup, the microburst, and the drop that ended a
journey line up on one timeline.

The shapes emitted here are deliberately minimal — exactly what
``tools/check_trace_schema.py`` validates in CI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from .flightrec import JourneyLog
    from .telemetry import Telemetry

__all__ = ["network_trace_events", "trace_events", "write_network_trace",
           "write_trace"]

#: The tid of the main (stacked-span) track.
MAIN_TRACK_TID = 0


def _jsonable_args(args: dict) -> dict:
    """Span args as JSON-safe values (reprs for anything exotic)."""
    safe: dict = {}
    for key in sorted(args, key=str):
        value = args[key]
        if value is None or isinstance(value, (bool, int, float, str)):
            safe[str(key)] = value
        else:
            safe[str(key)] = repr(value)
    return safe


def trace_events(telemetry: "Telemetry", *, pid: int = 1,
                 process_name: str = "repro") -> list[dict]:
    """The telemetry's finished spans as a trace-event list."""
    finished = [span for span in telemetry.spans if span.end is not None]
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": MAIN_TRACK_TID,
        "args": {"name": process_name},
    }]
    if not finished:
        return events
    origin = min(span.start for span in finished)
    tids: dict[str, int] = {}
    track_names: list[tuple[int, str]] = []
    for span in finished:
        if span.track is None:
            tid = MAIN_TRACK_TID
        else:
            tid = tids.get(span.track)
            if tid is None:
                tid = len(tids) + 1
                tids[span.track] = tid
                track_names.append((tid, span.track))
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": (span.start - origin) * 1e6,
            "dur": span.duration * 1e6,
            "pid": pid,
            "tid": tid,
            "args": _jsonable_args(span.args),
        })
    for tid, track in track_names:
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": track}})
    return events


def write_trace(telemetry: "Telemetry", path: Union[str, Path], *,
                pid: int = 1, process_name: str = "repro") -> dict:
    """Write the trace-event JSON object to ``path``; returns the object."""
    trace = {
        "traceEvents": trace_events(telemetry, pid=pid,
                                    process_name=process_name),
        "displayTimeUnit": "ms",
    }
    Path(path).write_text(json.dumps(trace, indent=2) + "\n", encoding="utf-8")
    return trace


# --------------------------------------------------------------------------
# Network timelines: flight-recorder journeys as a Perfetto trace.
# --------------------------------------------------------------------------

def network_trace_events(log: "JourneyLog", *, pid: int = 2,
                         process_name: str = "repro.network",
                         utilization_bin_s: Optional[float] = None
                         ) -> list[dict]:
    """A :class:`~repro.obs.flightrec.JourneyLog` as trace events.

    Timestamps are *simulation* microseconds relative to the log's earliest
    record.  Three families of events:

    * one thread track per node (sorted for determinism), carrying each
      recorded packet's lifeline at that node as an "X" slice from its
      first to its last record there, with the journey's records count and
      terminal kind in ``args``;
    * a ``queue <port>`` counter ("C") series sampled at every recorded
      enqueue/dequeue, with post-operation packet and byte occupancy;
    * a ``util <link>`` counter series: delivered bytes per time bin as
      Mbit/s (``utilization_bin_s``; default splits the recorded span into
      50 bins).
    """
    from .flightrec import (DEQUEUE, DELIVER, ENQUEUE, FAULT, REC_A, REC_B,
                            REC_KIND, REC_NODE, REC_PACKET, REC_SITE,
                            REC_TIME)
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": MAIN_TRACK_TID,
        "args": {"name": process_name},
    }]
    records = log.records
    if not records:
        return events
    origin = min(record[REC_TIME] for record in records)
    last = max(record[REC_TIME] for record in records)

    # --- per-node packet lifelines ("X" slices on per-node thread tracks)
    per_node: dict[str, dict[int, list[tuple]]] = {}
    for record in records:
        if record[REC_KIND] == FAULT:
            continue
        per_node.setdefault(record[REC_NODE], {}) \
            .setdefault(record[REC_PACKET], []).append(record)
    tids: dict[str, int] = {}
    for node in sorted(per_node):
        tid = tids[node] = len(tids) + 1
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": node}})
        for packet_id, recs in sorted(per_node[node].items()):
            start = recs[0][REC_TIME]
            events.append({
                "name": f"pkt {packet_id}",
                "ph": "X",
                "ts": (start - origin) * 1e6,
                "dur": (recs[-1][REC_TIME] - start) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {"records": len(recs),
                         "last": recs[-1][REC_KIND]},
            })

    # --- queue occupancy counters (one "C" sample per enqueue/dequeue)
    for record in records:
        if record[REC_KIND] in (ENQUEUE, DEQUEUE):
            events.append({
                "name": f"queue {record[REC_SITE]}",
                "ph": "C",
                "ts": (record[REC_TIME] - origin) * 1e6,
                "pid": pid,
                "tid": MAIN_TRACK_TID,
                "args": {"packets": record[REC_A], "bytes": record[REC_B]},
            })

    # --- link utilization counters (delivered bytes per bin, as Mbit/s)
    span = last - origin
    bin_s = utilization_bin_s if utilization_bin_s else \
        (span / 50.0 if span > 0 else 0.0)
    if bin_s > 0:
        bins: dict[str, dict[int, int]] = {}
        for record in records:
            if record[REC_KIND] == DELIVER and record[REC_B]:
                link_bins = bins.setdefault(record[REC_B], {})
                index = int((record[REC_TIME] - origin) / bin_s)
                link_bins[index] = link_bins.get(index, 0) + record[REC_A]
        for link in sorted(bins):
            for index in sorted(bins[link]):
                mbps = bins[link][index] * 8.0 / bin_s / 1e6
                events.append({
                    "name": f"util {link}",
                    "ph": "C",
                    "ts": index * bin_s * 1e6,
                    "pid": pid,
                    "tid": MAIN_TRACK_TID,
                    "args": {"mbps": round(mbps, 6)},
                })
    return events


def write_network_trace(log: "JourneyLog", path: Union[str, Path], *,
                        pid: int = 2, process_name: str = "repro.network",
                        utilization_bin_s: Optional[float] = None) -> dict:
    """Write a journey log's network timeline to ``path`` (trace JSON)."""
    trace = {
        "traceEvents": network_trace_events(
            log, pid=pid, process_name=process_name,
            utilization_bin_s=utilization_bin_s),
        "displayTimeUnit": "ms",
    }
    Path(path).write_text(json.dumps(trace, indent=2) + "\n", encoding="utf-8")
    return trace
