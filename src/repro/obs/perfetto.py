"""Chrome/Perfetto trace-event export for recorded telemetry spans.

Renders a :class:`~repro.obs.telemetry.Telemetry`'s finished spans as the
JSON object format both ``chrome://tracing`` and https://ui.perfetto.dev
load: ``{"traceEvents": [...]}`` with one complete (``"ph": "X"``) event
per span, timestamps in microseconds relative to the earliest span start.

Tracks: stacked spans (the ``with telemetry.span(...)`` form) nest on the
main track (tid 0) exactly as they nested at runtime.  Overlapping
:meth:`~repro.obs.telemetry.Telemetry.interval` spans carry a ``track``
label and each distinct label gets its own tid row, so the sweep pool's
concurrent tasks render side by side instead of as bogus nesting.

The shape emitted here is deliberately minimal — exactly what
``tools/check_trace_schema.py`` validates in CI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover
    from .telemetry import Telemetry

__all__ = ["trace_events", "write_trace"]

#: The tid of the main (stacked-span) track.
MAIN_TRACK_TID = 0


def _jsonable_args(args: dict) -> dict:
    """Span args as JSON-safe values (reprs for anything exotic)."""
    safe: dict = {}
    for key in sorted(args, key=str):
        value = args[key]
        if value is None or isinstance(value, (bool, int, float, str)):
            safe[str(key)] = value
        else:
            safe[str(key)] = repr(value)
    return safe


def trace_events(telemetry: "Telemetry", *, pid: int = 1,
                 process_name: str = "repro") -> list[dict]:
    """The telemetry's finished spans as a trace-event list."""
    finished = [span for span in telemetry.spans if span.end is not None]
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": MAIN_TRACK_TID,
        "args": {"name": process_name},
    }]
    if not finished:
        return events
    origin = min(span.start for span in finished)
    tids: dict[str, int] = {}
    track_names: list[tuple[int, str]] = []
    for span in finished:
        if span.track is None:
            tid = MAIN_TRACK_TID
        else:
            tid = tids.get(span.track)
            if tid is None:
                tid = len(tids) + 1
                tids[span.track] = tid
                track_names.append((tid, span.track))
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": (span.start - origin) * 1e6,
            "dur": span.duration * 1e6,
            "pid": pid,
            "tid": tid,
            "args": _jsonable_args(span.args),
        })
    for tid, track in track_names:
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": track}})
    return events


def write_trace(telemetry: "Telemetry", path: Union[str, Path], *,
                pid: int = 1, process_name: str = "repro") -> dict:
    """Write the trace-event JSON object to ``path``; returns the object."""
    trace = {
        "traceEvents": trace_events(telemetry, pid=pid,
                                    process_name=process_name),
        "displayTimeUnit": "ms",
    }
    Path(path).write_text(json.dumps(trace, indent=2) + "\n", encoding="utf-8")
    return trace
