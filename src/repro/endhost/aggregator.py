"""Deployment framework for piggy-backed TPP applications (§4.5).

A piggy-backed application is described by four things the programmer
specifies — a packet filter, a compiled TPP, a per-host aggregator, and a
cluster-wide collector.  The provisioning agent here performs the steps the
paper lists: allocate an application id, verify permissions by statically
examining the TPP, spawn the aggregator on every participating host, install
the ``add_tpp`` rule through each host's control-plane agent, and point the
aggregators at the collector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.compiler import CompiledTPP
from repro.core.packet_format import TPP
from repro.net.packet import Packet

from .control_plane import Application, TPPControlPlane
from .filters import PacketFilter


class Collector:
    """A cluster-wide service that receives summaries from per-host aggregators.

    The paper load-balances collectors behind a virtual IP; a single logical
    collector object suffices for the reproduction (the aggregation operators
    used by the applications are commutative, so sharding does not change
    results).
    """

    def __init__(self, name: str = "collector") -> None:
        self.name = name
        self.summaries: list[tuple[str, object]] = []

    def submit(self, host_name: str, summary: object) -> None:
        """Receive one summary from a host's aggregator."""
        self.summaries.append((host_name, summary))

    def __len__(self) -> int:
        return len(self.summaries)


class Aggregator:
    """Base class for per-host aggregators: receives completed TPPs.

    Subclasses override :meth:`on_tpp` to do application-specific processing
    and :meth:`summarize` to produce what gets pushed to the collector.
    """

    def __init__(self, host_name: str, collector: Optional[Collector] = None) -> None:
        self.host_name = host_name
        self.collector = collector
        self.tpps_received = 0
        # TPPs whose packet memory ran out in-flight (§3.3): the network-side
        # TCPU marks the skipped instructions SKIPPED_PACKET_FULL; here the
        # end host tells truncation ("packet ran out of room") apart from a
        # switch simply lacking the requested statistic.
        self.tpps_truncated = 0

    def on_tpp(self, tpp: TPP, packet: Packet) -> None:
        self.tpps_received += 1
        if tpp.out_of_room:
            self.tpps_truncated += 1

    def summarize(self) -> object:
        return {"host": self.host_name, "tpps": self.tpps_received,
                "tpps_truncated": self.tpps_truncated}

    def push_summary(self) -> None:
        if self.collector is not None:
            self.collector.submit(self.host_name, self.summarize())


AggregatorFactory = Callable[[str, Optional[Collector]], Aggregator]


@dataclass
class PiggybackApplication:
    """The §4.5 application descriptor."""

    name: str
    packet_filter: PacketFilter
    compiled_tpp: CompiledTPP
    aggregator_factory: AggregatorFactory
    collector: Optional[Collector] = None
    sample_frequency: int = 1
    priority: int = 0
    echo_to_source: bool = False


@dataclass
class DeployedApplication:
    """Handles returned by :func:`deploy`: one aggregator per participating host."""

    application: Application
    descriptor: PiggybackApplication
    aggregators: dict[str, Aggregator] = field(default_factory=dict)

    def push_all_summaries(self) -> None:
        """Have every host's aggregator push its summary to the collector."""
        for aggregator in self.aggregators.values():
            aggregator.push_summary()


def deploy(descriptor: PiggybackApplication, stacks: dict[str, "object"],
           control_plane: TPPControlPlane,
           sender_hosts: Optional[list[str]] = None,
           receiver_hosts: Optional[list[str]] = None) -> DeployedApplication:
    """Provision a piggy-backed application across a set of end-host stacks.

    Args:
        descriptor: what to deploy.
        stacks: host name -> EndHostStack for every participating host.
        control_plane: the central TPP-CP instance.
        sender_hosts: hosts whose outgoing packets get the TPP attached
            (defaults to all).
        receiver_hosts: hosts that run an aggregator (defaults to all).
    """
    app = control_plane.register_application(descriptor.name)
    deployed = DeployedApplication(application=app, descriptor=descriptor)

    senders = sender_hosts if sender_hosts is not None else list(stacks)
    receivers = receiver_hosts if receiver_hosts is not None else list(stacks)

    for host_name in receivers:
        stack = stacks[host_name]
        aggregator = descriptor.aggregator_factory(host_name, descriptor.collector)
        deployed.aggregators[host_name] = aggregator
        stack.shim.bind_application(app.app_id, on_tpp=aggregator.on_tpp,
                                    echo_to_source=descriptor.echo_to_source)

    for host_name in senders:
        stack = stacks[host_name]
        stack.agent.add_tpp(app.app_id, descriptor.packet_filter,
                            descriptor.compiled_tpp.clone_tpp(),
                            sample_frequency=descriptor.sample_frequency,
                            priority=descriptor.priority)

    return deployed
