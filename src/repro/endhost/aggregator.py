"""Deployment framework for piggy-backed TPP applications (§4.5).

A piggy-backed application is described by four things the programmer
specifies — a packet filter, a compiled TPP, a per-host aggregator, and a
cluster-wide collector.  The provisioning agent here performs the steps the
paper lists: allocate an application id, verify permissions by statically
examining the TPP, spawn the aggregator on every participating host, install
the ``add_tpp`` rule through each host's control-plane agent, and point the
aggregators at the collector.

Collectors come in two shapes sharing one surface: the in-memory
:class:`Collector` below, and the sharded
:class:`repro.collect.virtual.VirtualCollector` tier the session layer
installs with ``Scenario(...).collector(shards=N)``.  Aggregators emit
:mod:`repro.collect.summary` monoids (commutative, mergeable) rather than
opaque dicts, so either collector shape reconstructs the same global view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Protocol, runtime_checkable

from repro.collect.summary import CounterSummary
from repro.core.compiler import CompiledTPP
from repro.core.packet_format import TPP
from repro.net.packet import Packet

from .control_plane import Application, ControlPlaneAgent, TPPControlPlane
from .dataplane import DataplaneShim
from .filters import PacketFilter


@runtime_checkable
class EndHostStackLike(Protocol):
    """The structural face of an end-host stack that :func:`deploy` needs.

    :class:`repro.endhost.stack.EndHostStack` satisfies this; so does any
    test double exposing the same two members.  Keeping the protocol here
    (below the concrete stack in the import graph) lets the deploy path be
    fully typed without a circular dependency.
    """

    shim: DataplaneShim
    agent: ControlPlaneAgent


class Collector:
    """A cluster-wide service that receives summaries from per-host aggregators.

    The paper load-balances collectors behind a virtual IP; this single
    in-memory object is the unsharded reference implementation.  The
    sharded tier (:mod:`repro.collect`) keeps this exact surface — and is
    byte-identical to it in the single-shard inline configuration — so
    applications never see which one they are wired to.

    Every submission is stamped with the simulation time it was pushed
    (``submission_times[i]`` matches ``summaries[i]``), making collector
    contents time-attributable and deterministic.
    """

    def __init__(self, name: str = "collector") -> None:
        self.name = name
        self.summaries: list[tuple[str, object]] = []
        self.submission_times: list[float] = []

    def submit(self, host_name: str, summary: object, time: float = 0.0) -> None:
        """Receive one summary from a host's aggregator."""
        self.summaries.append((host_name, summary))
        self.submission_times.append(time)

    def __len__(self) -> int:
        return len(self.summaries)


class Aggregator:
    """Base class for per-host aggregators: receives completed TPPs.

    Subclasses override :meth:`on_tpp` to do application-specific processing
    and :meth:`summarize` to produce what gets pushed to the collector —
    a :class:`repro.collect.summary.MergeableSummary` (or bundle of them),
    so collector shards can merge summaries from any subset of hosts in any
    order and land on the same global view.
    """

    def __init__(self, host_name: str, collector: Optional[Collector] = None) -> None:
        self.host_name = host_name
        self.collector = collector
        self.tpps_received = 0
        # TPPs whose packet memory ran out in-flight (§3.3): the network-side
        # TCPU marks the skipped instructions SKIPPED_PACKET_FULL; here the
        # end host tells truncation ("packet ran out of room") apart from a
        # switch simply lacking the requested statistic.
        self.tpps_truncated = 0

    def on_tpp(self, tpp: TPP, packet: Packet) -> None:
        self.tpps_received += 1
        if tpp.out_of_room:
            self.tpps_truncated += 1

    def summarize(self) -> object:
        return CounterSummary({"tpps": self.tpps_received,
                               "tpps_truncated": self.tpps_truncated})

    def push_summary(self, now: float = 0.0) -> None:
        """Submit :meth:`summarize`'s snapshot, stamped with ``now``."""
        if self.collector is not None:
            self.collector.submit(self.host_name, self.summarize(), time=now)


AggregatorFactory = Callable[[str, Optional[Collector]], Aggregator]


@dataclass
class PiggybackApplication:
    """The §4.5 application descriptor."""

    name: str
    packet_filter: PacketFilter
    compiled_tpp: CompiledTPP
    aggregator_factory: AggregatorFactory
    collector: Optional[Collector] = None
    sample_frequency: int = 1
    priority: int = 0
    echo_to_source: bool = False


@dataclass
class DeployedApplication:
    """Handles returned by :func:`deploy`: one aggregator per participating host."""

    application: Application
    descriptor: PiggybackApplication
    aggregators: dict[str, Aggregator] = field(default_factory=dict)
    #: How many push_all_summaries rounds have run (the session layer uses
    #: this to decide whether a finishing experiment still owes a push).
    push_rounds: int = 0

    def push_all_summaries(self, now: float = 0.0) -> None:
        """Push every host's summary to the collector, stamped with ``now``.

        Hosts push in sorted name order — not dict insertion order — so
        collector contents are deterministic regardless of how the
        deployment enumerated its receivers.
        """
        for host_name in sorted(self.aggregators):
            self.aggregators[host_name].push_summary(now)
        self.push_rounds += 1


def deploy(descriptor: PiggybackApplication,
           stacks: Mapping[str, EndHostStackLike],
           control_plane: TPPControlPlane,
           sender_hosts: Optional[list[str]] = None,
           receiver_hosts: Optional[list[str]] = None) -> DeployedApplication:
    """Provision a piggy-backed application across a set of end-host stacks.

    Args:
        descriptor: what to deploy.
        stacks: host name -> end-host stack (anything satisfying
            :class:`EndHostStackLike`) for every participating host.
        control_plane: the central TPP-CP instance.
        sender_hosts: hosts whose outgoing packets get the TPP attached
            (defaults to all).
        receiver_hosts: hosts that run an aggregator (defaults to all).
    """
    app = control_plane.register_application(descriptor.name)
    deployed = DeployedApplication(application=app, descriptor=descriptor)

    senders = sender_hosts if sender_hosts is not None else list(stacks)
    receivers = receiver_hosts if receiver_hosts is not None else list(stacks)

    for host_name in receivers:
        stack = stacks[host_name]
        aggregator = descriptor.aggregator_factory(host_name, descriptor.collector)
        deployed.aggregators[host_name] = aggregator
        stack.shim.bind_application(app.app_id, on_tpp=aggregator.on_tpp,
                                    echo_to_source=descriptor.echo_to_source)

    for host_name in senders:
        stack = stacks[host_name]
        stack.agent.add_tpp(app.app_id, descriptor.packet_filter,
                            descriptor.compiled_tpp.clone_tpp(),
                            sample_frequency=descriptor.sample_frequency,
                            priority=descriptor.priority)

    return deployed
