"""The TPP Executor library (§4.4).

The executor abstracts the common ways applications run TPPs:

* **reliable execution** — standalone probes are retried when no echo comes
  back within a timeout (TPPs are ordinary packets and can be dropped);
* **targeted execution** — a ``CEXEC`` on ``[Switch:SwitchID]`` makes the TPP
  execute only on one chosen switch;
* **reflective execution** — a probe marked for reflection is turned around
  by the target switch itself, halving the measurement latency;
* **scatter-gather** — run a TPP on a set of switches and collect all results;
* **large TPPs** — statistic lists that don't fit the five-instruction budget
  are split across multiple TPPs automatically.

All completion notification is callback-based because the library runs inside
the discrete-event simulator.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.core import addressing
from repro.core.compiler import compile_tpp
from repro.core.isa import Instruction, MAX_INSTRUCTIONS, Opcode
from repro.core.packet_format import AddressingMode, TPP, make_tpp
from repro.net.packet import Packet, tpp_probe_packet

CompletionCallback = Callable[[Optional[TPP]], None]

#: Mask used by targeted execution: match the full 16-bit switch id.
FULL_MASK = 0xFFFF


@dataclass
class PendingRequest:
    """Book-keeping for one in-flight probe."""

    request_id: int
    dst: str
    template: TPP
    on_complete: CompletionCallback
    retries_left: int
    timeout_s: float
    reflect_at: Optional[int] = None
    timeout_event: object = None
    attempts: int = 0


@dataclass
class ExecutorStats:
    """Counters exposed for tests and benchmarks."""

    probes_sent: int = 0
    retries: int = 0
    completions: int = 0
    failures: int = 0


class TPPExecutor:
    """Reliable/targeted/scatter-gather execution of TPPs from one host."""

    def __init__(self, stack) -> None:
        # ``stack`` is an EndHostStack; typed loosely to avoid a circular import.
        self.stack = stack
        self.sim = stack.host.sim
        self.stats = ExecutorStats()
        self._pending: dict[int, PendingRequest] = {}
        self._request_ids = itertools.count(1)
        stack.shim.bind_application(stack.executor_app_id, on_tpp=self._on_tpp_result)

    # ------------------------------------------------------------- reliable
    def execute(self, tpp: TPP, dst: str, on_complete: CompletionCallback,
                retries: int = 3, timeout_s: float = 50e-3,
                reflect_at: Optional[int] = None) -> int:
        """Send ``tpp`` as a standalone probe to ``dst`` and await the echo.

        ``on_complete`` receives the executed TPP, or ``None`` when every
        retry timed out.  ``reflect_at`` asks the named switch (by switch id)
        to turn the probe around instead of the destination host (§4.4's
        reflective pattern).
        """
        request = self._register(tpp, dst, on_complete, retries, timeout_s,
                                 reflect_at=reflect_at)
        self._send_probe(request)
        return request.request_id

    def _register(self, tpp: TPP, dst: str, on_complete: CompletionCallback,
                  retries: int, timeout_s: float,
                  reflect_at: Optional[int] = None) -> PendingRequest:
        request = PendingRequest(request_id=next(self._request_ids), dst=dst,
                                 template=tpp, on_complete=on_complete,
                                 retries_left=retries, timeout_s=timeout_s,
                                 reflect_at=reflect_at)
        self._pending[request.request_id] = request
        return request

    def _build_probe(self, request: PendingRequest) -> Packet:
        probe_tpp = request.template.clone()
        probe_tpp.app_id = self.stack.executor_app_id
        probe = tpp_probe_packet(self.stack.host.name, request.dst, probe_tpp,
                                 created_at=self.sim.now)
        probe.metadata["request_id"] = request.request_id
        if request.reflect_at is not None:
            probe.metadata["tpp_reflect_switch"] = request.reflect_at
        request.attempts += 1
        self.stats.probes_sent += 1
        return probe

    def _send_probe(self, request: PendingRequest) -> None:
        probe = self._build_probe(request)
        request.timeout_event = self.sim.schedule(request.timeout_s, self._on_timeout,
                                                  request.request_id)
        self.stack.host.send(probe)

    def _send_probes(self, requests: Sequence[PendingRequest]) -> None:
        """Dispatch several probes as one burst (batched injection path).

        The retry timers land on the heap via ``schedule_many`` and the
        probes leave through the host's burst transmit, so fanning a
        scatter-gather across dozens of switches costs one heap rebuild and
        one uplink pass instead of per-probe churn.
        """
        if not requests:
            return
        probes = [self._build_probe(request) for request in requests]
        timeouts = self.sim.schedule_many(
            [(request.timeout_s, self._on_timeout, (request.request_id,))
             for request in requests])
        for request, event in zip(requests, timeouts):
            request.timeout_event = event
        self.stack.host.send_many(probes)

    def _on_timeout(self, request_id: int) -> None:
        request = self._pending.get(request_id)
        if request is None:
            return
        if request.retries_left > 0:
            request.retries_left -= 1
            self.stats.retries += 1
            self._send_probe(request)
            return
        del self._pending[request_id]
        self.stats.failures += 1
        request.on_complete(None)

    def _on_tpp_result(self, tpp: TPP, packet: Packet) -> None:
        request_id = None
        if isinstance(packet.payload, dict):
            request_id = packet.payload.get("request_id")
        if request_id is None:
            request_id = packet.metadata.get("request_id")
        request = self._pending.pop(request_id, None) if request_id is not None else None
        if request is None:
            return
        if request.timeout_event is not None:
            request.timeout_event.cancel()
        self.stats.completions += 1
        request.on_complete(tpp)

    # -------------------------------------------------------------- targeted
    @staticmethod
    def build_targeted_tpp(statistics: Sequence[str], switch_id: int,
                           num_hops: int = 10, app_id: int = 0,
                           word_bytes: int = 2) -> TPP:
        """A hop-addressed TPP that only executes on the switch with ``switch_id``.

        The program is ``CEXEC [Switch:SwitchID], [Packet:Hop[0]]`` (mask at
        word 0, value at word 1 of each hop's slice) followed by LOADs of the
        requested statistics into words 2, 3, ….
        """
        if len(statistics) + 1 > MAX_INSTRUCTIONS:
            raise ValueError(
                f"targeted TPPs fit at most {MAX_INSTRUCTIONS - 1} statistics; "
                "use scatter_gather/split for more")
        instructions = [Instruction(Opcode.CEXEC,
                                    address=addressing.resolve("[Switch:SwitchID]"),
                                    packet_offset=0)]
        for index, statistic in enumerate(statistics):
            instructions.append(Instruction(Opcode.LOAD,
                                            address=addressing.resolve(statistic),
                                            packet_offset=2 + index))
        values_per_hop = 2 + len(statistics)
        tpp = make_tpp(instructions, num_hops=num_hops, mode=AddressingMode.HOP,
                       word_bytes=word_bytes, app_id=app_id,
                       values_per_hop=values_per_hop)
        # Every hop's slice carries the CEXEC operands (mask, expected value).
        for hop in range(num_hops):
            tpp.write_hop_word(0, FULL_MASK, hop=hop)
            tpp.write_hop_word(1, switch_id, hop=hop)
        return tpp

    def execute_targeted(self, statistics: Sequence[str], switch_id: int, dst: str,
                         on_complete: CompletionCallback, retries: int = 3,
                         timeout_s: float = 50e-3, reflect: bool = False) -> int:
        """Run a statistics-collection TPP on exactly one switch."""
        tpp = self.build_targeted_tpp(statistics, switch_id,
                                      app_id=self.stack.executor_app_id)
        return self.execute(tpp, dst, on_complete, retries=retries, timeout_s=timeout_s,
                            reflect_at=switch_id if reflect else None)

    # --------------------------------------------------------- scatter-gather
    def scatter_gather(self, statistics: Sequence[str], targets: dict[int, str],
                       on_complete: Callable[[dict[int, Optional[TPP]]], None],
                       retries: int = 3, timeout_s: float = 50e-3) -> None:
        """Execute the same statistics TPP on many switches; gather all results.

        ``targets`` maps switch id -> a destination host whose path traverses
        that switch.  ``on_complete`` receives {switch id: executed TPP or
        None (failed after retries)} once every target has reported.
        """
        results: dict[int, Optional[TPP]] = {}
        expected = len(targets)
        if expected == 0:
            on_complete({})
            return

        def _collect(switch_id: int, tpp: Optional[TPP]) -> None:
            results[switch_id] = tpp
            if len(results) == expected:
                on_complete(results)

        requests = []
        for switch_id, dst in targets.items():
            tpp = self.build_targeted_tpp(statistics, switch_id,
                                          app_id=self.stack.executor_app_id)
            requests.append(self._register(
                tpp, dst, lambda tpp, sid=switch_id: _collect(sid, tpp),
                retries=retries, timeout_s=timeout_s))
        self._send_probes(requests)

    # --------------------------------------------------------------- large TPPs
    @staticmethod
    def split_statistics(statistics: Iterable[str],
                         max_instructions: int = MAX_INSTRUCTIONS) -> list[list[str]]:
        """Split a statistics list into chunks that fit one TPP each."""
        stats_list = list(statistics)
        if max_instructions < 1:
            raise ValueError("max_instructions must be at least 1")
        return [stats_list[i:i + max_instructions]
                for i in range(0, len(stats_list), max_instructions)]

    def execute_split(self, statistics: Sequence[str], dst: str,
                      on_complete: Callable[[list[Optional[TPP]]], None],
                      num_hops: int = 10, retries: int = 3,
                      timeout_s: float = 50e-3) -> None:
        """Collect an arbitrarily long statistics list using multiple TPPs."""
        chunks = self.split_statistics(statistics)
        results: list[Optional[TPP]] = [None] * len(chunks)
        remaining = len(chunks)

        def _collect(index: int, tpp: Optional[TPP]) -> None:
            nonlocal remaining
            results[index] = tpp
            remaining -= 1
            if remaining == 0:
                on_complete(results)

        requests = []
        for index, chunk in enumerate(chunks):
            source = "\n".join(f"PUSH [{stat.strip('[]')}]" for stat in chunk)
            compiled = compile_tpp(source, num_hops=num_hops,
                                   app_id=self.stack.executor_app_id)
            requests.append(self._register(
                compiled.tpp, dst, lambda tpp, idx=index: _collect(idx, tpp),
                retries=retries, timeout_s=timeout_s))
        self._send_probes(requests)
