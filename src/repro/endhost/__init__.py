"""End-host stack: TPP control plane, dataplane shim, executor, deployment framework."""

from .aggregator import (Aggregator, Collector, DeployedApplication, EndHostStackLike,
                         PiggybackApplication, deploy)
from .control_plane import Application, ControlPlaneAgent, TPPControlPlane
from .dataplane import AppBinding, DataplaneShim, TPP_ECHO_PORT
from .executor import ExecutorStats, TPPExecutor
from .filters import FilterEntry, FilterTable, PacketFilter, match_all
from .stack import EndHostStack, install_stacks

__all__ = [
    "Aggregator", "AppBinding", "Application", "Collector", "ControlPlaneAgent",
    "DataplaneShim", "DeployedApplication", "EndHostStack", "EndHostStackLike",
    "ExecutorStats",
    "FilterEntry", "FilterTable", "PacketFilter", "PiggybackApplication",
    "TPPControlPlane", "TPPExecutor", "TPP_ECHO_PORT", "deploy", "install_stacks",
    "match_all",
]
