"""The per-host end-host stack: shim + control-plane agent + executor (§4, Figure 9)."""

from __future__ import annotations

from typing import Optional

from repro.net.node import Host
from repro.net.topology import Network

from .control_plane import ControlPlaneAgent, TPPControlPlane
from .dataplane import DataplaneShim
from .executor import TPPExecutor


class EndHostStack:
    """Everything §4 installs on one end host.

    Attributes:
        host: the underlying simulated host.
        shim: the dataplane shim interposing on transmit/receive.
        agent: the TPP-CP agent exposing ``add_tpp``.
        executor: the TPP executor library (reliable / targeted / scatter-gather).
        executor_app_id: application id the executor's probes are stamped with.
    """

    def __init__(self, host: Host, control_plane: TPPControlPlane,
                 executor_app: Optional[int] = None) -> None:
        self.host = host
        self.control_plane = control_plane
        self.shim = DataplaneShim(host)
        self.agent = ControlPlaneAgent(control_plane, self.shim)
        if executor_app is None:
            executor_application = control_plane.register_application(
                f"executor@{host.name}")
            executor_app = executor_application.app_id
        self.executor_app_id = executor_app
        self.executor = TPPExecutor(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EndHostStack {self.host.name} filters={len(self.shim.filters)}>"


def install_stacks(network: Network, control_plane: Optional[TPPControlPlane] = None,
                   hosts: Optional[list[str]] = None) -> dict[str, EndHostStack]:
    """Install an :class:`EndHostStack` on (a subset of) a network's hosts.

    Returns host name -> stack.  A fresh control plane is created when none is
    supplied; it is shared by every stack, mirroring the logically-central
    TPP-CP of §4.1.
    """
    if control_plane is None:
        control_plane = TPPControlPlane()
    selected = hosts if hosts is not None else list(network.hosts)
    return {name: EndHostStack(network.hosts[name], control_plane) for name in selected}
