"""iptables-style packet filters used by the dataplane shim (§4.1).

A :class:`PacketFilter` describes which outgoing packets an application's TPP
should be attached to, with what sampling frequency, and at what priority.
The semantics follow the paper's ``add_tpp(filter, tpp_bytes,
sample_frequency, priority)`` API: a sampling frequency of ``N`` stamps a
packet with probability ``1/N`` (``N == 1`` stamps every packet).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.net.packet import Packet


@dataclass
class PacketFilter:
    """Match criteria for selecting packets to instrument.

    Every criterion left as ``None`` matches anything; ranges are inclusive.
    """

    protocol: Optional[str] = None
    src: Optional[str] = None
    dst: Optional[str] = None
    dport: Optional[int] = None
    dport_range: Optional[tuple[int, int]] = None
    sport: Optional[int] = None
    vlan: Optional[int] = None
    flow_id: Optional[int] = None

    def matches(self, packet: Packet) -> bool:
        if self.protocol is not None and packet.protocol != self.protocol:
            return False
        if self.src is not None and packet.src != self.src:
            return False
        if self.dst is not None and packet.dst != self.dst:
            return False
        if self.dport is not None and packet.dport != self.dport:
            return False
        if self.dport_range is not None:
            low, high = self.dport_range
            if not low <= packet.dport <= high:
                return False
        if self.sport is not None and packet.sport != self.sport:
            return False
        if self.vlan is not None and packet.vlan != self.vlan:
            return False
        if self.flow_id is not None and packet.flow_id != self.flow_id:
            return False
        return True


def match_all() -> PacketFilter:
    """A filter that matches every packet."""
    return PacketFilter()


@dataclass
class FilterEntry:
    """One installed (filter, TPP, sampling, priority) rule."""

    filter: PacketFilter
    app_id: int
    tpp_template: object                 # CompiledTPP or TPP; cloned per stamped packet
    sample_frequency: int = 1
    priority: int = 0
    deterministic_sampling: bool = True
    packets_matched: int = 0
    packets_stamped: int = 0
    _sample_counter: int = field(default=0, repr=False)
    _rng: random.Random = field(default_factory=lambda: random.Random(0), repr=False)

    def __post_init__(self) -> None:
        if self.sample_frequency < 1:
            raise ValueError("sample_frequency must be >= 1")

    def should_stamp(self, packet: Packet) -> bool:
        """Decide whether this matching packet gets the TPP."""
        self.packets_matched += 1
        if self.sample_frequency == 1:
            self.packets_stamped += 1
            return True
        if self.deterministic_sampling:
            self._sample_counter += 1
            if self._sample_counter >= self.sample_frequency:
                self._sample_counter = 0
                self.packets_stamped += 1
                return True
            return False
        if self._rng.random() < 1.0 / self.sample_frequency:
            self.packets_stamped += 1
            return True
        return False


class FilterTable:
    """Priority-ordered filter rules; the first match wins (§4.2)."""

    def __init__(self) -> None:
        self.entries: list[FilterEntry] = []
        self.lookups = 0
        self.rules_evaluated = 0
        # Same-flow memo: every PacketFilter criterion is a function of
        # Packet.flow_key(), so packets with an identical key always resolve
        # to the same first-matching entry.  Invalidated on any rule change.
        self._memo_key: Optional[tuple] = None
        self._memo_entry: Optional[FilterEntry] = None

    def install(self, entry: FilterEntry) -> None:
        self.entries.append(entry)
        self.entries.sort(key=lambda e: -e.priority)
        self._memo_key = None

    def remove_app(self, app_id: int) -> int:
        """Remove all rules belonging to an application; returns how many."""
        before = len(self.entries)
        self.entries = [e for e in self.entries if e.app_id != app_id]
        self._memo_key = None
        return before - len(self.entries)

    def match(self, packet: Packet) -> Optional[FilterEntry]:
        """First (highest-priority) entry whose filter matches the packet.

        Same-flow runs (bursts) hit a one-entry memo instead of re-walking
        the rule list; ``lookups`` counts every call, ``rules_evaluated``
        counts rules actually examined.
        """
        self.lookups += 1
        key = packet.flow_key()
        if key == self._memo_key:
            return self._memo_entry
        matched = None
        for entry in self.entries:
            self.rules_evaluated += 1
            if entry.filter.matches(packet):
                matched = entry
                break
        self._memo_key = key
        self._memo_entry = matched
        return matched

    def __len__(self) -> int:
        return len(self.entries)
