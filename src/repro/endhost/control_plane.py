"""The TPP control plane (TPP-CP, §4.1).

A logically central :class:`TPPControlPlane` keeps track of running TPP
applications and owns the allocation of the per-link application-specific
scratch registers (``Link:AppSpecific_k``).  Each application is granted a
contiguous set of addresses it may read/write — the analogue of the x86
global descriptor table the paper describes — and every TPP an application
wants to install is statically analysed against those grants before it is
admitted.

A per-host :class:`ControlPlaneAgent` fronts the central control plane: the
``add_tpp`` API it exposes is the one applications call, and it configures
the host's dataplane shim only after the TPP passes validation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core import addressing
from repro.core.exceptions import AccessControlError
from repro.core.packet_format import TPP
from repro.core.static_analysis import MemoryGrant, check_access, uses_write_instructions

from .filters import FilterEntry, PacketFilter

if TYPE_CHECKING:  # pragma: no cover
    from .dataplane import DataplaneShim


@dataclass
class Application:
    """A registered TPP application and its memory grants."""

    app_id: int
    name: str
    grants: list[MemoryGrant] = field(default_factory=list)
    link_registers: list[int] = field(default_factory=list)
    tpps_installed: int = 0


class TPPControlPlane:
    """Central registry of applications, grants and global policy knobs."""

    NUM_LINK_REGISTERS = 8

    def __init__(self, writes_allowed: bool = True) -> None:
        #: Global administrator switch: when False, no TPP containing a write
        #: instruction is admitted anywhere in the network (§4.3).
        self.writes_allowed = writes_allowed
        self.applications: dict[int, Application] = {}
        self._app_ids = itertools.count(1)
        self._allocated_link_registers: set[int] = set()

    # --------------------------------------------------------- registration
    def register_application(self, name: str) -> Application:
        """Create an application with no grants yet."""
        app = Application(app_id=next(self._app_ids), name=name)
        self.applications[app.app_id] = app
        return app

    def allocate_link_register(self, app: Application, writable: bool = True) -> int:
        """Allocate one of the eight per-link AppSpecific registers to ``app``.

        The grant covers the packet-relative alias (``[Link:AppSpecific_k]``)
        and the concrete ``Link$i`` blocks on every port, since the dynamic
        alias resolves to those addresses inside switches.
        """
        available = [r for r in range(self.NUM_LINK_REGISTERS)
                     if r not in self._allocated_link_registers]
        if not available:
            raise AccessControlError("all per-link application registers are allocated")
        register = available[0]
        self._allocated_link_registers.add(register)
        app.link_registers.append(register)

        field_offset = addressing.LINK_FIELDS["AppSpecific_0"] + register
        dynamic_address = addressing.DYNAMIC_LINK_BASE + field_offset
        operations = ["read", "write"] if writable else ["read"]
        for operation in operations:
            app.grants.append(MemoryGrant(operation, dynamic_address, dynamic_address))
            # Concrete per-port addresses: one stripe across the whole Link region.
            for port in range(addressing.MAX_LINKS):
                concrete = addressing.LINK_BASE + port * addressing.LINK_BLOCK_WORDS + field_offset
                app.grants.append(MemoryGrant(operation, concrete, concrete))
        return register

    def grant(self, app: Application, operation: str, start: int, end: int) -> MemoryGrant:
        """Add an explicit (operation, address range) grant."""
        if operation not in ("read", "write"):
            raise ValueError("operation must be 'read' or 'write'")
        grant = MemoryGrant(operation, start, end)
        app.grants.append(grant)
        return grant

    def release_application(self, app_id: int) -> None:
        app = self.applications.pop(app_id, None)
        if app is not None:
            for register in app.link_registers:
                self._allocated_link_registers.discard(register)

    # ------------------------------------------------------------ validation
    def validate(self, app_id: int, tpp: TPP) -> None:
        """Statically analyse ``tpp`` against the application's grants.

        Raises :class:`AccessControlError` when the TPP is not admissible; a
        validated TPP is stamped with the application's id.
        """
        app = self.applications.get(app_id)
        if app is None:
            raise AccessControlError(f"unknown application id {app_id}")
        if uses_write_instructions(tpp.instructions) and not self.writes_allowed:
            raise AccessControlError(
                "the administrator has disabled TPP write instructions network-wide (§4.3)")
        check_access(tpp.instructions, app.grants, app_id=app_id)
        tpp.app_id = app_id
        app.tpps_installed += 1


class ControlPlaneAgent:
    """The per-host TPP-CP agent (§4.1).

    It validates TPPs against the central control plane and programs the
    host's dataplane shim.  The agent is also the place where the
    hypervisor-style policy of §4.3 (e.g. "drop TPPs carrying writes from
    untrusted applications") is enforced, because the shim only accepts rules
    from its agent.
    """

    def __init__(self, control_plane: TPPControlPlane, shim: "DataplaneShim") -> None:
        self.control_plane = control_plane
        self.shim = shim
        self.api_calls = 0
        self.api_failures = 0

    def add_tpp(self, app_id: int, packet_filter: PacketFilter, tpp: TPP,
                sample_frequency: int = 1, priority: int = 0) -> FilterEntry:
        """The paper's ``add_tpp(filter, tpp_bytes, sample_frequency, priority)``.

        Raises :class:`AccessControlError` when validation fails; on success
        the rule is installed in the host's dataplane shim and returned.
        """
        self.api_calls += 1
        try:
            self.control_plane.validate(app_id, tpp)
        except AccessControlError:
            self.api_failures += 1
            raise
        entry = FilterEntry(filter=packet_filter, app_id=app_id, tpp_template=tpp,
                            sample_frequency=sample_frequency, priority=priority)
        self.shim.install_filter(entry)
        return entry

    def remove_app(self, app_id: int) -> int:
        """Remove all of an application's rules from this host's shim."""
        return self.shim.filters.remove_app(app_id)
