"""The end-host dataplane shim (§4.2).

The shim sits between applications and the host's NIC (implemented here as
transmit/receive hooks on :class:`repro.net.node.Host`).  Responsibilities:

* **Interposition** — match outgoing packets against the installed filter
  table and attach (at most one) TPP to the first match, honouring each
  rule's sampling frequency.
* **Stripping** — remove completed TPPs from incoming packets before the
  application sees them, so applications remain oblivious to TPPs.
* **Echo / dispatch** — hand fully-executed TPPs to the owning application's
  aggregator on this host, and/or echo them back to the packet's source
  (RCP* and CONGA* need the sender to see the collected state).  Echoes are
  carried as ordinary UDP payloads, not as fresh TPPs, so they are not
  re-executed on the return path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.compiler import CompiledTPP
from repro.core.packet_format import TPP
from repro.core.static_analysis import trace_ineligibility
from repro.net.node import Host
from repro.net.packet import Packet, TPP_UDP_PORT, udp_packet

from .filters import FilterEntry, FilterTable

#: UDP destination port used for echoed (already-executed) TPPs.
TPP_ECHO_PORT = 0x6667

#: Signature of an application callback receiving completed TPPs:
#: ``callback(tpp, packet)`` where ``packet`` is the carrier packet.
TPPCallback = Callable[[TPP, Packet], None]


@dataclass
class AppBinding:
    """How the shim should handle completed TPPs belonging to one application."""

    app_id: int
    on_tpp: Optional[TPPCallback] = None
    echo_to_source: bool = False


class DataplaneShim:
    """Per-host packet-processing pipeline for TPP insertion and removal."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self.filters = FilterTable()
        self.bindings: dict[int, AppBinding] = {}
        # Statistics.
        self.tpps_attached = 0
        self.tpp_bytes_added = 0
        self.tpps_completed = 0
        self.tpps_echoed = 0
        self.echo_bytes_sent = 0
        self.bursts_sent = 0
        # Trace-eligibility bookkeeping: when the network runs compiled TCPU
        # traces (Scenario(compile_traces=True)), these tell an experimenter
        # whether the templates *this host* stamps will take the fast path.
        self.traceable_filters = 0
        self.untraceable_filters = 0
        host.add_tx_hook(self._on_transmit)
        host.add_rx_hook(self._on_receive)

    # ------------------------------------------------------------- provisioning
    def install_filter(self, entry: FilterEntry) -> None:
        template = entry.tpp_template
        tpp = template.tpp if isinstance(template, CompiledTPP) else template
        if trace_ineligibility(tpp.instructions) is None:
            self.traceable_filters += 1
        else:
            self.untraceable_filters += 1
        self.filters.install(entry)

    def trace_ineligible_programs(self) -> list[tuple[int, str]]:
        """(app_id, reason) for each installed template the compiled-trace
        engine would refuse — such TPPs run interpreted at every switch."""
        ineligible = []
        for entry in self.filters.entries:
            template = entry.tpp_template
            tpp = template.tpp if isinstance(template, CompiledTPP) else template
            reason = trace_ineligibility(tpp.instructions)
            if reason is not None:
                ineligible.append((entry.app_id, reason))
        return ineligible

    def bind_application(self, app_id: int, on_tpp: Optional[TPPCallback] = None,
                         echo_to_source: bool = False) -> AppBinding:
        """Register what to do with completed TPPs for ``app_id`` on this host."""
        binding = AppBinding(app_id=app_id, on_tpp=on_tpp, echo_to_source=echo_to_source)
        self.bindings[app_id] = binding
        return binding

    # ---------------------------------------------------------------- transmit
    def _on_transmit(self, packet: Packet) -> bool:
        """Attach a TPP to the packet when a filter rule matches (§4.2)."""
        if packet.is_tpp or packet.dport == TPP_ECHO_PORT:
            return True       # never double-stamp; echoes travel as plain UDP
        entry = self.filters.match(packet)
        if entry is None or not entry.should_stamp(packet):
            return True
        template = entry.tpp_template
        tpp = template.clone_tpp() if isinstance(template, CompiledTPP) else template.clone()
        tpp.app_id = entry.app_id
        packet.attach_tpp(tpp)
        self.tpps_attached += 1
        self.tpp_bytes_added += tpp.wire_length()
        return True

    def send_burst(self, packets: list[Packet]) -> int:
        """Batched injection: send a burst through the interposition path.

        Each packet still traverses the filter table individually (so
        sampling counters stay exact), but same-flow runs hit the filter
        table's one-entry memo and the host enqueues the burst with a single
        uplink pass.  Returns how many packets made it onto the wire.
        """
        self.bursts_sent += 1
        return self.host.send_many(packets)

    # ----------------------------------------------------------------- receive
    def _on_receive(self, packet: Packet, host: Host) -> bool:
        """Strip completed TPPs; dispatch/echo them; deliver echoes to apps."""
        # Echoed TPPs arrive as plain UDP payloads on the echo port.
        if packet.dport == TPP_ECHO_PORT and isinstance(packet.payload, dict) \
                and "echoed_tpp" in packet.payload:
            self._dispatch_echo(packet)
            return True

        if packet.tpp is None:
            return False

        tpp = packet.detach_tpp()
        self.tpps_completed += 1
        # Stamp the arrival time before handing the TPP to aggregators: they
        # index samples by when the carrier packet reached this host.
        if packet.delivered_at is None:
            packet.delivered_at = self.host.sim.now
        binding = self.bindings.get(tpp.app_id)
        if binding is not None:
            if binding.on_tpp is not None:
                binding.on_tpp(tpp, packet)
            if binding.echo_to_source:
                self._echo(tpp, packet)
        elif packet.tpp_standalone or packet.dport == TPP_UDP_PORT:
            # Standalone probes with no local consumer are echoed back to the
            # sender by default (§4.2: "echoes any standalone TPPs that have
            # finished executing back to the packet's source IP address").
            self._echo(tpp, packet)

        if packet.tpp_standalone or packet.dport == TPP_UDP_PORT:
            return True       # probe packets carry no application payload
        return False          # let the host deliver the (now TPP-free) packet

    # ------------------------------------------------------------------ echoes
    def _echo(self, tpp: TPP, original: Packet) -> None:
        """Send the executed TPP back to the original sender as a UDP payload."""
        if original.src == self.host.name:
            return
        echo = udp_packet(self.host.name, original.src, payload_bytes=tpp.wire_length(),
                          sport=TPP_ECHO_PORT, dport=TPP_ECHO_PORT,
                          flow_id=original.flow_id, created_at=self.host.sim.now)
        echo.payload = {
            "echoed_tpp": tpp,
            "app_id": tpp.app_id,
            "original_dst": original.dst,
            "original_dport": original.dport,
            "original_vlan": original.vlan,
            "request_id": original.metadata.get("request_id"),
            "metadata": dict(original.metadata),
            "path": list(original.path),
        }
        self.tpps_echoed += 1
        self.echo_bytes_sent += echo.size
        self.host.send(echo)

    def _dispatch_echo(self, packet: Packet) -> None:
        """Deliver an echoed TPP to the owning application's callback."""
        tpp: TPP = packet.payload["echoed_tpp"]
        binding = self.bindings.get(packet.payload.get("app_id", tpp.app_id))
        if binding is not None and binding.on_tpp is not None:
            binding.on_tpp(tpp, packet)

    # --------------------------------------------------------------- reporting
    @property
    def overhead_bytes(self) -> int:
        """Extra bytes this shim added to the host's transmitted traffic."""
        return self.tpp_bytes_added + self.echo_bytes_sent
