"""Statistics helpers shared by applications and benchmarks."""

from .series import Ewma, TimeSeries, cdf, fractiles, fraction_at_or_below
from .summary import ComparisonRow, ExperimentSummary

__all__ = ["ComparisonRow", "Ewma", "ExperimentSummary", "TimeSeries", "cdf",
           "fractiles", "fraction_at_or_below"]
