"""Experiment summaries: paper-reported versus measured values.

Every benchmark builds a :class:`ExperimentSummary` so the harness prints the
same rows/series the paper reports next to what this reproduction measured,
and EXPERIMENTS.md can be generated/checked from the same structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class ComparisonRow:
    """One paper-vs-measured data point."""

    label: str
    paper_value: Optional[float]
    measured_value: Optional[float]
    unit: str = ""
    note: str = ""

    def ratio(self) -> Optional[float]:
        if self.paper_value in (None, 0) or self.measured_value is None:
            return None
        return self.measured_value / self.paper_value

    def formatted(self) -> str:
        paper = "-" if self.paper_value is None else f"{self.paper_value:g}"
        measured = "-" if self.measured_value is None else f"{self.measured_value:g}"
        unit = f" {self.unit}" if self.unit else ""
        note = f"  ({self.note})" if self.note else ""
        return f"{self.label:<42s} paper={paper}{unit:<8s} measured={measured}{unit}{note}"


@dataclass
class ExperimentSummary:
    """A named collection of comparison rows for one table/figure."""

    experiment_id: str
    title: str
    rows: list[ComparisonRow] = field(default_factory=list)

    def add(self, label: str, paper_value: Optional[float], measured_value: Optional[float],
            unit: str = "", note: str = "") -> ComparisonRow:
        row = ComparisonRow(label, paper_value, measured_value, unit, note)
        self.rows.append(row)
        return row

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.extend(row.formatted() for row in self.rows)
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print(self.render())
