"""Small statistics helpers: time series, CDFs/fractiles, EWMA.

These are the utilities the benchmarks and applications use to turn raw
per-packet samples into the summaries the paper's figures plot (queue
occupancy CDFs, throughput time series, utilisation aggregates).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class TimeSeries:
    """An append-only (time, value) series with window/resampling helpers."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def add(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("time series samples must be appended in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def between(self, start: float, end: float) -> "TimeSeries":
        """Samples with start <= t < end."""
        lo = bisect_right(self.times, start) - 1
        lo = max(lo, 0)
        result = TimeSeries()
        for t, v in zip(self.times, self.values):
            if start <= t < end:
                result.add(t, v)
        return result

    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    def resample(self, interval: float, start: float = 0.0, end: float | None = None,
                 how: str = "mean") -> "TimeSeries":
        """Aggregate into fixed windows (``how`` is "mean", "max" or "last")."""
        if not self.times:
            return TimeSeries()
        end = end if end is not None else self.times[-1]
        out = TimeSeries()
        window_start = start
        bucket: list[float] = []
        index = 0
        while window_start < end:
            window_end = window_start + interval
            while index < len(self.times) and self.times[index] < window_end:
                if self.times[index] >= window_start:
                    bucket.append(self.values[index])
                index += 1
            if bucket:
                if how == "mean":
                    value = sum(bucket) / len(bucket)
                elif how == "max":
                    value = max(bucket)
                elif how == "last":
                    value = bucket[-1]
                else:
                    raise ValueError(f"unknown resample mode {how!r}")
                out.add(window_end, value)
            bucket = []
            window_start = window_end
        return out


def fractiles(samples: Sequence[float], points: Iterable[float] = (0.5, 0.9, 0.99)) -> dict[float, float]:
    """Empirical quantiles (nearest-rank) of ``samples`` at the given points."""
    if not samples:
        return {p: 0.0 for p in points}
    ordered = sorted(samples)
    result = {}
    for p in points:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"fractile {p} outside [0, 1]")
        rank = min(len(ordered) - 1, max(0, int(round(p * (len(ordered) - 1)))))
        result[p] = ordered[rank]
    return result


def cdf(samples: Sequence[float]) -> list[tuple[float, float]]:
    """The empirical CDF as (value, cumulative fraction) points."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def fraction_at_or_below(samples: Sequence[float], threshold: float) -> float:
    """P[X <= threshold] under the empirical distribution."""
    if not samples:
        return 0.0
    return sum(1 for s in samples if s <= threshold) / len(samples)


class Ewma:
    """Exponentially-weighted moving average."""

    def __init__(self, alpha: float, initial: float | None = None) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value = initial

    def update(self, sample: float) -> float:
        if self.value is None:
            self.value = sample
        else:
            self.value = self.alpha * sample + (1 - self.alpha) * self.value
        return self.value
