"""repro — a reproduction of "Millions of Little Minions" (TPP, SIGCOMM 2014).

Subpackages
-----------

* :mod:`repro.core` — tiny packet programs: ISA, assembler/compiler, wire
  format, the TCPU execution engine and static analysis.
* :mod:`repro.switches` — the TPP-capable switch model (match-action
  pipeline, memory map, statistics, queues).
* :mod:`repro.net` — the discrete-event network substrate (simulator, links,
  hosts, topologies, traffic generators, a simple TCP).
* :mod:`repro.endhost` — the end-host stack: TPP control plane, dataplane
  shim, executor library, application deployment framework.
* :mod:`repro.collect` — the §4.5 collection plane: mergeable summary
  monoids, collector shards, and the virtual-IP front door with an
  order-independent global merge.
* :mod:`repro.session` — the unified experiment API: the fluent
  :class:`~repro.session.Scenario` builder, the
  :class:`~repro.session.Experiment` runner, and the topology/workload
  registries.
* :mod:`repro.apps` — the paper's dataplane tasks refactored over TPPs
  (micro-burst detection, RCP*, NetSight, CONGA*, sketches, verification).
* :mod:`repro.baselines` — the comparators (ECMP, TCP, polling monitor,
  exact counting).
* :mod:`repro.hardware` — the §6 feasibility models (latency, area, end-host
  dataplane throughput).
* :mod:`repro.stats` — series/CDF helpers and experiment summaries.
* :mod:`repro.obs` — the runtime observability plane: spans, metrics
  registry, Perfetto trace export, provenance stamping.
"""

__version__ = "1.0.0"

__all__ = ["core", "switches", "net", "endhost", "collect", "session", "apps",
           "baselines", "hardware", "stats", "obs"]
