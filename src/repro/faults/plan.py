"""Fault plans: deterministic, picklable link-event traces.

A :class:`FaultPlan` is the fault plane's *input model* — an ordered tuple
of :class:`FaultEvent` records (``time, link, kind``) that the
:class:`~repro.faults.injector.FaultInjector` replays through the
simulator.  Three event kinds cover the degradation modes the paper's
diagnosis apps care about:

* ``loss`` — the link starts corrupting delivered packets with Bernoulli
  probability ``loss_rate`` (a gray failure: the link stays up, counters
  at the sending side keep advancing, the receiving side silently loses
  packets — the hardest case for path-level monitoring and exactly what
  per-hop TPP counter diffs localize);
* ``down`` — the link fails outright;
* ``repair`` — the link comes back up, clean (any loss rate is cleared).

Plans are frozen, canonically ordered, and plain data, so they pickle,
fingerprint, and sweep like every other piece of a
:class:`~repro.session.spec.ScenarioSpec`.  :meth:`FaultPlan.generate`
derives a plan from knobs (how many corrupting links, what rate, when)
using its own ``random.Random(seed)`` — never the scenario's master rng,
so *declaring* faults does not shift any workload's random stream.

:class:`FaultSpec` is the scenario-level declaration (``Scenario.faults``)
that resolves to a concrete plan once the topology exists;
:class:`RemediationSpec` declares the policy loop (``Scenario.remediation``)
— see :mod:`repro.faults.policy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.topology import Network

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultPlan", "FaultSpec",
           "RemediationSpec"]

#: The event kinds a plan may contain.
FAULT_KINDS = ("loss", "down", "repair")


@dataclass(frozen=True)
class FaultEvent:
    """One link event: at ``time``, ``link`` degrades (or recovers).

    ``loss_rate`` is meaningful only for ``kind="loss"`` (and must then be
    in ``(0, 1]``); ``down``/``repair`` events must leave it at 0.
    """

    time: float
    link: str
    kind: str
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault event time cannot be negative, got {self.time}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {FAULT_KINDS}")
        if self.kind == "loss":
            if not 0.0 < self.loss_rate <= 1.0:
                raise ValueError(f"loss events need loss_rate in (0, 1], "
                                 f"got {self.loss_rate}")
        elif self.loss_rate:
            raise ValueError(f"{self.kind!r} events take no loss_rate "
                             f"(got {self.loss_rate})")


def _event_key(event: FaultEvent) -> tuple:
    return (event.time, event.link, FAULT_KINDS.index(event.kind))


@dataclass(frozen=True)
class FaultPlan:
    """A canonical, replayable trace of link events.

    Events are kept sorted by ``(time, link, kind)`` regardless of
    construction order, so equal event multisets compare (and fingerprint)
    equal.  ``seed`` salts the injector's per-link corruption streams —
    two plans with the same events but different seeds corrupt different
    packets.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"plan events must be FaultEvent, "
                                f"got {type(event).__name__}")
        object.__setattr__(self, "events",
                           tuple(sorted(self.events, key=_event_key)))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def links(self) -> list[str]:
        """Sorted names of every link the plan touches."""
        return sorted({event.link for event in self.events})

    @classmethod
    def generate(cls, candidates: Iterable[str], *, seed: int = 0,
                 corrupt_links: int = 1, loss_rate: float = 0.01,
                 onset_s: float = 0.0, fail_links: int = 0,
                 fail_at_s: float = 0.0,
                 repair_after_s: Optional[float] = None) -> "FaultPlan":
        """Draw a plan from a candidate link pool, deterministically.

        ``corrupt_links`` links start corrupting at ``onset_s`` with
        ``loss_rate``; ``fail_links`` *other* links go down at
        ``fail_at_s`` (and come back ``repair_after_s`` later, when set).
        All choices come from ``random.Random(seed)`` over the *sorted*
        pool, so the drawn plan is independent of candidate order.
        """
        import random

        pool = sorted(set(candidates))
        rng = random.Random(seed)
        n_corrupt = min(corrupt_links, len(pool))
        chosen_corrupt = sorted(rng.sample(pool, n_corrupt)) if n_corrupt else []
        remaining = [name for name in pool if name not in set(chosen_corrupt)]
        n_fail = min(fail_links, len(remaining))
        chosen_fail = sorted(rng.sample(remaining, n_fail)) if n_fail else []
        events = []
        for link in chosen_corrupt:
            events.append(FaultEvent(onset_s, link, "loss", loss_rate))
        for link in chosen_fail:
            events.append(FaultEvent(fail_at_s, link, "down"))
            if repair_after_s is not None:
                events.append(FaultEvent(fail_at_s + repair_after_s, link,
                                         "repair"))
        return cls(events=tuple(events), seed=seed)


@dataclass
class FaultSpec:
    """The scenario-level fault declaration (``Scenario.faults(...)``).

    Either carries an explicit :class:`FaultPlan` (``plan``) or the
    generator knobs to draw one once the topology exists
    (:meth:`resolve`).  The candidate pool defaults to the fabric's
    inter-switch links — host access links stay healthy, mirroring where
    gray failures live in practice (optics and fabric cabling).
    """

    plan: Optional[FaultPlan] = None
    seed: int = 0
    links: Optional[tuple[str, ...]] = None       # explicit candidate pool
    corrupt_links: int = 1
    loss_rate: float = 0.01
    onset_s: float = 0.0
    fail_links: int = 0
    fail_at_s: float = 0.0
    repair_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.corrupt_links < 0 or self.fail_links < 0:
            raise ValueError("corrupt_links/fail_links cannot be negative")
        if self.plan is None and self.corrupt_links:
            if not 0.0 < self.loss_rate <= 1.0:
                raise ValueError(f"loss_rate must be in (0, 1], "
                                 f"got {self.loss_rate}")
        if self.onset_s < 0 or self.fail_at_s < 0:
            raise ValueError("onset_s/fail_at_s cannot be negative")
        if self.repair_after_s is not None and self.repair_after_s <= 0:
            raise ValueError("repair_after_s must be positive when set")
        if self.links is not None:
            self.links = tuple(self.links)

    def resolve(self, network: "Network") -> FaultPlan:
        """The concrete plan for one built topology."""
        if self.plan is not None:
            return self.plan
        if self.links is not None:
            pool = list(self.links)
        else:
            switches = network.switches
            pool = [link.name for link in network.links
                    if link.port_a.node.name in switches
                    and link.port_b.node.name in switches]
        return FaultPlan.generate(
            pool, seed=self.seed, corrupt_links=self.corrupt_links,
            loss_rate=self.loss_rate, onset_s=self.onset_s,
            fail_links=self.fail_links, fail_at_s=self.fail_at_s,
            repair_after_s=self.repair_after_s)


@dataclass
class RemediationSpec:
    """The scenario-level remediation declaration (``Scenario.remediation``).

    ``policy`` names a registered remediation policy (see
    :data:`repro.faults.policy.POLICIES`); ``app`` names the deployed TPP
    application whose aggregators produce link verdicts (the
    loss-localization app by default).  Every ``period_s`` the controller
    polls the detector, reacts to any verdict whose tx/rx deficit is at
    least ``threshold`` packets, and records the penalty / path-diversity
    timeseries.  ``repair_time_s`` is how long a policy-disabled link
    stays down before it is repaired (cleanly — corruption cleared);
    ``min_path_diversity`` is the ToR fabric-link floor the
    capacity-constrained policy refuses to cross.
    """

    policy: str = "do-nothing"
    app: str = "loss-localization"
    period_s: float = 0.05
    threshold: int = 5
    min_path_diversity: int = 1
    repair_time_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1 packet")
        if self.min_path_diversity < 0:
            raise ValueError("min_path_diversity cannot be negative")
        if self.repair_time_s is not None and self.repair_time_s <= 0:
            raise ValueError("repair_time_s must be positive when set")
