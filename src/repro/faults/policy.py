"""Remediation policies and the controller that drives them.

The remediation loop closes the paper's diagnosis story: a TPP app (the
loss-localization detector, :mod:`repro.apps.losslocal`) measures per-hop
tx/rx deficits; every ``period_s`` the :class:`RemediationController`
polls the detector's aggregators, names the worst link, and hands the
verdict to a pluggable policy.  Policies are one decorator away::

    @register_policy("my-policy")
    class MyPolicy(RemediationPolicy):
        def react(self, controller, verdict):
            ...
            return "disabled"           # or "refused" / "ignored"

Shipped policies:

* ``do-nothing`` — records verdicts and metrics, never acts (the
  baseline the benchmark compares against);
* ``disable-and-repair`` — takes the named link down, recomputes routes
  around it, and schedules a clean repair ``repair_time_s`` later;
* ``capacity-constrained`` — like disable-and-repair, but refuses to
  disable when doing so would push any ToR's up fabric-link count below
  ``min_path_diversity`` (CorrOpt-style: never trade corruption loss for
  a capacity cliff).

The controller emits its measurements as mergeable summaries — counters
plus a :class:`~repro.collect.summary.SeriesSummary` with the
``loss-penalty`` and ``worst-tor-diversity`` timeseries — through the
same collector surface every TPP app uses, so remediation metrics ride
the sharded collect plane untouched.

Determinism: the controller draws no randomness.  Re-routing after a
disable/repair reinstalls shortest-path state at a strictly higher flow
priority (old entries resolve oldest-first at equal priority) and re-uses
the hash-group salt captured at init, so ECMP placement on unaffected
paths is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.collect import CounterSummary, SeriesSummary, SummaryBundle
from repro.net.port import DROP_LINK_DOWN, DROP_PEER_DOWN
from repro.session.registry import Registry

from .plan import RemediationSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.endhost import Collector, DeployedApplication
    from repro.net.link import Link
    from repro.net.sim import Simulator
    from repro.net.topology import Network

__all__ = ["LinkVerdict", "POLICIES", "RemediationController",
           "RemediationPolicy", "register_policy"]

#: The process-wide policy registry (``Scenario.remediation`` resolves here).
POLICIES = Registry("remediation policy")
register_policy = POLICIES.register


@dataclass(frozen=True)
class LinkVerdict:
    """A detector's accusation: ``link`` is losing ``deficit`` packets.

    ``pair`` is the directed (upstream switch id, downstream switch id)
    hop the deficit was measured over; ``deficit`` is the largest
    per-sample ``tx_upstream - rx_downstream`` gap observed (in packets,
    corrected for the sampling packet itself — healthy hops sit at or
    below zero).
    """

    link: str
    pair: tuple[int, int]
    deficit: int


class RemediationPolicy:
    """Base policy: :meth:`react` decides what to do with a verdict.

    Returns one of ``"disabled"`` (the link was taken down),
    ``"refused"`` (deliberately not acted on — never asked again), or
    ``"ignored"`` (no action, may be asked again).
    """

    def react(self, controller: "RemediationController",
              verdict: LinkVerdict) -> str:
        raise NotImplementedError


@register_policy("do-nothing")
class DoNothingPolicy(RemediationPolicy):
    """The baseline: observe, record, never touch the network."""

    def react(self, controller: "RemediationController",
              verdict: LinkVerdict) -> str:
        return "ignored"


@register_policy("disable-and-repair")
class DisableAndRepairPolicy(RemediationPolicy):
    """Take the accused link down and (optionally) repair it later."""

    def react(self, controller: "RemediationController",
              verdict: LinkVerdict) -> str:
        controller.disable(verdict.link)
        return "disabled"


@register_policy("capacity-constrained")
class CapacityConstrainedPolicy(RemediationPolicy):
    """Disable only while every ToR keeps ``min_path_diversity`` fabric links.

    A refusal is permanent (the verdict can only grow), so a link whose
    removal would strand a ToR below the floor keeps corrupting — the
    operator's capacity guarantee outranks the loss.
    """

    def react(self, controller: "RemediationController",
              verdict: LinkVerdict) -> str:
        floor = controller.spec.min_path_diversity
        if controller.diversity_after_disable(verdict.link) < floor:
            return "refused"
        controller.disable(verdict.link)
        return "disabled"


class RemediationController:
    """The periodic poll-verdict-react loop plus its metric streams.

    Wired by the session layer (``Scenario.remediation``): polls the
    detector app's aggregators every ``spec.period_s``, feeds the worst
    actionable verdict to the policy, and appends one point per tick to
    the ``loss-penalty`` and ``worst-tor-diversity`` series.  Exposes the
    same ``summarize()`` / ``push_summary(now)`` face as a per-host
    aggregator, so its metrics flow through the collect plane unchanged.
    """

    def __init__(self, network: "Network", spec: RemediationSpec,
                 detector: "DeployedApplication", sim: "Simulator",
                 collector: Optional["Collector"] = None) -> None:
        self.network = network
        self.spec = spec
        self.detector = detector
        self.sim = sim
        self.collector = collector
        self.policy: RemediationPolicy = POLICIES.get(spec.policy)()
        self.actions: list[tuple[float, str, str]] = []   # (time, link, action)
        self.ticks = 0
        self.verdicts_seen = 0
        self.links_disabled = 0
        self.links_repaired = 0
        self.reroutes = 0
        self.refusals = 0
        self.push_rounds = 0
        self._penalty_points: list[tuple[float, int]] = []
        self._diversity_points: list[tuple[float, int]] = []
        self._acted: set[str] = set()             # disabled or refused links
        self._process = None
        # Baseline penalty at attach time: a remediation loop declared on an
        # already-lossy network only charges itself for loss from here on.
        self._penalty_base = self._raw_penalty()
        # Mid-run reroutes must out-rank the builders' priority-0 entries
        # (equal-priority matches resolve oldest-first), and must keep the
        # ECMP placement the run started with on unaffected paths.
        self._next_priority = 100
        self._group_policy, self._salt = self._capture_group_style()
        self._switch_names = {switch.switch_id: name
                              for name, switch in network.switches.items()}

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        if self._process is None:
            self._process = self.sim.schedule_periodic(self.spec.period_s,
                                                       self._tick)

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    # ------------------------------------------------------------ the loop
    def _tick(self) -> None:
        now = self.sim.now
        self.ticks += 1
        verdict = self.detect()
        if verdict is not None and verdict.deficit >= self.spec.threshold:
            self.verdicts_seen += 1
            action = self.policy.react(self, verdict)
            self.actions.append((now, verdict.link, action))
            if action == "disabled":
                self._acted.add(verdict.link)
            elif action == "refused":
                self._acted.add(verdict.link)
                self.refusals += 1
        self._penalty_points.append((now, self.loss_penalty()))
        self._diversity_points.append((now, self.worst_tor_diversity()))

    def detect(self) -> Optional[LinkVerdict]:
        """The worst actionable verdict across the detector's aggregators.

        Folds every aggregator's ``link_deficits`` (directed switch-id
        pair -> max observed deficit) with a per-pair max, then walks
        pairs in (deficit desc, pair) order and returns the first that
        maps to a real, not-yet-acted-on link.  Deterministic: host
        iteration is sorted and ties break on the pair itself.
        """
        folded: dict[tuple[int, int], int] = {}
        for host in sorted(self.detector.aggregators):
            aggregator = self.detector.aggregators[host]
            deficits = getattr(aggregator, "link_deficits", None)
            if not deficits:
                continue
            for pair, deficit in deficits.items():
                if deficit > folded.get(pair, float("-inf")):
                    folded[pair] = deficit
        for pair, deficit in sorted(folded.items(),
                                    key=lambda kv: (-kv[1], kv[0])):
            link_name = self._link_for_pair(pair)
            if link_name is not None and link_name not in self._acted:
                return LinkVerdict(link=link_name, pair=pair, deficit=deficit)
        return None

    def _link_for_pair(self, pair: tuple[int, int]) -> Optional[str]:
        name_a = self._switch_names.get(pair[0])
        name_b = self._switch_names.get(pair[1])
        if name_a is None or name_b is None:
            return None
        link = self.network.link_between(name_a, name_b)
        return link.name if link is not None else None

    # -------------------------------------------------------------- actions
    def disable(self, link_name: str) -> None:
        """Take a link down, route around it, schedule its repair."""
        link = self._find_link(link_name)
        link.set_down()
        self.links_disabled += 1
        self._reroute()
        if self.spec.repair_time_s is not None:
            self.sim.schedule(self.spec.repair_time_s, self._repair, link,
                              name=f"repair:{link.name}")

    def _repair(self, link: "Link") -> None:
        link.set_up()
        link.clear_loss()        # a repair replaces the faulty hardware
        self.links_repaired += 1
        self._reroute()

    def _reroute(self) -> None:
        self.network.install_shortest_path_routes(
            ecmp=True, group_policy=self._group_policy,
            priority=self._next_priority, salt=self._salt)
        self._next_priority += 1
        self.reroutes += 1

    def _capture_group_style(self) -> tuple[str, int]:
        """The multipath policy/salt the topology was built with."""
        for name in sorted(self.network.switches):
            for group_id in sorted(self.network.switches[name].group_table.groups):
                group = self.network.switches[name].group_table.groups[group_id]
                return group.policy, group.salt
        return "hash", 0

    def _find_link(self, link_name: str) -> "Link":
        for link in self.network.links:
            if link.name == link_name:
                return link
        menu = ", ".join(sorted(link.name for link in self.network.links)) \
            or "<none>"
        raise ValueError(f"unknown link {link_name!r}; network links: {menu}")

    # -------------------------------------------------------------- metrics
    def _raw_penalty(self) -> int:
        penalty = 0
        for link in self.network.links:
            penalty += link.packets_corrupted
        for name in sorted(self.network.nodes):
            for port in self.network.nodes[name].ports:
                drops = port.drops_by_reason
                penalty += drops.get(DROP_LINK_DOWN, 0)
                penalty += drops.get(DROP_PEER_DOWN, 0)
        return penalty

    def loss_penalty(self) -> int:
        """Fault-attributable packet losses since the controller attached.

        Counts corruption plus link-down/peer-down drops network-wide;
        congestion (queue-overflow) drops are deliberately excluded — they
        are the workload's, not the fault plane's.
        """
        return self._raw_penalty() - self._penalty_base

    def worst_tor_diversity(self) -> int:
        """Min over ToR switches of their up fabric-link count.

        A ToR is any switch with at least one attached host; a fabric
        link is a switch-to-switch link that is currently usable.  This
        is the capacity floor the constrained policy protects.
        """
        hosts = self.network.hosts
        switches = self.network.switches
        worst: Optional[int] = None
        for name in sorted(switches):
            ports = switches[name].ports
            if not any(p.peer is not None and p.peer.node.name in hosts
                       for p in ports):
                continue
            up_fabric = sum(
                1 for p in ports
                if p.peer is not None and p.peer.node.name in switches
                and p.up and p.peer.up
                and p.link is not None and p.link.up)
            worst = up_fabric if worst is None else min(worst, up_fabric)
        return worst if worst is not None else 0

    def diversity_after_disable(self, link_name: str) -> int:
        """What :meth:`worst_tor_diversity` would read with this link down."""
        link = self._find_link(link_name)
        if not link.up:
            return self.worst_tor_diversity()
        # Probe by flipping the raw flag (not set_down: no transition is
        # recorded, no event fires) and restoring before anyone observes it.
        link.up = False
        try:
            return self.worst_tor_diversity()
        finally:
            link.up = True

    # ------------------------------------------------------- collector face
    def summarize(self) -> SummaryBundle:
        """A mergeable snapshot: action counters + the two metric series."""
        counters = CounterSummary({
            "ticks": self.ticks,
            "verdicts": self.verdicts_seen,
            "links_disabled": self.links_disabled,
            "links_repaired": self.links_repaired,
            "reroutes": self.reroutes,
            "refusals": self.refusals,
            "loss_penalty": self.loss_penalty(),
        })
        series = SeriesSummary()
        for time, penalty in self._penalty_points:
            series.add(time, "loss-penalty", penalty)
        for time, diversity in self._diversity_points:
            series.add(time, "worst-tor-diversity", diversity)
        return SummaryBundle({"counters": counters, "timeseries": series})

    def push_summary(self, now: float = 0.0) -> None:
        if self.collector is not None:
            self.collector.submit("controller", self.summarize(), time=now)
        self.push_rounds += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RemediationController policy={self.spec.policy!r} "
                f"ticks={self.ticks} disabled={self.links_disabled} "
                f"refused={self.refusals}>")
