"""The :class:`FaultInjector`: replays a :class:`~repro.faults.plan.FaultPlan`.

The injector binds a plan to a built :class:`~repro.net.topology.Network`,
resolving every event's link name eagerly (a typo fails at build time with
the full link menu), and schedules one simulator event per plan entry.
Applying an event mutates the link's degradation state
(:meth:`~repro.net.link.Link.set_loss` / ``set_down`` / ``set_up``).

Determinism: each corrupting link gets its *own* ``random.Random`` stream,
seeded from ``blake2b(f"{plan.seed}:{link.name}")`` — so which packets a
link corrupts depends only on the plan seed and the link's traffic, never
on how many other links are degraded or in what order events fire.  An
empty plan schedules nothing and draws nothing: the run is byte-identical
to one with no fault plane at all.
"""

from __future__ import annotations

import hashlib
import random
from typing import TYPE_CHECKING

from .plan import FaultEvent, FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.net.sim import Simulator
    from repro.net.topology import Network

__all__ = ["FaultInjector", "link_rng"]


def link_rng(seed: int, link_name: str) -> random.Random:
    """The per-link corruption stream: stable in (plan seed, link name)."""
    digest = hashlib.blake2b(f"{seed}:{link_name}".encode(),
                             digest_size=8).digest()
    return random.Random(int.from_bytes(digest, "big"))


class FaultInjector:
    """Schedules and applies a fault plan's events on a live network."""

    def __init__(self, network: "Network", plan: FaultPlan) -> None:
        self.network = network
        self.plan = plan
        self.events_applied = 0
        self._links: dict[str, "Link"] = {}
        by_name = {link.name: link for link in network.links}
        for name in plan.links():
            if name not in by_name:
                menu = ", ".join(sorted(by_name)) or "<none>"
                raise ValueError(f"fault plan names unknown link {name!r}; "
                                 f"network links: {menu}")
            self._links[name] = by_name[name]
        self._rngs: dict[str, random.Random] = {}

    def schedule(self, sim: "Simulator") -> None:
        """Register every plan event with the simulator (one pass)."""
        for event in self.plan.events:
            sim.schedule_at(event.time, self._apply, event,
                            name=f"fault:{event.kind}@{event.link}")

    def _apply(self, event: FaultEvent) -> None:
        link = self._links[event.link]
        if event.kind == "loss":
            rng = self._rngs.get(event.link)
            if rng is None:
                rng = self._rngs[event.link] = link_rng(self.plan.seed,
                                                        event.link)
            link.set_loss(event.loss_rate, rng=rng)
        elif event.kind == "down":
            link.set_down()
        else:                                     # "repair"
            link.set_up()
            link.clear_loss()
        self.events_applied += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FaultInjector {len(self.plan)} events over "
                f"{len(self._links)} links, applied={self.events_applied}>")
