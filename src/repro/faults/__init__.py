"""The fault plane: link degradation, injection, and remediation.

Three cooperating pieces (see the module docstrings for the contracts):

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultEvent`,
  the deterministic picklable event trace, plus the scenario-level
  :class:`FaultSpec` / :class:`RemediationSpec` declarations;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which replays a
  plan through the simulator onto the live links;
* :mod:`repro.faults.policy` — the ``@register_policy`` registry and the
  :class:`RemediationController` loop reacting to detector verdicts.

The degradation mechanics themselves live on :class:`repro.net.link.Link`
(``set_loss`` / ``set_down`` / ``set_up``); this package only decides
*when* and *what*, so the net layer stays usable without it.
"""

from .injector import FaultInjector, link_rng
from .plan import (FAULT_KINDS, FaultEvent, FaultPlan, FaultSpec,
                   RemediationSpec)
from .policy import (POLICIES, LinkVerdict, RemediationController,
                     RemediationPolicy, register_policy)

__all__ = [
    "FAULT_KINDS", "FaultEvent", "FaultInjector", "FaultPlan", "FaultSpec",
    "LinkVerdict", "POLICIES", "RemediationController", "RemediationPolicy",
    "RemediationSpec", "link_rng", "register_policy",
]
