"""The sharded collection plane (§4.5): mergeable summaries, shards, virtual IP.

The paper load-balances the collector tier behind a virtual IP and relies
on commutative aggregation operators to make sharding semantics-free.
This package is that deployment model, reproduced:

* :mod:`repro.collect.summary` — the :class:`MergeableSummary` protocol and
  the concrete monoids (counter, histogram, top-k, series) aggregators emit;
* :mod:`repro.collect.shard` — :class:`CollectorShard` end-host services
  with batching, per-epoch flushes, and backpressure/drop accounting;
* :mod:`repro.collect.virtual` — the :class:`VirtualCollector` front door
  and :class:`CollectPlane`, which consistently hash (app, host, key)
  across the tier and reconstruct the global view with an
  order-independent :meth:`~repro.collect.virtual.CollectPlane.merge`.

Experiments opt in with ``Scenario(...).collector(shards=N, ...)``; see
:mod:`repro.session.scenario`.  This package depends only on the network
substrate, so the end-host layer can emit its summary types without
circular imports.
"""

from .shard import COLLECT_UDP_PORT_BASE, CollectorShard, Submission, summary_wire_bytes
from .summary import (CounterSummary, HistogramSummary, MergeableSummary,
                      SeriesSummary, SummaryBundle, TopKSummary,
                      merge_summaries, summary_copy, summary_jsonable)
from .virtual import CollectPlane, PlaneStats, TRANSPORTS, VirtualCollector, shard_index

__all__ = [
    "COLLECT_UDP_PORT_BASE", "CollectPlane", "CollectorShard", "CounterSummary",
    "HistogramSummary", "MergeableSummary", "PlaneStats", "SeriesSummary",
    "Submission", "SummaryBundle", "TRANSPORTS", "TopKSummary",
    "VirtualCollector", "merge_summaries", "shard_index", "summary_copy",
    "summary_jsonable", "summary_wire_bytes",
]
