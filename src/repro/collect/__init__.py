"""The sharded collection plane (§4.5): mergeable summaries, shards, virtual IP.

The paper load-balances the collector tier behind a virtual IP and relies
on commutative aggregation operators to make sharding semantics-free.
This package is that deployment model, reproduced:

* :mod:`repro.collect.summary` — the :class:`MergeableSummary` protocol and
  the concrete monoids (counter, histogram, top-k, series) aggregators
  emit, each registered in :data:`SUMMARY_TYPES` so the generated
  commutativity suite can enumerate them;
* :mod:`repro.collect.delta` — the delta-channel wire format: per-source
  epoch diffs with sequence numbers and cumulative-resync fallback;
* :mod:`repro.collect.shard` — :class:`CollectorShard` end-host services
  with batching, per-epoch flushes, delta replay, and explicit
  backpressure/load-shedding policies (:class:`ShedSpec`) with per-policy
  drop accounting;
* :mod:`repro.collect.tree` — the shard → rack → root aggregation tree
  (:class:`AggregationNode` / :func:`build_tree`), semantics-free by the
  monoid laws;
* :mod:`repro.collect.virtual` — the :class:`VirtualCollector` front door
  and :class:`CollectPlane`, which consistently hash (app, host, key)
  across the tier and reconstruct the global view with an
  order-independent :meth:`~repro.collect.virtual.CollectPlane.merge`.

Experiments opt in with ``Scenario(...).collector(shards=N, ...)``; see
:mod:`repro.session.scenario`.  This package depends only on the network
substrate, so the end-host layer can emit its summary types without
circular imports.
"""

from .delta import (DeltaChannel, DeltaDecoder, SummaryDelta,
                    delta_wire_bytes)
from .shard import (COLLECT_UDP_PORT_BASE, CollectorShard, SHED_POLICIES,
                    ShedSpec, Submission, summary_wire_bytes)
from .summary import (CounterSummary, HistogramSummary, MergeableSummary,
                      SUMMARY_TYPES, SeriesSummary, SummaryBundle,
                      TopKSummary, merge_summaries, register_summary,
                      summary_copy, summary_jsonable)
from .tree import AggregationNode, TreeSpec, build_tree
from .virtual import (CollectPlane, PlaneStats, TRANSPORTS, VirtualCollector,
                      shard_index)

__all__ = [
    "AggregationNode", "COLLECT_UDP_PORT_BASE", "CollectPlane",
    "CollectorShard", "CounterSummary", "DeltaChannel", "DeltaDecoder",
    "HistogramSummary", "MergeableSummary", "PlaneStats", "SHED_POLICIES",
    "SUMMARY_TYPES", "SeriesSummary", "ShedSpec", "Submission",
    "SummaryBundle", "SummaryDelta", "TRANSPORTS", "TopKSummary", "TreeSpec",
    "VirtualCollector", "build_tree", "delta_wire_bytes", "merge_summaries",
    "register_summary", "shard_index", "summary_copy", "summary_jsonable",
    "summary_wire_bytes",
]
