"""The virtual-IP front door and the sharded collection plane (§4.5).

The paper's deployment model puts the collector tier behind one virtual IP
and load-balances it; this module reproduces that shape:

* :class:`CollectPlane` owns the shard tier (N :class:`CollectorShard`
  services), the transport policy (``"inline"`` direct calls or
  ``"network"`` summary packets over the simulated fabric), the wire
  encoding (cumulative snapshots, or per-source delta channels when
  ``delta=True`` — see :mod:`repro.collect.delta`), the epoch schedule,
  the optional shard → rack → root aggregation tree
  (:mod:`repro.collect.tree`), and the global merge.
* :class:`VirtualCollector` is the per-application front door.  It keeps
  the legacy :class:`repro.endhost.aggregator.Collector` surface —
  ``submit(host, summary, time)``, the ``summaries`` list, ``len()`` — so
  a single-shard inline plane is byte-identical to the unsharded path
  (asserted by the differential tests), while also splitting each summary
  into keyed parts and consistently hashing ``(app, host, key)`` across
  the shards.

Sharding is semantics-preserving because (a) a given (app, host, key)
always lands on the same shard, so last-writer-wins replacement is local
to one shard at any shard count, and (b) the per-key summaries are
commutative monoids (:mod:`repro.collect.summary`), so
:meth:`CollectPlane.merge` reconstructs the identical global view from any
partition — merged results are invariant across shard counts, submission
orders, tree shapes, and wire encodings (tested, and swept by
``benchmarks/bench_collector_scale.py``).

Delta-channel plumbing: the plane owns one sender
:class:`~repro.collect.delta.DeltaChannel` per (app, host, key) source;
shards decode at fold time.  At every epoch tick (and at the final flush)
the plane drains each shard's resync requests — the receiver-driven NACK —
and flags the matching sender channels to emit a cumulative keyframe on
their next push, closing the gap-recovery loop.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from repro.net.packet import (ETHERNET_HEADER_BYTES, IPV4_HEADER_BYTES,
                              UDP_HEADER_BYTES, Packet)

from .delta import DeltaChannel, summary_wire_bytes
from .shard import (COLLECT_UDP_PORT_BASE, _ENVELOPE_BYTES, CollectorShard,
                    ShedSpec, Submission, as_shed_spec)
from .summary import SummaryBundle, _canonical_key, summary_copy
from .tree import AggregationNode, TreeSpec, build_tree

#: Transports the plane understands.
TRANSPORTS = ("inline", "network")


def as_tree_spec(tree: Union[int, TreeSpec, None]) -> Optional[TreeSpec]:
    """Normalise the scenario-facing knob: fan-in, spec, or None (flat)."""
    if tree is None or isinstance(tree, TreeSpec):
        return tree
    if isinstance(tree, bool):              # bool is an int; reject it early
        raise TypeError("tree must be a fan-in, a TreeSpec, or None")
    if isinstance(tree, int):
        return TreeSpec(fanin=tree)
    raise TypeError(f"tree must be a fan-in, a TreeSpec, or None; "
                    f"got {type(tree).__name__}")


def shard_index(app: str, host: str, key: Any, shard_count: int) -> int:
    """Consistent placement of (app, host, key) among ``shard_count`` shards.

    Hashed with blake2b so placement is stable across processes and runs
    (Python's builtin ``hash`` is salted per process and would break run
    determinism).
    """
    token = f"{app}|{host}|{_canonical_key(key)}".encode()
    digest = hashlib.blake2b(token, digest_size=8).digest()
    return int.from_bytes(digest, "big") % shard_count


class VirtualCollector:
    """The per-application face of the plane; drop-in for ``Collector``.

    Submissions are recorded front-door (the legacy ``summaries`` list and
    an optional ``downstream`` collector see exactly what the unsharded
    path would), then split into parts and routed to the shard tier.
    """

    def __init__(self, plane: "CollectPlane", app: str,
                 name: Optional[str] = None,
                 downstream: Optional[Any] = None,
                 retain: bool = True) -> None:
        self.plane = plane
        self.app = app
        self.name = name if name is not None else f"{app}-collector"
        self.downstream = downstream
        # retain=False drops the front-door log (shard state is LWW-bounded
        # either way): under epoch pushes the log would otherwise hold every
        # cumulative snapshot of every host — O(epochs x summary size).
        self.retain = retain
        self.summaries: list[tuple[str, Any]] = []
        self.submission_times: list[float] = []
        self.submitted = 0

    def submit(self, host_name: str, summary: Any, time: float = 0.0) -> None:
        """Receive one summary from a host's aggregator and shard it."""
        if self.retain:
            self.summaries.append((host_name, summary))
            self.submission_times.append(time)
        self.submitted += 1
        if self.downstream is not None:
            self.downstream.submit(host_name, summary, time)
        self.plane.route(self.app, host_name, summary, time)

    def __len__(self) -> int:
        return len(self.summaries)

    # ------------------------------------------------------------------ views
    def merge(self, flush: bool = True) -> dict[Any, Any]:
        """This app's reconstructed global view: key -> merged summary."""
        return {key: summary for (app, key), summary
                in self.plane.merge(flush=flush).items() if app == self.app}

    def merged_summary(self, flush: bool = True) -> Any:
        """The global view as one object: a bundle of keyed parts, or —
        when the app submits unkeyed summaries — the single merged summary."""
        view = self.merge(flush=flush)
        if set(view) == {""}:
            return view[""]
        return SummaryBundle(view)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<VirtualCollector {self.name!r} app={self.app!r} "
                f"submitted={self.submitted} shards={self.plane.shard_count}>")


@dataclass
class PlaneStats:
    """Aggregate accounting across the whole collection plane."""

    summaries_submitted: int = 0
    parts_routed: int = 0
    parts_received: int = 0
    parts_delivered: int = 0
    parts_dropped: int = 0
    flushes: int = 0
    epoch_flushes: int = 0
    batch_flushes: int = 0
    bytes_routed: int = 0
    bytes_received: int = 0
    packets_sent: int = 0
    delta_applied: int = 0
    delta_gaps: int = 0
    delta_resyncs: int = 0
    resync_requests: int = 0
    drops_by_policy: dict = field(default_factory=dict)
    tree_levels: int = 0
    tree_node_merges: int = 0
    per_shard: list[dict] = field(default_factory=list)


class CollectPlane:
    """N collector shards behind one virtual address, plus the reducer.

    Args:
        shard_count: size of the collector tier.
        transport: ``"inline"`` routes submissions as direct calls (no
            simulated traffic — runs stay byte-identical to the unsharded
            path); ``"network"`` ships them as UDP summary packets from the
            submitting host to the shard's host (requires :meth:`attach`).
        epoch_s: flush period.  When attached, every epoch the plane first
            fires its epoch callbacks (the session layer pushes aggregator
            summaries there), then flushes every shard's batch buffer and
            drains delta-resync requests.
        batch / capacity: per-shard batch-fold size and backpressure bound
            (see :class:`~repro.collect.shard.CollectorShard`;
            ``batch=None`` defers folding to epochs/finish, which is the
            configuration where ``capacity`` backpressure actually bites).
        shard_hosts: explicit placement for the network transport; defaults
            to round-robin over the network's hosts in sorted name order.
        retain_submissions: keep the per-app front-door log (``summaries``/
            ``submission_times``).  Disable for long epoch-push runs — the
            log holds every cumulative snapshot, while shard state stays
            bounded by last-writer-wins either way.
        tree: aggregation-tree shape — a fan-in, a
            :class:`~repro.collect.tree.TreeSpec`, or None for the flat
            single-tier merge.  Semantics-free: any shape reconstructs the
            identical global view.
        shed: backpressure policy — a policy name, a
            :class:`~repro.collect.shard.ShedSpec`, or None for the
            default tail-drop.
        delta: encode submissions as per-source delta channels instead of
            cumulative snapshots (exact — see :mod:`repro.collect.delta`).
        delta_resync_every: sender keyframe interval backstop (0 disables;
            receiver-driven resyncs happen regardless).
    """

    def __init__(self, shard_count: int = 1, *, transport: str = "inline",
                 epoch_s: Optional[float] = None, batch: Optional[int] = 64,
                 capacity: int = 4096,
                 shard_hosts: Optional[list[str]] = None,
                 retain_submissions: bool = True,
                 tree: Union[int, TreeSpec, None] = None,
                 shed: Union[str, ShedSpec, None] = None,
                 delta: bool = False,
                 delta_resync_every: int = 0) -> None:
        if shard_count < 1:
            raise ValueError("the collector tier needs at least one shard")
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}; "
                             f"choose from {TRANSPORTS}")
        if epoch_s is not None and epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        if delta_resync_every < 0:
            raise ValueError("delta_resync_every must be >= 0")
        self.shard_count = shard_count
        self.transport = transport
        self.epoch_s = epoch_s
        self.retain_submissions = retain_submissions
        self.shard_hosts = list(shard_hosts) if shard_hosts is not None else None
        self.shed = as_shed_spec(shed)
        self.shards = [CollectorShard(index, batch=batch, capacity=capacity,
                                      shed=self.shed)
                       for index in range(shard_count)]
        self.tree_spec = as_tree_spec(tree)
        self.tree_root: Optional[AggregationNode] = None
        self.tree_nodes: list[AggregationNode] = []
        if self.tree_spec is not None:
            self.tree_root, self.tree_nodes = build_tree(
                self.shards, self.tree_spec.fanin)
        self.delta = delta
        self.delta_resync_every = delta_resync_every
        self._channels: dict[tuple, DeltaChannel] = {}
        self.resync_requests = 0
        self.bytes_routed = 0
        self.front_doors: dict[str, VirtualCollector] = {}
        self._seq = 0
        self._sim = None
        self._network = None
        self._epoch_callbacks: list[Callable[[float], None]] = []
        self._epoch_process = None
        self.packets_sent = 0

    # ------------------------------------------------------------- provisioning
    def front_door(self, app: str, name: Optional[str] = None,
                   downstream: Optional[Any] = None) -> VirtualCollector:
        """Create (once) the virtual collector for one application."""
        if app in self.front_doors:
            raise ValueError(f"application {app!r} already has a front door")
        door = VirtualCollector(self, app, name=name, downstream=downstream,
                                retain=self.retain_submissions)
        self.front_doors[app] = door
        return door

    def attach(self, sim, network) -> None:
        """Bind the tier to a simulated network and start the epoch clock.

        Shards are placed round-robin over the hosts (sorted by name, or
        ``shard_hosts`` verbatim) and listen on consecutive UDP ports from
        ``COLLECT_UDP_PORT_BASE``, so shards sharing a host stay distinct.
        """
        self._sim = sim
        self._network = network
        host_names = self.shard_hosts if self.shard_hosts is not None \
            else sorted(network.hosts)
        if not host_names:
            raise ValueError("cannot attach a collector tier to a hostless network")
        for shard in self.shards:
            host = network.hosts[host_names[shard.index % len(host_names)]]
            shard.attach(sim, host, COLLECT_UDP_PORT_BASE + shard.index,
                         epoch_s=self.epoch_s)
        if self.epoch_s is not None:
            self._epoch_process = sim.schedule_periodic(self.epoch_s,
                                                        self._epoch_tick)

    def on_epoch(self, callback: Callable[[float], None]) -> None:
        """Run ``callback(now)`` at every epoch, before the shard flushes."""
        self._epoch_callbacks.append(callback)

    def _epoch_tick(self) -> None:
        now = self._sim.now
        for callback in self._epoch_callbacks:
            callback(now)
        # Shards with their own epoch process flush themselves; this extra
        # pass only matters for submissions the callbacks just produced.
        for shard in self.shards:
            if shard.pending:
                shard.flush(kind="epoch")
        if self.delta:
            self._poll_resyncs()

    def _poll_resyncs(self) -> None:
        """Drain shard NACKs and flag sender channels for keyframes."""
        for shard in self.shards:
            for group in shard.take_resync_requests():
                self.resync_requests += 1
                channel = self._channels.get(group)
                if channel is not None:
                    channel.needs_full = True

    # ---------------------------------------------------------------- routing
    def route(self, app: str, host: str, summary: Any, time: float) -> int:
        """Split a summary into keyed parts and deliver them to shards.

        With ``delta=True`` each part is passed through its source's delta
        channel first, so what travels (and what the shard buffers) is a
        :class:`~repro.collect.delta.SummaryDelta` unit rather than the
        cumulative snapshot.
        """
        if isinstance(summary, SummaryBundle):
            parts = [(key, part) for key, part in summary.items()]
        else:
            parts = [("", summary)]
        per_shard: dict[int, list[Submission]] = {}
        for key, part in parts:
            seq = self._seq
            self._seq += 1
            if self.delta:
                group = (app, host, key)
                channel = self._channels.get(group)
                if channel is None:
                    channel = self._channels[group] = DeltaChannel(
                        self.delta_resync_every)
                part = channel.encode(part)
            submission = Submission(time=time, seq=seq, app=app, host=host,
                                    key=key, summary=part)
            self.bytes_routed += _ENVELOPE_BYTES + summary_wire_bytes(part)
            index = shard_index(app, host, key, self.shard_count)
            per_shard.setdefault(index, []).append(submission)
        if self.transport == "inline":
            for index, submissions in sorted(per_shard.items()):
                shard = self.shards[index]
                for submission in submissions:
                    shard.ingest(submission)
        else:
            self._send_summary_packets(host, per_shard)
        return len(parts)

    def _send_summary_packets(self, host: str,
                              per_shard: dict[int, list[Submission]]) -> None:
        """Network transport: one UDP summary packet per target shard."""
        if self._network is None:
            raise RuntimeError("the network transport needs CollectPlane.attach"
                               "(sim, network) before submissions are routed")
        sender = self._network.hosts[host]
        for index, submissions in sorted(per_shard.items()):
            shard = self.shards[index]
            if shard.host_name == host:
                # Loopback: a summary for a shard on the submitting host
                # never touches the wire.
                for submission in submissions:
                    shard.ingest(submission)
                continue
            payload_bytes = sum(_ENVELOPE_BYTES + summary_wire_bytes(s.summary)
                                for s in submissions)
            size = (ETHERNET_HEADER_BYTES + IPV4_HEADER_BYTES
                    + UDP_HEADER_BYTES + payload_bytes)
            packet = Packet(src=host, dst=shard.host_name, size=size,
                            protocol="udp", sport=shard.port, dport=shard.port,
                            created_at=self._sim.now if self._sim else 0.0)
            packet.payload = {"collect_submissions": list(submissions)}
            self.packets_sent += 1
            sender.send(packet)

    # ----------------------------------------------------------------- reduce
    def flush_all(self, kind: str = "final") -> None:
        """Fold every shard's pending buffer into its state."""
        for shard in self.shards:
            if shard.pending:
                shard.flush(kind=kind)
        if self.delta:
            self._poll_resyncs()

    def merge(self, flush: bool = True) -> dict[tuple, Any]:
        """The reconstructed global view: (app, key) -> merged summary.

        Flat mode folds shard-partial views in one pass; with an
        aggregation tree the same fold runs through the shard → rack →
        root reduction instead.  Either way the result is independent of
        shard count, iteration order, submission order, wire encoding,
        and tree shape — every per-key summary is a commutative monoid
        and each (app, host, key) lives on exactly one shard (asserted in
        tests and by the scaling benchmark).
        """
        if flush:
            self.flush_all()
        if self.tree_root is not None:
            merged = self.tree_root.merged_view()
        else:
            merged = {}
            for shard in self.shards:
                for target, summary in shard.merged_view().items():
                    if target in merged:
                        merged[target].merge(summary)
                    else:
                        merged[target] = summary_copy(summary)
        return {target: merged[target] for target
                in sorted(merged, key=lambda t: (t[0], _canonical_key(t[1])))}

    # ------------------------------------------------------------- accounting
    def stats(self) -> PlaneStats:
        stats = PlaneStats()
        stats.summaries_submitted = sum(d.submitted for d in self.front_doors.values())
        stats.parts_routed = self._seq
        stats.packets_sent = self.packets_sent
        stats.bytes_routed = self.bytes_routed
        stats.resync_requests = self.resync_requests
        stats.tree_levels = self.tree_root.level if self.tree_root else 0
        stats.tree_node_merges = sum(n.merges for n in self.tree_nodes)
        for shard in self.shards:
            stats.parts_received += shard.received
            stats.parts_delivered += shard.delivered
            stats.parts_dropped += shard.dropped
            stats.flushes += shard.flushes
            stats.epoch_flushes += shard.epoch_flushes
            stats.batch_flushes += shard.batch_flushes
            stats.bytes_received += shard.bytes_received
            stats.delta_applied += shard.decoder.applied
            stats.delta_gaps += shard.decoder.gaps
            stats.delta_resyncs += shard.decoder.resyncs
            for reason, count in shard.drops_by_policy.items():
                stats.drops_by_policy[reason] = \
                    stats.drops_by_policy.get(reason, 0) + count
            stats.per_shard.append({
                "shard": shard.name, "host": shard.host_name,
                "submitted": shard.submitted, "received": shard.received,
                "delivered": shard.delivered, "dropped": shard.dropped,
                "drops_by_policy": dict(shard.drops_by_policy),
                "flushes": shard.flushes, "state_groups": len(shard.state),
                "bytes_received": shard.bytes_received,
            })
        return stats

    def stop(self) -> None:
        """Stop every periodic process the plane owns (idempotent)."""
        if self._epoch_process is not None:
            self._epoch_process.stop()
            self._epoch_process = None
        for shard in self.shards:
            shard.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CollectPlane shards={self.shard_count} "
                f"transport={self.transport!r} epoch_s={self.epoch_s} "
                f"apps={sorted(self.front_doors)}>")
