"""Aggregation trees: shard → rack → root reduction over the same monoids.

The flat :meth:`~repro.collect.virtual.CollectPlane.merge` folds every
shard's partial view in one tier, so the root's merge cost is linear in
shard count.  At production scale the §4.5 collector tier reduces
hierarchically — shards fold into rack aggregators, racks into a root —
and because every per-key summary is a commutative monoid, the tree shape
is *semantics-free*: any fan-in, any depth, any grouping reconstructs the
identical global view (the generated commutativity suite proves the
algebra; the plane's differential tests pin flat vs tree byte-identity).

* :class:`TreeSpec` — the declarative knob (`Scenario.collector(tree=...)`,
  sweepable as ``collector.tree.fanin``): fan-in per aggregation node.
* :class:`AggregationNode` — one interior node; ``merged_view()`` folds its
  children's views key-wise and counts the part-merges it performed.
* :func:`build_tree` — groups leaves (collector shards) into nodes of at
  most ``fanin`` children, level by level, until a single root remains.

Nodes take ownership of child views: a shard's ``merged_view()`` already
returns fresh copies, and an interior node's result is built fresh per
call, so folding in place never mutates retained shard state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

__all__ = ["AggregationNode", "TreeSpec", "build_tree"]


@dataclass(frozen=True)
class TreeSpec:
    """Shape of the aggregation tree: fan-in per interior node."""

    fanin: int = 4

    def __post_init__(self) -> None:
        if self.fanin < 2:
            raise ValueError("aggregation-tree fan-in must be >= 2")


class AggregationNode:
    """One interior node: fold the children's merged views key-wise.

    Children are anything with a ``merged_view() -> dict[tuple, summary]``
    — collector shards at the leaves, other nodes above them.
    """

    def __init__(self, name: str, children: Sequence[Any]) -> None:
        if not children:
            raise ValueError("an aggregation node needs at least one child")
        self.name = name
        self.children = list(children)
        self.level = 0                      # set by build_tree (1 = rack tier)
        self.merges = 0                     # part-merge operations performed
        self.folds = 0                      # merged_view() calls served

    def merged_view(self) -> dict[tuple, Any]:
        """This subtree's partial global view: (app, key) -> merged summary."""
        self.folds += 1
        merged: dict[tuple, Any] = {}
        for child in self.children:
            for target, summary in child.merged_view().items():
                if target in merged:
                    merged[target].merge(summary)
                    self.merges += 1
                else:
                    merged[target] = summary
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<AggregationNode {self.name} children={len(self.children)} "
                f"merges={self.merges}>")


def build_tree(leaves: Sequence[Any], fanin: int) -> tuple[AggregationNode, list[AggregationNode]]:
    """Build the reduction tree over ``leaves``; (root, all interior nodes).

    Leaves are grouped ``fanin`` at a time in index order, level by level,
    until one root remains — so merge cost per node is bounded by the
    fan-in and tree depth is logarithmic in leaf count.  A single leaf
    still gets a root node, keeping the plane's merge path uniform.
    """
    if fanin < 2:
        raise ValueError("aggregation-tree fan-in must be >= 2")
    if not leaves:
        raise ValueError("cannot build an aggregation tree over zero leaves")
    nodes: list[AggregationNode] = []
    level_members: list[Any] = list(leaves)
    level = 0
    while len(level_members) > 1 or level == 0:
        level += 1
        grouped = [AggregationNode(f"agg-L{level}.{index // fanin}",
                                   level_members[index:index + fanin])
                   for index in range(0, len(level_members), fanin)]
        for node in grouped:
            node.level = level
        nodes.extend(grouped)
        level_members = grouped
        if len(level_members) == 1:
            break
    return level_members[0], nodes
