"""Mergeable summaries: the monoids the collection plane ships around (§4.5).

The paper's deployment model works *because* the per-host aggregation
operators commute: "the aggregation operator is commutative and
associative, so the collector tier can be sharded freely".  This module
makes that property a first-class protocol instead of a comment.  A
:class:`MergeableSummary` is a commutative monoid element:

* ``merge(other)`` folds another summary of the same shape into this one,
* ``copy()`` produces an independent clone (so folding never mutates the
  submitted original), and
* ``as_dict()`` renders a canonical, JSON-able view (sorted keys, stable
  ordering) used by benchmarks and tests to compare merged results
  byte-for-byte across shard counts.

Concrete monoids:

* :class:`CounterSummary` — named counters; merge adds.
* :class:`HistogramSummary` — fixed-edge value histogram; merge adds bins.
* :class:`TopKSummary` — exact per-key counts with a top-k *view*; merge
  adds counts (k bounds the report, not the state, so merging stays a true
  monoid — a capped space-saving sketch would be order-dependent).
* :class:`SeriesSummary` — a multiset of ``(time, key, value)`` samples
  kept in canonical order; merge is multiset union.
* :class:`SummaryBundle` — a keyed product of the above (and of any foreign
  object with a commutative ``merge``, e.g.
  :class:`repro.apps.sketches.BitmapSketch`); merge is key-wise.

Anything with a commutative ``merge(other)`` participates;
:func:`merge_summaries` / :func:`summary_copy` adapt foreign objects by
deep-copying when they lack ``copy()``.

A caveat on *bit*-identity: the monoid laws hold exactly over integers
(which is what every shipped aggregator emits — packet, sample, and
truncation counts).  Float-valued counters/histogram totals are still
commutative monoids mathematically, but IEEE-754 addition is not
associative, so different shard partitions may disagree in the last ulp.
If you need canonical merged views over float summaries, quantise on
observation (e.g. round to a fixed decimal) or carry the addends in a
:class:`SeriesSummary` and reduce at the end.

Delta encoding (:mod:`repro.collect.delta`) adds a second pair of verbs to
every registered monoid: ``current.diff(prev)`` renders the change between
two snapshots of the same source as a compact payload, and
``state.apply_delta(payload)`` replays it.  Diffs carry *absolute* new
values for the entries that changed (never arithmetic differences), so
``apply(diff(a, b)) == b`` holds exactly — floats included — and a delta
stream reconstructs the cumulative snapshot byte-identically.  A type that
cannot express a particular transition (e.g. a series that lost samples)
raises ``ValueError`` from ``diff`` and the channel falls back to a full
cumulative re-send.

Every concrete monoid registers itself in :data:`SUMMARY_TYPES` via
:func:`register_summary`; the Commuter-style generated test suite
(``tools/gen_merge_cases.py`` + ``tests/test_merge_commuter.py``)
enumerates this registry and machine-checks the algebra for every member.
"""

from __future__ import annotations

import copy as _copy
from bisect import bisect_left
from collections import Counter as _Counter
from fractions import Fraction
from typing import Any, Iterable, Iterator, Optional, Protocol, runtime_checkable

#: Registry of concrete mergeable-summary types, by class name.  The
#: generated commutativity suite enumerates this to prove the algebra for
#: every type the collect plane can ship — adding a type here opts it into
#: the machine-checked monoid/delta laws.
SUMMARY_TYPES: dict[str, type] = {}


def register_summary(cls: type) -> type:
    """Class decorator: record a concrete summary type in the registry."""
    SUMMARY_TYPES[cls.__name__] = cls
    return cls


@runtime_checkable
class MergeableSummary(Protocol):
    """Structural protocol for commutative, shardable summaries."""

    def merge(self, other: Any) -> None:
        """Fold ``other`` (same shape) into this summary, in place."""
        ...

    def copy(self) -> "MergeableSummary":
        """An independent clone; merging into the clone leaves self alone."""
        ...

    def as_dict(self) -> dict:
        """A canonical JSON-able rendering (sorted keys, stable order)."""
        ...


def summary_copy(summary: Any) -> Any:
    """Clone a summary: its own ``copy()`` when it has one, deepcopy otherwise.

    The deepcopy fallback adapts foreign mergeables (e.g. ``BitmapSketch``)
    that expose ``merge`` but no explicit clone.
    """
    copier = getattr(summary, "copy", None)
    if callable(copier):
        return copier()
    return _copy.deepcopy(summary)


def merge_summaries(left: Any, right: Any) -> Any:
    """``left ⊕ right`` as a fresh object; neither argument is mutated."""
    merged = summary_copy(left)
    merged.merge(right)
    return merged


def summary_jsonable(summary: Any) -> Any:
    """A deterministic JSON-able view of any summary (canonical for ours)."""
    renderer = getattr(summary, "as_dict", None)
    if callable(renderer):
        return renderer()
    return {"type": type(summary).__name__, "repr": repr(summary)}


def _canonical_key(key: Any) -> str:
    """A total order over arbitrary hashable keys (str for str, repr else)."""
    return key if isinstance(key, str) else repr(key)


@register_summary
class CounterSummary:
    """Named counters; ``merge`` adds count-wise.  Mapping-like for reads."""

    __slots__ = ("counts",)

    def __init__(self, counts: Optional[dict[str, float]] = None) -> None:
        self.counts: dict[str, float] = dict(counts) if counts else {}

    def add(self, name: str, amount: float = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + amount

    def merge(self, other: "CounterSummary") -> None:
        mine = self.counts
        for name, amount in other.counts.items():
            mine[name] = mine.get(name, 0) + amount

    def copy(self) -> "CounterSummary":
        return CounterSummary(self.counts)

    def diff(self, prev: "CounterSummary") -> dict:
        """The change from ``prev`` to this snapshot, as absolute values."""
        if not isinstance(prev, CounterSummary):
            raise ValueError("counter diffs need a CounterSummary base")
        changed = {name: value for name, value in self.counts.items()
                   if prev.counts.get(name) != value}
        removed = [name for name in prev.counts if name not in self.counts]
        return {"op": "counter", "set": changed, "drop": removed}

    def apply_delta(self, payload: dict) -> None:
        self.counts.update(payload["set"])
        for name in payload["drop"]:
            self.counts.pop(name, None)

    def total(self) -> float:
        return sum(self.counts.values())

    def as_dict(self) -> dict:
        return {"type": "counter",
                "counts": {name: self.counts[name] for name in sorted(self.counts)}}

    # Mapping-style reads so legacy code (and tests) can index summaries.
    def __getitem__(self, name: str) -> float:
        return self.counts[name]

    def get(self, name: str, default: float = 0) -> float:
        return self.counts.get(name, default)

    def keys(self):
        return self.counts.keys()

    def __contains__(self, name: str) -> bool:
        return name in self.counts

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CounterSummary) and self.counts == other.counts

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={self.counts[name]:g}" for name in sorted(self.counts))
        return f"CounterSummary({inner})"


@register_summary
class HistogramSummary:
    """A fixed-edge histogram; ``merge`` adds per-bin counts.

    ``edges`` are the (sorted) upper-inclusive boundaries: a value lands in
    the first bin whose edge is >= value, or the overflow bin past the last
    edge.  Two histograms merge only when their edges are identical.

    The value total is accumulated as an exact rational
    (:class:`fractions.Fraction` represents every float exactly), not a
    float: float addition is not associative, so a float accumulator would
    make merge results depend on fold shape — flat vs tree merges could
    differ in the last ulp, breaking the byte-identity invariant.  The
    generated commutativity suite (``tools/gen_merge_cases.py``) caught
    exactly that.  ``total`` reads back as the nearest float.
    """

    __slots__ = ("edges", "bins", "count", "_total")

    def __init__(self, edges: Iterable[float],
                 bins: Optional[list[int]] = None,
                 count: int = 0, total: float = 0.0) -> None:
        self.edges: tuple[float, ...] = tuple(edges)
        if not self.edges or list(self.edges) != sorted(self.edges):
            raise ValueError("histogram edges must be non-empty and sorted")
        self.bins: list[int] = list(bins) if bins is not None \
            else [0] * (len(self.edges) + 1)
        if len(self.bins) != len(self.edges) + 1:
            raise ValueError("histogram needs len(edges)+1 bins (one overflow)")
        self.count = count
        self._total = Fraction(total)

    @property
    def total(self) -> float:
        return float(self._total)

    def observe(self, value: float, n: int = 1) -> None:
        self.bins[bisect_left(self.edges, value)] += n
        self.count += n
        self._total += Fraction(value) * n

    def merge(self, other: "HistogramSummary") -> None:
        if other.edges != self.edges:
            raise ValueError("can only merge histograms with identical edges")
        for index, n in enumerate(other.bins):
            self.bins[index] += n
        self.count += other.count
        self._total += other._total

    def copy(self) -> "HistogramSummary":
        clone = HistogramSummary(self.edges, bins=self.bins, count=self.count)
        clone._total = self._total
        return clone

    def diff(self, prev: "HistogramSummary") -> dict:
        """Changed bins (by index, absolute value) plus count/total."""
        if not isinstance(prev, HistogramSummary) or prev.edges != self.edges:
            raise ValueError("histogram diffs need an identical-edge base")
        changed = {index: n for index, n in enumerate(self.bins)
                   if prev.bins[index] != n}
        return {"op": "histogram", "bins": changed,
                "count": self.count, "total": self._total}

    def apply_delta(self, payload: dict) -> None:
        for index, n in payload["bins"].items():
            self.bins[index] = n
        self.count = payload["count"]
        self._total = Fraction(payload["total"])

    def mean(self) -> float:
        return float(self._total / self.count) if self.count else 0.0

    def as_dict(self) -> dict:
        return {"type": "histogram", "edges": list(self.edges),
                "bins": list(self.bins), "count": self.count, "total": self.total}

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, HistogramSummary) and self.edges == other.edges
                and self.bins == other.bins and self.count == other.count
                and self._total == other._total)

    def __repr__(self) -> str:
        return f"HistogramSummary(edges={self.edges}, count={self.count})"


@register_summary
class TopKSummary:
    """Exact per-key counts with a bounded top-k *report*.

    The state is the full (exact) count map, so ``merge`` is plain addition
    and the monoid laws hold; ``k`` only bounds what :meth:`top` renders.
    (A capacity-capped heavy-hitter sketch would make merged results depend
    on arrival order — exactly what the collection plane must avoid.)
    """

    __slots__ = ("k", "counts")

    def __init__(self, k: int = 10, counts: Optional[dict[Any, int]] = None) -> None:
        if k < 1:
            raise ValueError("top-k needs k >= 1")
        self.k = k
        self.counts: dict[Any, int] = dict(counts) if counts else {}

    def observe(self, key: Any, n: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + n

    def merge(self, other: "TopKSummary") -> None:
        mine = self.counts
        for key, n in other.counts.items():
            mine[key] = mine.get(key, 0) + n
        self.k = max(self.k, other.k)

    def copy(self) -> "TopKSummary":
        return TopKSummary(self.k, self.counts)

    def diff(self, prev: "TopKSummary") -> dict:
        """Changed keys (absolute new counts) plus the report bound."""
        if not isinstance(prev, TopKSummary):
            raise ValueError("top-k diffs need a TopKSummary base")
        changed = {key: n for key, n in self.counts.items()
                   if prev.counts.get(key) != n}
        removed = [key for key in prev.counts if key not in self.counts]
        return {"op": "top-k", "set": changed, "drop": removed, "k": self.k}

    def apply_delta(self, payload: dict) -> None:
        self.counts.update(payload["set"])
        for key in payload["drop"]:
            self.counts.pop(key, None)
        self.k = payload["k"]

    def top(self, k: Optional[int] = None) -> list[tuple[Any, int]]:
        """The k heaviest keys, count-descending, key-ascending on ties."""
        ordered = sorted(self.counts.items(),
                         key=lambda item: (-item[1], _canonical_key(item[0])))
        return ordered[:k if k is not None else self.k]

    def as_dict(self) -> dict:
        return {"type": "top-k", "k": self.k,
                "top": [[_canonical_key(key), n] for key, n in self.top()],
                "distinct_keys": len(self.counts)}

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TopKSummary) and self.k == other.k
                and self.counts == other.counts)

    def __repr__(self) -> str:
        return f"TopKSummary(k={self.k}, distinct={len(self.counts)})"


@register_summary
class SeriesSummary:
    """A multiset of ``(time, key, value)`` samples in canonical order.

    ``merge`` is multiset union followed by a canonical re-sort on
    ``(time, key, value)``, so any merge order (and any sharding of the
    sources) lands on the identical sample sequence.
    """

    __slots__ = ("samples",)

    def __init__(self, samples: Optional[Iterable[tuple]] = None) -> None:
        self.samples: list[tuple] = sorted(samples, key=self._sort_key) \
            if samples else []

    @staticmethod
    def _sort_key(sample: tuple) -> tuple:
        time, key, value = sample
        return (time, _canonical_key(key), value)

    def add(self, time: float, key: Any, value: float) -> None:
        self.samples.append((time, key, value))
        # Keep canonical order without a full re-sort on in-order appends.
        if len(self.samples) > 1 and \
                self._sort_key(self.samples[-2]) > self._sort_key(self.samples[-1]):
            self.samples.sort(key=self._sort_key)

    def merge(self, other: "SeriesSummary") -> None:
        self.samples.extend(other.samples)
        self.samples.sort(key=self._sort_key)

    def copy(self) -> "SeriesSummary":
        clone = SeriesSummary()
        clone.samples = list(self.samples)
        return clone

    def diff(self, prev: "SeriesSummary") -> dict:
        """The samples appended since ``prev`` (a multiset difference).

        Series only ever grow under observation and merge; a base that is
        *not* a multiset subset of this snapshot cannot be expressed as an
        append-only delta and raises ``ValueError`` (the channel then falls
        back to a cumulative re-send).
        """
        if not isinstance(prev, SeriesSummary):
            raise ValueError("series diffs need a SeriesSummary base")
        added = _Counter(self.samples)
        added.subtract(prev.samples)
        if any(n < 0 for n in added.values()):
            raise ValueError("series base is not a subset; cumulative resend "
                             "required")
        samples = [sample for sample, n in added.items() for _ in range(n)]
        samples.sort(key=self._sort_key)
        return {"op": "series", "add": samples}

    def apply_delta(self, payload: dict) -> None:
        self.samples.extend(payload["add"])
        self.samples.sort(key=self._sort_key)

    def series(self, key: Any) -> list[tuple[float, float]]:
        """The (time, value) points recorded for one key, in time order."""
        return [(t, v) for t, k, v in self.samples if k == key]

    def keys(self) -> list[Any]:
        seen = {k: None for _, k, _ in self.samples}        # ordered de-dup
        return sorted(seen, key=_canonical_key)

    def __len__(self) -> int:
        return len(self.samples)

    def as_dict(self) -> dict:
        return {"type": "series",
                "samples": [[t, _canonical_key(k), v] for t, k, v in self.samples]}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SeriesSummary) and self.samples == other.samples

    def __repr__(self) -> str:
        return f"SeriesSummary({len(self.samples)} samples, {len(self.keys())} keys)"


@register_summary
class SummaryBundle:
    """A keyed product of mergeable parts; ``merge`` is key-wise.

    Parts may be any of the monoids above or any foreign object with a
    commutative ``merge`` (bitmap sketches OR-merge, for instance).  Keys
    absent on one side are cloned from the other, so the empty bundle is
    the identity element.
    """

    __slots__ = ("parts",)

    def __init__(self, parts: Optional[dict[Any, Any]] = None) -> None:
        self.parts: dict[Any, Any] = dict(parts) if parts else {}

    def merge(self, other: "SummaryBundle") -> None:
        mine = self.parts
        for key, part in other.parts.items():
            if key in mine:
                mine[key].merge(part)
            else:
                mine[key] = summary_copy(part)

    def copy(self) -> "SummaryBundle":
        return SummaryBundle({key: summary_copy(part)
                              for key, part in self.parts.items()})

    def diff(self, prev: "SummaryBundle") -> dict:
        """Key-wise delta: unchanged parts vanish, changed parts diff
        recursively, parts without a usable ``diff`` ship as full copies."""
        if not isinstance(prev, SummaryBundle):
            raise ValueError("bundle diffs need a SummaryBundle base")
        set_parts: dict[Any, Any] = {}
        delta_parts: dict[Any, Any] = {}
        for key, part in self.parts.items():
            prev_part = prev.parts.get(key)
            if prev_part is not None and type(prev_part) is type(part):
                try:
                    if prev_part == part:
                        continue
                except Exception:
                    pass                      # no usable equality: ship full
                differ = getattr(part, "diff", None)
                if callable(differ):
                    try:
                        delta_parts[key] = differ(prev_part)
                        continue
                    except ValueError:
                        pass                  # inexpressible: ship full
            set_parts[key] = summary_copy(part)
        removed = [key for key in prev.parts if key not in self.parts]
        return {"op": "bundle", "set": set_parts, "delta": delta_parts,
                "drop": removed}

    def apply_delta(self, payload: dict) -> None:
        for key, part in payload["set"].items():
            self.parts[key] = summary_copy(part)
        for key, sub in payload["delta"].items():
            self.parts[key].apply_delta(sub)
        for key in payload["drop"]:
            self.parts.pop(key, None)

    def items(self) -> Iterator[tuple[Any, Any]]:
        return iter(self.parts.items())

    def keys(self):
        return self.parts.keys()

    def __getitem__(self, key: Any) -> Any:
        return self.parts[key]

    def get(self, key: Any, default: Any = None) -> Any:
        return self.parts.get(key, default)

    def __contains__(self, key: Any) -> bool:
        return key in self.parts

    def __len__(self) -> int:
        return len(self.parts)

    def as_dict(self) -> dict:
        return {"type": "bundle",
                "parts": {_canonical_key(key): summary_jsonable(self.parts[key])
                          for key in sorted(self.parts, key=_canonical_key)}}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SummaryBundle) and self.parts == other.parts

    def __repr__(self) -> str:
        return f"SummaryBundle({sorted(map(_canonical_key, self.parts))})"
