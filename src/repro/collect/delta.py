"""Delta encoding for the collection plane: epoch diffs instead of re-sends.

The §4.5 collector tier receives *cumulative* snapshots: every push, every
host re-ships its entire summary, so bytes on the wire scale with state
size rather than with change.  This module adds the production wire
format: a per-source **delta channel** that ships only what changed since
the previous push, with sequence numbers and a cumulative-resync fallback
when the receiver detects a gap.

* :class:`SummaryDelta` — one wire unit: either a ``"full"`` cumulative
  snapshot (a keyframe) or a ``"delta"`` payload produced by the summary
  type's ``diff(prev)`` (see :mod:`repro.collect.summary`).  Every unit
  carries the channel sequence number it produces and the sequence it
  applies on top of.
* :class:`DeltaChannel` — the sender side, one per (app, host, key)
  source.  ``encode(current)`` snapshots the summary, emits a delta
  against the previous snapshot (or a full keyframe on first send, on
  request, every ``resync_every`` sends, and whenever the type cannot
  express the transition), and advances the channel sequence.
* :class:`DeltaDecoder` — the receiver side, shared by one
  :class:`~repro.collect.shard.CollectorShard`.  ``decode`` replays units
  in sequence order onto per-channel reconstructed state; a unit whose
  ``base_seq`` does not match the channel head is a **gap** (a dropped or
  reordered predecessor): the unit is discarded, counted, and the channel
  queued for resync.  The plane polls :meth:`DeltaDecoder.take_resyncs`
  at epoch boundaries — modelling the receiver-driven NACK — and flags
  the matching sender channels to emit a cumulative keyframe next push.

Exactness contract: diffs carry **absolute new values** for changed
entries, never arithmetic differences, so replaying a gap-free delta
stream reconstructs the cumulative snapshot *byte-identically* — floats
included, since no addition is performed on apply.  This is what lets the
differential tests pin delta mode to cumulative mode exactly.

Wire-size accounting (:func:`summary_wire_bytes` /
:func:`delta_wire_bytes`) uses the same per-entry heuristics for both
encodings, so the delta-vs-cumulative byte comparison in benchmarks and
tests measures the encoding, not a unit mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .summary import summary_copy

#: Fixed per-submission envelope estimate (addresses, app id, key, time).
ENVELOPE_BYTES = 32

#: Per-delta-unit header estimate (kind, seq, base_seq).
DELTA_HEADER_BYTES = 8


# --------------------------------------------------------------------------
# Wire-size heuristics
# --------------------------------------------------------------------------
def summary_wire_bytes(summary: Any) -> int:
    """Rough on-wire size of one summary payload, for packet sizing.

    Heuristic by shape: counters cost ~12 B/entry, histogram bins 8 B,
    top-k entries 16 B, series samples 12 B, bitmap sketches their bitmap;
    bundles sum their parts.  Delta units charge their changed entries
    plus a small header.  Unknown shapes charge a flat 64 B.
    """
    if isinstance(summary, SummaryDelta):
        return delta_wire_bytes(summary)
    parts = getattr(summary, "parts", None)
    if parts is not None:
        return sum(summary_wire_bytes(part) for part in parts.values())
    counts = getattr(summary, "counts", None)
    if counts is not None:
        return 12 * max(1, len(counts))
    bins = getattr(summary, "bins", None)
    if bins is not None:
        return 8 * len(bins)
    samples = getattr(summary, "samples", None)
    if samples is not None:
        return 12 * max(1, len(samples))
    memory = getattr(summary, "memory_bytes", None)
    if callable(memory):
        return int(memory())
    return 64


def _delta_payload_bytes(payload: Any) -> int:
    """Size of one ``diff`` payload: changed entries only."""
    if not isinstance(payload, dict):
        return 64
    total = 0
    for key, part in payload.get("set", {}).items():
        if isinstance(part, (int, float)):
            total += 12
        else:
            total += 8 + summary_wire_bytes(part)
    total += 8 * len(payload.get("drop", ()))
    total += 12 * len(payload.get("bins", ()))
    if "count" in payload:
        total += 16                         # absolute count + total
    if "k" in payload:
        total += 4
    total += 12 * len(payload.get("add", ()))
    for sub in payload.get("delta", {}).values():
        total += 8 + _delta_payload_bytes(sub)
    return total


def delta_wire_bytes(delta: "SummaryDelta") -> int:
    """On-wire size of one delta unit (header + payload)."""
    if delta.kind == "full":
        return DELTA_HEADER_BYTES + summary_wire_bytes(delta.payload)
    return DELTA_HEADER_BYTES + _delta_payload_bytes(delta.payload)


# --------------------------------------------------------------------------
# The wire unit
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class SummaryDelta:
    """One unit on a delta channel: a keyframe or an epoch diff.

    ``seq`` is the channel sequence this unit produces; ``base_seq`` is the
    sequence it applies on top of (``-1`` for full keyframes, which apply
    anywhere).
    """

    kind: str                   # "full" | "delta"
    seq: int
    base_seq: int
    payload: Any                # full summary copy, or a diff() payload


# --------------------------------------------------------------------------
# Sender side
# --------------------------------------------------------------------------
class DeltaChannel:
    """Per-source encoder state: previous snapshot + sequence counter."""

    __slots__ = ("seq", "prev", "needs_full", "resync_every",
                 "fulls_sent", "deltas_sent")

    def __init__(self, resync_every: int = 0) -> None:
        self.seq = 0
        self.prev: Optional[Any] = None
        self.needs_full = True              # first send is always a keyframe
        self.resync_every = resync_every
        self.fulls_sent = 0
        self.deltas_sent = 0

    def encode(self, current: Any) -> SummaryDelta:
        """Snapshot ``current`` and emit the next unit for this channel."""
        snapshot = summary_copy(current)
        self.seq += 1
        unit = None
        if not self.needs_full and not (
                self.resync_every and self.seq % self.resync_every == 0):
            differ = getattr(snapshot, "diff", None)
            if callable(differ):
                try:
                    payload = differ(self.prev)
                    unit = SummaryDelta("delta", self.seq, self.seq - 1, payload)
                except ValueError:
                    unit = None             # inexpressible: fall back to full
        if unit is None:
            unit = SummaryDelta("full", self.seq, -1, snapshot)
            self.fulls_sent += 1
        else:
            self.deltas_sent += 1
        self.needs_full = False
        self.prev = snapshot
        return unit


# --------------------------------------------------------------------------
# Receiver side
# --------------------------------------------------------------------------
class _ChannelState:
    __slots__ = ("seq", "state")

    def __init__(self) -> None:
        self.seq = -1
        self.state: Optional[Any] = None


class DeltaDecoder:
    """Shard-side replay: per-channel reconstructed cumulative state."""

    def __init__(self) -> None:
        self.channels: dict[tuple, _ChannelState] = {}
        self.applied = 0                    # deltas replayed in sequence
        self.gaps = 0                       # units discarded on gap
        self.resyncs = 0                    # full keyframes applied
        self._resync_needed: set[tuple] = set()

    def decode(self, group: tuple, unit: SummaryDelta) -> Optional[Any]:
        """Replay one unit; the reconstructed summary, or None on a gap."""
        channel = self.channels.get(group)
        if channel is None:
            channel = self.channels[group] = _ChannelState()
        if unit.kind == "full":
            channel.state = summary_copy(unit.payload)
            channel.seq = unit.seq
            self.resyncs += 1
            self._resync_needed.discard(group)
            return channel.state
        if channel.state is None or unit.base_seq != channel.seq:
            self.gaps += 1
            self._resync_needed.add(group)
            return None
        channel.state.apply_delta(unit.payload)
        channel.seq = unit.seq
        self.applied += 1
        return channel.state

    def take_resyncs(self) -> list[tuple]:
        """Drain the channels awaiting a cumulative resync (the NACK set)."""
        needed = sorted(self._resync_needed, key=repr)
        self._resync_needed.clear()
        return needed
