"""Collector shards: the end-host services behind the virtual IP (§4.5).

A :class:`CollectorShard` is one member of the load-balanced collector tier
the paper deploys behind a virtual IP.  It receives :class:`Submission`
records — one per (app, host, key) summary part — either inline (a direct
call from the :class:`~repro.collect.virtual.VirtualCollector` front door)
or as UDP summary packets delivered by the simulated network, and:

* **batches** them in a bounded ``pending`` buffer, folding the buffer into
  its merged state when it reaches ``batch`` entries (``batch=None``
  disables the fill trigger: folds then happen only at epoch boundaries
  and at finish — the deferred mode),
* **flushes on epochs** when attached to a simulator with an epoch period
  (the fold runs at every epoch boundary regardless of batch fill),
* **sheds under backpressure** via an explicit :class:`ShedSpec` policy —
  submissions arriving while the buffer is at ``capacity`` either evict a
  queued entry or are rejected, and every shed is accounted in ``dropped``
  *and* broken down in ``drops_by_policy`` (mirroring
  ``repro.net.port.Port.drops_by_reason``).  The accounting identity —
  ``submitted == delivered + dropped + len(pending)`` — holds at every
  instant, under every policy (property-tested).  Note the interplay with
  batching: a synchronous batch fold empties the buffer at ``batch``
  entries, so the bound only bites when folding is deferred
  (``batch=None``) or ``capacity < batch``,
* **replays delta channels**: submissions carrying a
  :class:`~repro.collect.delta.SummaryDelta` are decoded at fold time
  through the shard's :class:`~repro.collect.delta.DeltaDecoder`; a unit
  arriving out of sequence is a gap — discarded, counted under the
  ``"delta-gap"`` drop reason, and queued for cumulative resync — and
* keeps **last-writer-wins state per (app, host, key)**: aggregator
  summaries are cumulative snapshots (reconstructed ones included), so the
  newest submission (by ``(time, seq)``) from a source replaces its
  predecessor rather than double-counting it.  Because the front door
  routes a given (app, host, key) to the same shard at any shard count,
  this rule is shard-count invariant.

:meth:`merged_view` folds the retained snapshots across hosts into this
shard's partial global view — the commutative merge completed across
shards by :meth:`repro.collect.virtual.CollectPlane.merge` (flat or via
the :mod:`~repro.collect.tree` aggregation tree).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _replace
from typing import Any, Optional, Union

from repro.net.packet import Packet

from .delta import DeltaDecoder, SummaryDelta, summary_wire_bytes
from .summary import _canonical_key, summary_copy

__all__ = ["COLLECT_UDP_PORT_BASE", "CollectorShard", "SHED_POLICIES",
           "ShedSpec", "Submission", "summary_wire_bytes"]

#: Base UDP destination port for summary packets; shard ``i`` listens on
#: ``COLLECT_UDP_PORT_BASE + i`` so shards sharing a host stay distinct.
COLLECT_UDP_PORT_BASE = 0x6668

#: Fixed per-submission envelope estimate (addresses, app id, key, time).
_ENVELOPE_BYTES = 32

#: Registered load-shedding policies, in menu order.
SHED_POLICIES = ("drop-newest", "drop-oldest", "sample", "priority-keys")

#: Drop reason used for delta units discarded on sequence gaps.
DELTA_GAP_REASON = "delta-gap"


@dataclass(frozen=True)
class ShedSpec:
    """Backpressure policy for a full shard buffer (sweepable knobs).

    * ``drop-newest`` — reject the arriving submission (tail drop; the
      pre-existing behaviour and the default).
    * ``drop-oldest`` — evict the oldest queued submission to admit the
      new one (freshest-data-wins, the natural fit for cumulative
      snapshots).
    * ``sample`` — admit one arriving submission in ``sample_stride``
      (by front-door sequence, so the choice is deterministic), evicting
      the oldest to make room; reject the rest.
    * ``priority-keys`` — evict the oldest queued submission whose part
      key is *not* in ``priority``; when everything queued is priority
      traffic, admit only priority arrivals (evicting the oldest).
    """

    policy: str = "drop-newest"
    sample_stride: int = 2
    priority: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.policy not in SHED_POLICIES:
            raise ValueError(f"unknown shed policy {self.policy!r}; "
                             f"choose from {SHED_POLICIES}")
        if self.sample_stride < 1:
            raise ValueError("sample_stride must be >= 1")
        object.__setattr__(self, "priority", tuple(self.priority))


def as_shed_spec(shed: Union[str, ShedSpec, None]) -> ShedSpec:
    """Normalise the scenario-facing knob: name, spec, or None (default)."""
    if shed is None:
        return ShedSpec()
    if isinstance(shed, str):
        return ShedSpec(policy=shed)
    if isinstance(shed, ShedSpec):
        return shed
    raise TypeError(f"shed must be a policy name or a ShedSpec; "
                    f"got {type(shed).__name__}")


@dataclass(frozen=True)
class Submission:
    """One summary part in flight from an aggregator to a shard."""

    time: float                 # simulation time the summary was pushed
    seq: int                    # front-door sequence (total order per plane)
    app: str                    # owning application name
    host: str                   # submitting host
    key: Any                    # part key ("" for whole-summary submissions)
    summary: Any                # the mergeable payload (or a SummaryDelta)

    @property
    def group(self) -> tuple:
        """The sharding/replacement identity: (app, host, key)."""
        return (self.app, self.host, self.key)


class CollectorShard:
    """One shard of the collection tier: batch, fold, flush, shed, account."""

    def __init__(self, index: int, *, batch: Optional[int] = 64,
                 capacity: int = 4096, name: Optional[str] = None,
                 shed: Union[str, ShedSpec, None] = None) -> None:
        if batch is not None and batch < 1:
            raise ValueError("batch must be >= 1 (or None to fold only on "
                             "epoch/finish flushes)")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.index = index
        self.name = name if name is not None else f"shard{index}"
        self.batch = batch
        self.capacity = capacity
        self.shed = as_shed_spec(shed)
        self.pending: list[Submission] = []
        # (app, host, key) -> newest Submission from that source.
        self.state: dict[tuple, Submission] = {}
        # Delta-channel replay state (used only when deltas arrive).
        self.decoder = DeltaDecoder()
        # Network attachment (None while the shard runs inline-only).
        self.host_name: Optional[str] = None
        self.port: Optional[int] = None
        self._flush_process = None
        # Accounting.  Invariant at every instant:
        #   submitted == delivered + dropped + len(pending)
        self.submitted = 0          # every arrival at ingest()
        self.received = 0           # arrivals admitted into the buffer
        self.delivered = 0          # submissions folded into merged state
        self.dropped = 0            # shed at admission, evicted, or gapped
        self.drops_by_policy: dict[str, int] = {}
        self.bytes_received = 0
        self.flushes = 0
        self.batch_flushes = 0
        self.epoch_flushes = 0
        self.stale_replaced = 0

    # ------------------------------------------------------------------ intake
    def ingest(self, submission: Submission) -> bool:
        """Accept one submission into the batch buffer; False on drop."""
        self.submitted += 1
        if len(self.pending) >= self.capacity and not self._make_room(submission):
            self._count_drop(self.shed.policy)
            return False
        self.received += 1
        self.bytes_received += _ENVELOPE_BYTES + summary_wire_bytes(submission.summary)
        self.pending.append(submission)
        if self.batch is not None and len(self.pending) >= self.batch:
            self.flush(kind="batch")
        return True

    def _make_room(self, incoming: Submission) -> bool:
        """Apply the shed policy to a full buffer; True admits ``incoming``.

        Evictions are charged to this shard's ``dropped`` (the evicted
        submission was already counted ``received``, and will now never be
        delivered), keeping the accounting identity exact.
        """
        policy = self.shed.policy
        if policy == "drop-oldest":
            self._evict(0)
            return True
        if policy == "sample":
            if incoming.seq % self.shed.sample_stride:
                return False
            self._evict(0)
            return True
        if policy == "priority-keys":
            priority = self.shed.priority
            for position, queued in enumerate(self.pending):
                if queued.key not in priority:
                    self._evict(position)
                    return True
            if incoming.key in priority:
                self._evict(0)
                return True
            return False
        return False                        # drop-newest: reject the arrival

    def _evict(self, position: int) -> None:
        del self.pending[position]
        self._count_drop(self.shed.policy)

    def _count_drop(self, reason: str) -> None:
        self.dropped += 1
        self.drops_by_policy[reason] = self.drops_by_policy.get(reason, 0) + 1

    def ingest_packet(self, packet: Packet) -> int:
        """Network intake: unpack a summary packet's submissions."""
        payload = packet.payload
        if not isinstance(payload, dict) or "collect_submissions" not in payload:
            return 0
        accepted = 0
        for submission in payload["collect_submissions"]:
            accepted += bool(self.ingest(submission))
        return accepted

    # ------------------------------------------------------------------- folds
    def flush(self, kind: str = "final") -> int:
        """Fold the pending buffer into state; returns submissions folded.

        An empty buffer is a no-op (and not counted), so the flush
        statistics report folds actually performed, not scheduler ticks.
        Delta submissions are decoded here, in arrival order: the decoder
        reconstructs the source's cumulative snapshot, which then enters
        last-writer-wins state exactly as a cumulative submission would.
        """
        if not self.pending:
            return 0
        self.flushes += 1
        if kind == "batch":
            self.batch_flushes += 1
        elif kind == "epoch":
            self.epoch_flushes += 1
        folded = 0
        state = self.state
        for submission in self.pending:
            if isinstance(submission.summary, SummaryDelta):
                decoded = self.decoder.decode(submission.group,
                                              submission.summary)
                if decoded is None:         # gap: discarded, resync queued
                    self._count_drop(DELTA_GAP_REASON)
                    continue
                submission = _replace(submission, summary=decoded)
            folded += 1
            group = submission.group
            current = state.get(group)
            if current is None:
                state[group] = submission
            elif (submission.time, submission.seq) >= (current.time, current.seq):
                state[group] = submission
                self.stale_replaced += 1
            # else: an older snapshot arrived late; the newer one stands.
        self.delivered += folded
        self.pending.clear()
        return folded

    def take_resync_requests(self) -> list[tuple]:
        """Drain the delta channels awaiting a cumulative resync (NACKs)."""
        return self.decoder.take_resyncs()

    def merged_view(self) -> dict[tuple, Any]:
        """This shard's partial global view: (app, key) -> merged summary.

        Hosts fold in sorted order, but the fold is commutative by the
        :class:`~repro.collect.summary.MergeableSummary` contract, so any
        order would produce the same result (tested).  Pending submissions
        are not included — call :meth:`flush` first for an up-to-date view.
        """
        merged: dict[tuple, Any] = {}
        for group in sorted(self.state,
                            key=lambda g: (g[0], _canonical_key(g[2]), g[1])):
            submission = self.state[group]
            target = (submission.app, submission.key)
            if target in merged:
                merged[target].merge(submission.summary)
            else:
                # Copy on first sight: the fold must never mutate the
                # retained snapshot (it may be merged again later).
                merged[target] = summary_copy(submission.summary)
        return merged

    def metrics(self) -> dict[str, int]:
        """This shard's flush/drop accounting, by canonical metric name.

        Pull-based observability face: the session layer registers gauges
        over these (``collect.shard<i>.<name>``), read only at snapshot
        time — intake and flush paths stay telemetry-free.
        """
        return {
            "submitted": self.submitted,
            "received": self.received,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "bytes_received": self.bytes_received,
            "pending": len(self.pending),
            "state_groups": len(self.state),
            "flushes": self.flushes,
            "batch_flushes": self.batch_flushes,
            "epoch_flushes": self.epoch_flushes,
            "stale_replaced": self.stale_replaced,
            "delta_applied": self.decoder.applied,
            "delta_gaps": self.decoder.gaps,
            "delta_resyncs": self.decoder.resyncs,
        }

    # --------------------------------------------------------------- lifecycle
    def attach(self, sim, host, port: int, epoch_s: Optional[float] = None) -> None:
        """Bind this shard to a simulated end host (the network transport).

        The shard listens for summary packets on ``port`` and, when
        ``epoch_s`` is given, flushes its batch buffer at every epoch
        boundary via the simulator's periodic scheduler.
        """
        self.host_name = host.name
        self.port = port
        host.listen(port, self.ingest_packet)
        if epoch_s is not None:
            self._flush_process = sim.schedule_periodic(
                epoch_s, self.flush, "epoch")

    def stop(self) -> None:
        """Stop the epoch-flush process (idempotent)."""
        if self._flush_process is not None:
            self._flush_process.stop()
            self._flush_process = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f"@{self.host_name}:{self.port}" if self.host_name else "(inline)"
        return (f"<CollectorShard {self.name}{where} state={len(self.state)} "
                f"pending={len(self.pending)} dropped={self.dropped}>")
