"""Collector shards: the end-host services behind the virtual IP (§4.5).

A :class:`CollectorShard` is one member of the load-balanced collector tier
the paper deploys behind a virtual IP.  It receives :class:`Submission`
records — one per (app, host, key) summary part — either inline (a direct
call from the :class:`~repro.collect.virtual.VirtualCollector` front door)
or as UDP summary packets delivered by the simulated network, and:

* **batches** them in a bounded ``pending`` buffer, folding the buffer into
  its merged state when it reaches ``batch`` entries (``batch=None``
  disables the fill trigger: folds then happen only at epoch boundaries
  and at finish — the deferred mode),
* **flushes on epochs** when attached to a simulator with an epoch period
  (the fold runs at every epoch boundary regardless of batch fill),
* **drops under backpressure** — submissions arriving while the buffer is
  at ``capacity`` are counted in ``dropped`` and discarded, mirroring a
  real collector shedding load instead of stalling the network.  Note the
  interplay with batching: a synchronous batch fold empties the buffer at
  ``batch`` entries, so the bound only bites when folding is deferred
  (``batch=None``) or ``capacity < batch`` — and
* keeps **last-writer-wins state per (app, host, key)**: aggregator
  summaries are cumulative snapshots, so the newest submission (by
  ``(time, seq)``) from a source replaces its predecessor rather than
  double-counting it.  Because the front door routes a given
  (app, host, key) to the same shard at any shard count, this rule is
  shard-count invariant.

:meth:`merged_view` folds the retained snapshots across hosts into this
shard's partial global view — the commutative merge that
:meth:`repro.collect.virtual.CollectPlane.merge` completes across shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.net.packet import Packet

from .summary import _canonical_key, summary_copy

#: Base UDP destination port for summary packets; shard ``i`` listens on
#: ``COLLECT_UDP_PORT_BASE + i`` so shards sharing a host stay distinct.
COLLECT_UDP_PORT_BASE = 0x6668

#: Fixed per-submission envelope estimate (addresses, app id, key, time).
_ENVELOPE_BYTES = 32


@dataclass(frozen=True)
class Submission:
    """One summary part in flight from an aggregator to a shard."""

    time: float                 # simulation time the summary was pushed
    seq: int                    # front-door sequence (total order per plane)
    app: str                    # owning application name
    host: str                   # submitting host
    key: Any                    # part key ("" for whole-summary submissions)
    summary: Any                # the mergeable payload

    @property
    def group(self) -> tuple:
        """The sharding/replacement identity: (app, host, key)."""
        return (self.app, self.host, self.key)


def summary_wire_bytes(summary: Any) -> int:
    """Rough on-wire size of one summary payload, for packet sizing.

    Heuristic by shape: counters cost ~12 B/entry, histogram bins 8 B,
    top-k entries 16 B, series samples 12 B, bitmap sketches their bitmap;
    bundles sum their parts.  Unknown shapes charge a flat 64 B.
    """
    parts = getattr(summary, "parts", None)
    if parts is not None:
        return sum(summary_wire_bytes(part) for part in parts.values())
    counts = getattr(summary, "counts", None)
    if counts is not None:
        return 12 * max(1, len(counts))
    bins = getattr(summary, "bins", None)
    if bins is not None:
        return 8 * len(bins)
    samples = getattr(summary, "samples", None)
    if samples is not None:
        return 12 * max(1, len(samples))
    memory = getattr(summary, "memory_bytes", None)
    if callable(memory):
        return int(memory())
    return 64


class CollectorShard:
    """One shard of the collection tier: batch, fold, flush, account."""

    def __init__(self, index: int, *, batch: Optional[int] = 64,
                 capacity: int = 4096, name: Optional[str] = None) -> None:
        if batch is not None and batch < 1:
            raise ValueError("batch must be >= 1 (or None to fold only on "
                             "epoch/finish flushes)")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.index = index
        self.name = name if name is not None else f"shard{index}"
        self.batch = batch
        self.capacity = capacity
        self.pending: list[Submission] = []
        # (app, host, key) -> newest Submission from that source.
        self.state: dict[tuple, Submission] = {}
        # Network attachment (None while the shard runs inline-only).
        self.host_name: Optional[str] = None
        self.port: Optional[int] = None
        self._flush_process = None
        # Accounting.
        self.received = 0
        self.dropped = 0
        self.bytes_received = 0
        self.flushes = 0
        self.batch_flushes = 0
        self.epoch_flushes = 0
        self.stale_replaced = 0

    # ------------------------------------------------------------------ intake
    def ingest(self, submission: Submission) -> bool:
        """Accept one submission into the batch buffer; False on drop."""
        if len(self.pending) >= self.capacity:
            self.dropped += 1
            return False
        self.received += 1
        self.bytes_received += _ENVELOPE_BYTES + summary_wire_bytes(submission.summary)
        self.pending.append(submission)
        if self.batch is not None and len(self.pending) >= self.batch:
            self.flush(kind="batch")
        return True

    def ingest_packet(self, packet: Packet) -> int:
        """Network intake: unpack a summary packet's submissions."""
        payload = packet.payload
        if not isinstance(payload, dict) or "collect_submissions" not in payload:
            return 0
        accepted = 0
        for submission in payload["collect_submissions"]:
            accepted += bool(self.ingest(submission))
        return accepted

    # ------------------------------------------------------------------- folds
    def flush(self, kind: str = "final") -> int:
        """Fold the pending buffer into state; returns submissions folded.

        An empty buffer is a no-op (and not counted), so the flush
        statistics report folds actually performed, not scheduler ticks.
        """
        if not self.pending:
            return 0
        self.flushes += 1
        if kind == "batch":
            self.batch_flushes += 1
        elif kind == "epoch":
            self.epoch_flushes += 1
        folded = len(self.pending)
        state = self.state
        for submission in self.pending:
            group = submission.group
            current = state.get(group)
            if current is None:
                state[group] = submission
            elif (submission.time, submission.seq) >= (current.time, current.seq):
                state[group] = submission
                self.stale_replaced += 1
            # else: an older snapshot arrived late; the newer one stands.
        self.pending.clear()
        return folded

    def merged_view(self) -> dict[tuple, Any]:
        """This shard's partial global view: (app, key) -> merged summary.

        Hosts fold in sorted order, but the fold is commutative by the
        :class:`~repro.collect.summary.MergeableSummary` contract, so any
        order would produce the same result (tested).  Pending submissions
        are not included — call :meth:`flush` first for an up-to-date view.
        """
        merged: dict[tuple, Any] = {}
        for group in sorted(self.state,
                            key=lambda g: (g[0], _canonical_key(g[2]), g[1])):
            submission = self.state[group]
            target = (submission.app, submission.key)
            if target in merged:
                merged[target].merge(submission.summary)
            else:
                # Copy on first sight: the fold must never mutate the
                # retained snapshot (it may be merged again later).
                merged[target] = summary_copy(submission.summary)
        return merged

    def metrics(self) -> dict[str, int]:
        """This shard's flush/drop accounting, by canonical metric name.

        Pull-based observability face: the session layer registers gauges
        over these (``collect.shard<i>.<name>``), read only at snapshot
        time — intake and flush paths stay telemetry-free.
        """
        return {
            "received": self.received,
            "dropped": self.dropped,
            "bytes_received": self.bytes_received,
            "pending": len(self.pending),
            "state_groups": len(self.state),
            "flushes": self.flushes,
            "batch_flushes": self.batch_flushes,
            "epoch_flushes": self.epoch_flushes,
            "stale_replaced": self.stale_replaced,
        }

    # --------------------------------------------------------------- lifecycle
    def attach(self, sim, host, port: int, epoch_s: Optional[float] = None) -> None:
        """Bind this shard to a simulated end host (the network transport).

        The shard listens for summary packets on ``port`` and, when
        ``epoch_s`` is given, flushes its batch buffer at every epoch
        boundary via the simulator's periodic scheduler.
        """
        self.host_name = host.name
        self.port = port
        host.listen(port, self.ingest_packet)
        if epoch_s is not None:
            self._flush_process = sim.schedule_periodic(
                epoch_s, self.flush, "epoch")

    def stop(self) -> None:
        """Stop the epoch-flush process (idempotent)."""
        if self._flush_process is not None:
            self._flush_process.stop()
            self._flush_process = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f"@{self.host_name}:{self.port}" if self.host_name else "(inline)"
        return (f"<CollectorShard {self.name}{where} state={len(self.state)} "
                f"pending={len(self.pending)} dropped={self.dropped}>")
