"""The TPP instruction set (Table 1 of the paper).

Six opcodes are sufficient for every task the paper demonstrates:

=========  ==================================================================
``LOAD``   copy a switch-memory word into packet memory (hop-addressed)
``STORE``  copy a packet-memory word into switch memory (hop-addressed)
``PUSH``   copy a switch-memory word onto packet memory at the stack pointer
``POP``    copy the packet-memory word at the stack pointer into switch memory
``CSTORE`` compare-and-swap on switch memory; failure halts later instructions
``CEXEC``  execute the remaining instructions only if
           ``(switch_value & mask) == value``
=========  ==================================================================

Wire encoding is four bytes per instruction (so the three-instruction TPPs in
§2.1/§2.3 occupy 12 bytes, matching the paper's overhead accounting)::

    byte 0      opcode (high nibble) | flags (low nibble, reserved)
    bytes 1-2   16-bit switch virtual address (big endian)
    byte 3      packet-memory word offset (hop-relative in hop addressing mode)

Multi-operand instructions use *implicit adjacency* in packet memory:

* ``CSTORE [X], [Packet:Hop[k]], [Packet:Hop[k+1]]`` encodes ``k``; the "new"
  value is always read from the following word.
* ``CEXEC [X], [Packet:Hop[k]]`` reads the mask from word ``k`` and the
  comparison value from word ``k+1``.

Execution semantics — what each opcode does at a hop, in what order it can
fail, and how CSTORE/CEXEC gate the rest of the program — live with the
engine in :mod:`repro.core.tcpu` (see its opcode-semantics table).  The
opcode classification sets below (:data:`WRITE_OPCODES`,
:data:`READ_OPCODES`, :data:`PACKET_WRITE_OPCODES`,
:data:`CONDITIONAL_OPCODES`) are what the control plane's static analysis,
the write-disable knob, and the compiled-trace eligibility check
(:func:`repro.core.static_analysis.trace_ineligibility`) key off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .exceptions import EncodingError

#: The paper restricts a TPP to "at most 5 instructions" so execution always
#: finishes within a fraction of the packet's transmission time (§1, §6).
MAX_INSTRUCTIONS = 5

INSTRUCTION_BYTES = 4


class Opcode(enum.IntEnum):
    """TPP opcodes."""

    NOP = 0
    LOAD = 1
    STORE = 2
    PUSH = 3
    POP = 4
    CSTORE = 5
    CEXEC = 6

    @property
    def mnemonic(self) -> str:
        return self.name


#: Opcodes that write to switch memory; the administrator may disable these
#: network-wide (§4.3) and the end-host control plane polices them per app.
WRITE_OPCODES = frozenset({Opcode.STORE, Opcode.POP, Opcode.CSTORE})

#: Opcodes that read switch memory.
READ_OPCODES = frozenset({Opcode.LOAD, Opcode.PUSH, Opcode.CSTORE, Opcode.CEXEC})

#: Opcodes that write into the packet's own memory.
PACKET_WRITE_OPCODES = frozenset({Opcode.LOAD, Opcode.PUSH, Opcode.CSTORE})

#: Opcodes that gate execution of subsequent instructions.
CONDITIONAL_OPCODES = frozenset({Opcode.CSTORE, Opcode.CEXEC})


@dataclass(frozen=True)
class Instruction:
    """A single decoded TPP instruction.

    Attributes:
        opcode: one of :class:`Opcode`.
        address: 16-bit switch virtual address (ignored for NOP).
        packet_offset: word offset into packet memory.  Interpreted relative
            to the current hop's slice in hop-addressing mode, or as an
            absolute word offset in stack mode.  PUSH/POP ignore it (they use
            the stack pointer from the TPP header).
        flags: reserved low nibble of byte 0 (kept for forward compatibility).
    """

    opcode: Opcode
    address: int = 0
    packet_offset: int = 0
    flags: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.address <= 0xFFFF:
            raise EncodingError(f"switch address {self.address:#x} does not fit in 16 bits")
        if not 0 <= self.packet_offset <= 0xFF:
            raise EncodingError(f"packet offset {self.packet_offset} does not fit in 8 bits")
        if not 0 <= self.flags <= 0xF:
            raise EncodingError(f"flags {self.flags:#x} do not fit in 4 bits")

    # ------------------------------------------------------------ properties
    @property
    def writes_switch(self) -> bool:
        return self.opcode in WRITE_OPCODES

    @property
    def reads_switch(self) -> bool:
        return self.opcode in READ_OPCODES

    @property
    def writes_packet(self) -> bool:
        return self.opcode in PACKET_WRITE_OPCODES

    @property
    def is_conditional(self) -> bool:
        return self.opcode in CONDITIONAL_OPCODES

    # -------------------------------------------------------------- encoding
    def encode(self) -> bytes:
        """Serialise to the 4-byte wire format."""
        byte0 = (int(self.opcode) << 4) | self.flags
        return bytes((byte0, (self.address >> 8) & 0xFF, self.address & 0xFF,
                      self.packet_offset))

    @classmethod
    def decode(cls, data: bytes) -> "Instruction":
        """Parse one instruction from exactly 4 bytes."""
        if len(data) != INSTRUCTION_BYTES:
            raise EncodingError(f"instruction must be {INSTRUCTION_BYTES} bytes, got {len(data)}")
        opcode_value = data[0] >> 4
        try:
            opcode = Opcode(opcode_value)
        except ValueError:
            raise EncodingError(f"unknown opcode {opcode_value}") from None
        return cls(opcode=opcode, address=(data[1] << 8) | data[2],
                   packet_offset=data[3], flags=data[0] & 0xF)

    def __str__(self) -> str:
        from . import addressing
        if self.opcode is Opcode.NOP:
            return "NOP"
        try:
            addr = addressing.describe(self.address)
        except Exception:  # pragma: no cover - malformed addresses in tests
            addr = f"{self.address:#06x}"
        if self.opcode in (Opcode.PUSH, Opcode.POP):
            return f"{self.opcode.mnemonic} {addr}"
        if self.opcode is Opcode.CSTORE:
            return (f"CSTORE {addr}, [Packet:Hop[{self.packet_offset}]], "
                    f"[Packet:Hop[{self.packet_offset + 1}]]")
        if self.opcode is Opcode.CEXEC:
            return f"CEXEC {addr}, [Packet:Hop[{self.packet_offset}]]"
        return f"{self.opcode.mnemonic} {addr}, [Packet:Hop[{self.packet_offset}]]"


def encode_program(instructions: list[Instruction]) -> bytes:
    """Serialise an instruction list to bytes."""
    return b"".join(instr.encode() for instr in instructions)


def decode_program(data: bytes) -> list[Instruction]:
    """Parse a byte string into instructions (length must be a multiple of 4)."""
    if len(data) % INSTRUCTION_BYTES:
        raise EncodingError(
            f"instruction stream length {len(data)} is not a multiple of {INSTRUCTION_BYTES}")
    return [Instruction.decode(data[i:i + INSTRUCTION_BYTES])
            for i in range(0, len(data), INSTRUCTION_BYTES)]
