"""Compiled TCPU traces: lowering a TPP program to one specialized function.

The paper's switch executes a TPP's handful of instructions in dedicated
execution units at line rate (§3.5, §6.1); cost is paid once, at tape-out.
Our interpreter pays instead *per packet*: even with the per-program plan
cache of :meth:`repro.core.tcpu.TCPU.execute_program`, every hop still walks
a step list, calls one bound handler per instruction, re-derives packet
byte offsets through :meth:`repro.core.packet_format.TPP.hop_byte_offset`,
and re-checks bounds inside :meth:`~repro.core.packet_format.TPP.read_word_bytes` /
:meth:`~repro.core.packet_format.TPP.write_word_bytes`.

This module removes that per-packet tax the way a tracing JIT would: a
validated program is *lowered once* into a single synthesized Python
function — the program's **trace** — with

* no per-instruction dispatch (the opcode sequence is unrolled into
  straight-line code),
* no operand decoding (addresses, packet offsets, and the word mask are
  baked in as literals),
* no layered bounds re-checks (each instruction carries exactly one inlined
  range test against ``len(tpp.memory)``, instead of three chained method
  calls),
* the administrator's write-disable knob (§4.3) resolved at compile time.

The trace is **behaviour-identical by construction**: each opcode template
below mirrors the corresponding ``TCPU._op_*`` handler line for line — same
status precedence (``SKIPPED_NO_MEMORY`` before ``SKIPPED_PACKET_FULL`` for
reads, the reverse for writes, exactly as the interpreter orders its
checks), same counter updates, same packet-memory truncation.  A
property-style differential sweep (``tests/test_trace.py``) holds the two
engines instruction-for-instruction equal on randomized programs, in the
spirit of the commuter-style cross-checking harnesses.

Eligibility — when we fall back to the interpreter
--------------------------------------------------

Not every program is lowered.  :func:`trace_ineligibility` (built on
:mod:`repro.core.static_analysis`) refuses:

* **conditional programs** (``CSTORE``/``CEXEC``): their halt-the-rest
  control flow would need branchy codegen for a case the reproduced
  workloads stamp rarely; the interpreter remains the reference engine;
* **memory-fault-prone patterns**: programs whose static analysis reports
  packet-memory hazards (write-after-write / read-after-write overlaps,
  §3.5) — precisely the programs where aggressive specialization could
  diverge from sequential semantics, so they stay on the interpreter.

Ineligible programs simply take :meth:`TCPU.execute_program`'s interpreted
path; results are identical either way, only the speed differs.

Assumptions the trace is allowed to make
----------------------------------------

The generated code hoists ``tpp.memory`` (the bytearray object) and the
stack pointer into locals for the whole execution, writing the stack
pointer back once at the end.  A :class:`~repro.core.tcpu.MemoryInterface`
may mutate switch state and the packet *context* freely, and may mutate
the bytearray's contents in place, but must not mutate the TPP itself
(rebind ``tpp.memory``, move ``stack_pointer``/``hop_number``)
mid-execution — no interface in this codebase touches the TPP at all (the
switch-side :class:`~repro.switches.memory.SwitchMemory` only sees the
context), and the sequential instruction semantics themselves are exactly
the interpreter's: failed stack instructions leave the pointer alone,
successful ones advance it by one word.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from .isa import Instruction, Opcode
from .packet_format import AddressingMode
from .static_analysis import trace_ineligibility
from .tcpu import ExecutionResult, InstructionStatus

__all__ = ["CompiledTrace", "codegen_stats", "compile_trace", "trace_eligible",
           "trace_ineligibility"]

#: Process-wide codegen memo (templates are few; the bound guards tests that
#: synthesize thousands of unique programs).
_COMPILE_CACHE: dict[tuple, "CompiledTrace"] = {}
_COMPILE_CACHE_LIMIT = 1024

#: Codegen-memo health, process-wide (plain ints; repro.obs reads them as
#: gauges).  Hits mean a program shape was lowered once and reused; misses
#: count actual codegen+exec work, ineligible counts interpreter fallbacks.
_CODEGEN_STATS = {"hits": 0, "misses": 0, "ineligible": 0}


def codegen_stats() -> dict[str, int]:
    """A snapshot of the process-wide codegen memo accounting."""
    return dict(_CODEGEN_STATS)


def trace_eligible(instructions: Sequence[Instruction]) -> bool:
    """True when the program can take the compiled-trace fast path."""
    return trace_ineligibility(instructions) is None


@dataclass(frozen=True)
class CompiledTrace:
    """A lowered program: the synthesized trace factory plus its provenance.

    A trace is bound to one :class:`~repro.core.tcpu.MemoryInterface` before
    it runs: :meth:`bind` resolves every switch-memory address the program
    reads into a per-address reader thunk (via the interface's optional
    ``read_resolver`` — see :meth:`repro.switches.memory.SwitchMemory.read_resolver`)
    and closes the generated function over them, so the per-packet path pays
    neither address decoding nor region dispatch.  The bound function
    ``fn(tcpu, tpp, context)`` is a drop-in for the interpreter's execution
    core: it returns the same :class:`ExecutionResult` and applies the same
    ``tpps_executed`` / ``instructions_executed`` accounting to the owning
    TCPU.  ``source`` keeps the generated code for inspection and debugging.
    """

    factory: Callable
    source: str
    instructions: tuple[Instruction, ...]

    def bind(self, memory) -> Callable:
        """Close the trace over ``memory``, returning the executable fn.

        Uses the interface's ``read_resolver(address)`` when it offers one
        (an address-specialized reader with identical semantics to
        ``read``); otherwise falls back to per-address ``memory.read``
        closures, which is still correct for any MemoryInterface.
        """
        resolve = getattr(memory, "read_resolver", None)
        if resolve is None:
            read = memory.read

            def resolve(address: int) -> Callable:
                return lambda context, _a=address: read(_a, context)

        return self.factory(memory, resolve)


def compile_trace(instructions: Sequence[Instruction], *, word_bytes: int,
                  mode: AddressingMode, hop_size: int,
                  write_enabled: bool = True) -> Optional[CompiledTrace]:
    """Lower ``instructions`` into a :class:`CompiledTrace`, or None.

    Returns None when the program is ineligible (conditional opcodes or
    packet-memory hazards — see the module docstring); callers fall back to
    the interpreted path.

    The trace is specialized on everything that shapes the generated code:
    the exact instruction sequence, ``word_bytes`` (mask and byte packing),
    the addressing ``mode`` and ``hop_size`` (packet byte-offset
    arithmetic), and ``write_enabled`` (write instructions collapse to a
    constant skip).  Cache keys must therefore cover the same tuple —
    :class:`repro.core.tcpu.TCPU` does.
    """
    program = tuple(instructions)
    # Content-keyed, process-wide memo: every switch TCPU sees the same few
    # templates, so the codegen + exec cost is paid once per program shape,
    # not once per switch.  Content keys (frozen Instructions hash by value)
    # are immune to mutation staleness by construction.
    cache_key = (program, word_bytes, mode, hop_size, write_enabled)
    cached = _COMPILE_CACHE.get(cache_key)
    if cached is not None:
        _CODEGEN_STATS["hits"] += 1
        return cached
    if trace_ineligibility(program) is not None:
        _CODEGEN_STATS["ineligible"] += 1
        return None
    _CODEGEN_STATS["misses"] += 1
    source = _generate_source(program, word_bytes=word_bytes, mode=mode,
                              hop_size=hop_size, write_enabled=write_enabled)
    namespace: dict = {
        "ExecutionResult": ExecutionResult,
        "EXECUTED": InstructionStatus.EXECUTED,
        "SKIPPED_NO_MEMORY": InstructionStatus.SKIPPED_NO_MEMORY,
        "SKIPPED_PACKET_FULL": InstructionStatus.SKIPPED_PACKET_FULL,
        "SKIPPED_WRITE_DISABLED": InstructionStatus.SKIPPED_WRITE_DISABLED,
        "_len": len,
        "_from_bytes": int.from_bytes,
        "_new": object.__new__,
    }
    exec(compile(source, "<tpp-trace>", "exec"), namespace)
    compiled = CompiledTrace(factory=namespace["__tpp_trace_factory"], source=source,
                             instructions=program)
    if len(_COMPILE_CACHE) < _COMPILE_CACHE_LIMIT:
        _COMPILE_CACHE[cache_key] = compiled
    return compiled


# --------------------------------------------------------------------- codegen
class _Emitter:
    """Tiny indented-source builder."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0

    def emit(self, line: str = "") -> None:
        self.lines.append(("    " * self.indent + line) if line else "")


class _Block:
    def __init__(self, emitter: _Emitter) -> None:
        self.emitter = emitter

    def __enter__(self) -> None:
        self.emitter.indent += 1

    def __exit__(self, *exc) -> None:
        self.emitter.indent -= 1


def _generate_source(program: tuple[Instruction, ...], *, word_bytes: int,
                     mode: AddressingMode, hop_size: int,
                     write_enabled: bool) -> str:
    mask = (1 << (8 * word_bytes)) - 1
    out = _Emitter()
    out.emit("# Synthesized TCPU trace — behaviour-identical to TCPU.execute")
    for index, instruction in enumerate(program):
        out.emit(f"#   {index}: {instruction}")
    writes_switch = any(i.writes_switch for i in program) and write_enabled
    out.emit("def __tpp_trace_factory(memory, resolve,")
    out.emit("                        ExecutionResult=ExecutionResult, EXECUTED=EXECUTED,")
    out.emit("                        SKIPPED_NO_MEMORY=SKIPPED_NO_MEMORY,")
    out.emit("                        SKIPPED_PACKET_FULL=SKIPPED_PACKET_FULL,")
    out.emit("                        SKIPPED_WRITE_DISABLED=SKIPPED_WRITE_DISABLED,")
    out.emit("                        _len=_len, _from_bytes=_from_bytes, _new=_new):")
    with _Block(out):
        # Per-address reader thunks, resolved once per (trace, memory) pair.
        for index, instruction in enumerate(program):
            if instruction.reads_switch:
                out.emit(f"r{index} = resolve({instruction.address})")
        if writes_switch:
            out.emit("write = memory.write")
        uses_sp = any(i.opcode is Opcode.PUSH
                      or (i.opcode is Opcode.POP and write_enabled)
                      for i in program)
        out.emit("def __tpp_trace(tcpu, tpp, context):")
        with _Block(out):
            out.emit("mem = tpp.memory")
            out.emit("executed = 0")
            if uses_sp:
                # The stack pointer lives in a local for the whole trace and
                # is written back once — sequential semantics are preserved
                # because only stack instructions move it (failed ones leave
                # it alone, exactly like the interpreter).
                out.emit("sp = tpp.stack_pointer")
            if writes_switch:
                out.emit("writes = 0")
                out.emit("wrote = False")
            for index, instruction in enumerate(program):
                out.emit(f"# {index}: {instruction}")
                _emit_instruction(out, instruction, index=index,
                                  word_bytes=word_bytes, mask=mask,
                                  mode=mode, hop_size=hop_size,
                                  write_enabled=write_enabled)
            if uses_sp:
                out.emit("tpp.stack_pointer = sp")
            out.emit("result = _new(ExecutionResult)")
            status_list = ", ".join(f"s{i}" for i in range(len(program)))
            out.emit(f"result.statuses = [{status_list}]")
            out.emit("result.halted = False")
            # Every read instruction consults switch memory unconditionally,
            # so the read count is a compile-time constant; writes are
            # attempted only when packet memory yielded an operand.
            reads = sum(1 for i in program if i.reads_switch)
            out.emit(f"result.switch_reads = {reads}")
            if writes_switch:
                out.emit("result.switch_writes = writes")
                out.emit("result.wrote_switch_memory = wrote")
            else:
                out.emit("result.switch_writes = 0")
                out.emit("result.wrote_switch_memory = False")
            out.emit("tcpu.tpps_executed += 1")
            out.emit("tcpu.instructions_executed += executed")
            out.emit("return result")
        out.emit("return __tpp_trace")
    return "\n".join(out.lines) + "\n"


def _emit_instruction(out: _Emitter, instruction: Instruction, *, index: int,
                      word_bytes: int, mask: int, mode: AddressingMode,
                      hop_size: int, write_enabled: bool) -> None:
    opcode = instruction.opcode
    if opcode is Opcode.NOP:
        _emit_executed(out, index)
        return
    if opcode is Opcode.PUSH:
        _emit_push(out, index, word_bytes, mask)
        return
    if opcode is Opcode.POP:
        _emit_pop(out, instruction, index, word_bytes, write_enabled)
        return
    if opcode is Opcode.LOAD:
        _emit_load(out, instruction, index, word_bytes, mask, mode, hop_size)
        return
    if opcode is Opcode.STORE:
        _emit_store(out, instruction, index, word_bytes, mode, hop_size,
                    write_enabled)
        return
    raise AssertionError(f"opcode {opcode!r} is not trace-eligible")  # pragma: no cover


def _emit_executed(out: _Emitter, index: int) -> None:
    out.emit(f"s{index} = EXECUTED")
    out.emit("executed += 1")


def _emit_word_read(out: _Emitter, target: str, off: str, word_bytes: int) -> None:
    # Constant offsets need no special form: CPython folds "6 + 2" at
    # compile time, so the generic templates cost nothing at runtime.
    if word_bytes == 2:
        out.emit(f"{target} = (mem[{off}] << 8) | mem[{off} + 1]")
    else:
        out.emit(f"{target} = _from_bytes(mem[{off}:{off} + {word_bytes}], 'big')")


def _emit_word_write(out: _Emitter, off: str, word_bytes: int) -> None:
    """Write local ``v`` (already masked) at byte offset ``off``."""
    if word_bytes == 2:
        out.emit(f"mem[{off}] = v >> 8")
        out.emit(f"mem[{off} + 1] = v & 255")
    else:
        out.emit(f"mem[{off}:{off} + {word_bytes}] = v.to_bytes({word_bytes}, 'big')")


def _hop_offset(instruction: Instruction, word_bytes: int, mode: AddressingMode,
                hop_size: int) -> tuple[Optional[int], str]:
    """(constant byte offset, or None) and the runtime offset expression."""
    base = instruction.packet_offset * word_bytes
    if mode is AddressingMode.HOP:
        return None, f"tpp.hop_number * {hop_size} + {base}"
    return base, str(base)


def _emit_push(out: _Emitter, index: int, word_bytes: int, mask: int) -> None:
    out.emit(f"value = r{index}(context)")
    out.emit("if value is None:")
    with _Block(out):
        out.emit(f"s{index} = SKIPPED_NO_MEMORY")
    out.emit("else:")
    with _Block(out):
        out.emit(f"if 0 <= sp and sp + {word_bytes} <= _len(mem):")
        with _Block(out):
            out.emit(f"v = value & {mask}")
            _emit_word_write(out, "sp", word_bytes)
            out.emit(f"sp += {word_bytes}")
            _emit_executed(out, index)
        out.emit("else:")
        with _Block(out):
            out.emit(f"s{index} = SKIPPED_PACKET_FULL")


def _emit_pop(out: _Emitter, instruction: Instruction, index: int,
              word_bytes: int, write_enabled: bool) -> None:
    if not write_enabled:
        out.emit(f"s{index} = SKIPPED_WRITE_DISABLED")
        return
    out.emit(f"if 0 <= sp and sp + {word_bytes} <= _len(mem):")
    with _Block(out):
        _emit_word_read(out, "value", "sp", word_bytes)
        out.emit(f"sp += {word_bytes}")
        out.emit(f"ok = write({instruction.address}, value, context)")
        out.emit("writes += 1")
        out.emit("if ok:")
        with _Block(out):
            out.emit("wrote = True")
            _emit_executed(out, index)
        out.emit("else:")
        with _Block(out):
            out.emit(f"s{index} = SKIPPED_NO_MEMORY")
    out.emit("else:")
    with _Block(out):
        out.emit(f"s{index} = SKIPPED_PACKET_FULL")


def _emit_load(out: _Emitter, instruction: Instruction, index: int,
               word_bytes: int, mask: int, mode: AddressingMode,
               hop_size: int) -> None:
    out.emit(f"value = r{index}(context)")
    out.emit("if value is None:")
    with _Block(out):
        out.emit(f"s{index} = SKIPPED_NO_MEMORY")
    out.emit("else:")
    with _Block(out):
        constant, expr = _hop_offset(instruction, word_bytes, mode, hop_size)
        if constant is None:
            out.emit(f"off = {expr}")
            out.emit(f"if 0 <= off and off + {word_bytes} <= _len(mem):")
            off = "off"
        else:
            out.emit(f"if {constant + word_bytes} <= _len(mem):")
            off = str(constant)
        with _Block(out):
            out.emit(f"v = value & {mask}")
            _emit_word_write(out, off, word_bytes)
            _emit_executed(out, index)
        out.emit("else:")
        with _Block(out):
            out.emit(f"s{index} = SKIPPED_PACKET_FULL")


def _emit_store(out: _Emitter, instruction: Instruction, index: int,
                word_bytes: int, mode: AddressingMode, hop_size: int,
                write_enabled: bool) -> None:
    if not write_enabled:
        out.emit(f"s{index} = SKIPPED_WRITE_DISABLED")
        return
    constant, expr = _hop_offset(instruction, word_bytes, mode, hop_size)
    if constant is None:
        out.emit(f"off = {expr}")
        out.emit(f"if 0 <= off and off + {word_bytes} <= _len(mem):")
        off = "off"
    else:
        out.emit(f"if {constant + word_bytes} <= _len(mem):")
        off = str(constant)
    with _Block(out):
        _emit_word_read(out, "value", off, word_bytes)
        out.emit(f"ok = write({instruction.address}, value, context)")
        out.emit("writes += 1")
        out.emit("if ok:")
        with _Block(out):
            out.emit("wrote = True")
            _emit_executed(out, index)
        out.emit("else:")
        with _Block(out):
            out.emit(f"s{index} = SKIPPED_NO_MEMORY")
    out.emit("else:")
    with _Block(out):
        out.emit(f"s{index} = SKIPPED_PACKET_FULL")
