"""TPP wire format: header, instruction stream, and packet memory (§3.4).

Layout (all integers big endian)::

    +----------------------+------------------------+---------------------+
    | header (12 bytes)    | instructions (4 B each)| packet memory       |
    +----------------------+------------------------+---------------------+

Header fields::

    byte  0      version (high nibble) | addressing mode (bit 3..2) | word-size code (bits 1..0)
    byte  1      instruction count
    bytes 2-3    packet-memory length in bytes
    byte  4      hop number (incremented by every TPP-capable switch)
    byte  5      stack pointer (byte offset into packet memory)
    byte  6      per-hop memory length in bytes (hop addressing only)
    byte  7      encapsulated protocol code (0 = none, 1 = Ethernet, 2 = IPv4)
    bytes 8-9    checksum over instructions + packet memory
    bytes 10-11  application id

The paper's Figure 7b sketches slightly different field widths (e.g. a 4-byte
application id); we keep the total at 12 bytes because that is the number the
paper's own overhead arithmetic uses (§2.1: 12 B header + 12 B instructions +
6 B/hop × 5 hops = 54 B).  The deviation is documented in DESIGN.md.

Packet memory is preallocated by the end-host and never grows or shrinks
inside the network (Figure 1a); switches only overwrite words in place and
advance the stack pointer / hop number.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .exceptions import CapacityError, EncodingError
from .isa import INSTRUCTION_BYTES, Instruction, MAX_INSTRUCTIONS, decode_program, encode_program

TPP_HEADER_BYTES = 12
#: Default per-value width on the wire; the paper's examples use 16-bit values.
DEFAULT_WORD_BYTES = 2
#: Maximum packet memory Figure 7b allows (40–200 bytes).
MAX_PACKET_MEMORY_BYTES = 200
#: Conservative MTU bound used when validating TPP size (§3.3).
DEFAULT_MTU = 1500


class AddressingMode(enum.IntEnum):
    """How packet memory is addressed by LOAD/STORE/CSTORE/CEXEC operands."""

    STACK = 0   # PUSH/POP against the stack pointer
    HOP = 1     # base:offset -> hop_number * hop_size + offset * word_size


class EncapProtocol(enum.IntEnum):
    """What the TPP encapsulates (field 7 in the header)."""

    NONE = 0
    ETHERNET = 1
    IPV4 = 2


_WORD_CODE = {2: 0, 4: 1}
_CODE_WORD = {0: 2, 1: 4}


def checksum16(data: bytes) -> int:
    """16-bit ones'-complement-style checksum used in the TPP header."""
    total = 0
    padded = data if len(data) % 2 == 0 else data + b"\x00"
    for i in range(0, len(padded), 2):
        total += (padded[i] << 8) | padded[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass
class TPP:
    """A tiny packet program: instructions plus scratch packet memory."""

    instructions: list[Instruction]
    memory: bytearray
    mode: AddressingMode = AddressingMode.STACK
    word_bytes: int = DEFAULT_WORD_BYTES
    hop_number: int = 0
    stack_pointer: int = 0
    hop_size: int = 0
    app_id: int = 0
    encap_proto: EncapProtocol = EncapProtocol.NONE
    version: int = 1
    #: Execution bookkeeping (not on the wire): switches that refused to run
    #: the TPP (write instructions disabled, ACL failure) set this.
    execution_halted: bool = field(default=False, compare=False)
    max_instructions: int = field(default=MAX_INSTRUCTIONS, compare=False)

    def __post_init__(self) -> None:
        if self.word_bytes not in _WORD_CODE:
            raise EncodingError(f"word size must be 2 or 4 bytes, got {self.word_bytes}")
        if len(self.instructions) > self.max_instructions:
            raise CapacityError(
                f"a TPP may carry at most {self.max_instructions} instructions "
                f"(got {len(self.instructions)}); split the task into multiple TPPs (§3.3)")
        if len(self.memory) > MAX_PACKET_MEMORY_BYTES:
            raise CapacityError(
                f"packet memory is limited to {MAX_PACKET_MEMORY_BYTES} bytes, "
                f"got {len(self.memory)}")
        if self.mode is AddressingMode.HOP and self.hop_size <= 0:
            raise EncodingError("hop addressing requires a positive per-hop memory length")
        if self.wire_length() > DEFAULT_MTU:
            raise CapacityError("TPP does not fit within one MTU (§3.3)")

    # ------------------------------------------------------------------ sizes
    def wire_length(self) -> int:
        """Total bytes this TPP occupies on the wire."""
        return TPP_HEADER_BYTES + INSTRUCTION_BYTES * len(self.instructions) + len(self.memory)

    @property
    def out_of_room(self) -> bool:
        """Has this TPP run out of packet memory for further results?

        The switch-side TCPU reports the per-instruction condition as
        ``InstructionStatus.SKIPPED_PACKET_FULL``; this is the end-host-side
        view of the same situation (§3.3's graceful failure), computable from
        the returned TPP alone: the TPP visited more hops than its packet
        memory holds results for.  Exactly filling the preallocated memory is
        *not* out of room — nothing was lost — and a stack TPP whose pushes
        were skipped for *missing switch memory* (leaving free room) is not
        misreported as truncated.  The test is a heuristic: a full packet
        that kept visiting hops may still over-report when the extra hops
        would have executed nothing (CEXEC-gated or memory-less switches).
        """
        capacity = self.num_hops_capacity
        if capacity <= 0 or self.hop_number <= capacity:
            return False
        if self.mode is AddressingMode.HOP:
            return True
        # Stack mode: room was only ever the limiting factor if the stack
        # actually filled up; skipped pushes leave free space behind.
        return self.stack_pointer + self.word_bytes > len(self.memory)

    @property
    def num_hops_capacity(self) -> int:
        """How many hops' worth of results the packet memory can hold."""
        if self.mode is AddressingMode.HOP:
            return len(self.memory) // self.hop_size if self.hop_size else 0
        per_hop = sum(1 for i in self.instructions if i.writes_packet) * self.word_bytes
        return len(self.memory) // per_hop if per_hop else 0

    # ------------------------------------------------------------ word access
    def _check_range(self, byte_offset: int) -> bool:
        return 0 <= byte_offset and byte_offset + self.word_bytes <= len(self.memory)

    def read_word_bytes(self, byte_offset: int) -> Optional[int]:
        """Read the word at ``byte_offset``; None when out of range."""
        if not self._check_range(byte_offset):
            return None
        if self.word_bytes == 2:     # the common wire format, kept allocation-free
            memory = self.memory
            return (memory[byte_offset] << 8) | memory[byte_offset + 1]
        return int.from_bytes(self.memory[byte_offset:byte_offset + self.word_bytes], "big")

    def write_word_bytes(self, byte_offset: int, value: int) -> bool:
        """Write ``value`` (truncated to the word size) at ``byte_offset``."""
        if not self._check_range(byte_offset):
            return False
        if self.word_bytes == 2:     # the common wire format, kept allocation-free
            memory = self.memory
            memory[byte_offset] = (value >> 8) & 0xFF
            memory[byte_offset + 1] = value & 0xFF
            return True
        mask = (1 << (8 * self.word_bytes)) - 1
        self.memory[byte_offset:byte_offset + self.word_bytes] = \
            int(value & mask).to_bytes(self.word_bytes, "big")
        return True

    def hop_byte_offset(self, word_offset: int, hop: Optional[int] = None) -> int:
        """Byte offset of ``Packet:Hop[word_offset]`` for the given (or current) hop."""
        base = self.hop_number if hop is None else hop
        if self.mode is AddressingMode.HOP:
            return base * self.hop_size + word_offset * self.word_bytes
        return word_offset * self.word_bytes

    def read_hop_word(self, word_offset: int, hop: Optional[int] = None) -> Optional[int]:
        return self.read_word_bytes(self.hop_byte_offset(word_offset, hop))

    def write_hop_word(self, word_offset: int, value: int, hop: Optional[int] = None) -> bool:
        return self.write_word_bytes(self.hop_byte_offset(word_offset, hop), value)

    def push(self, value: int) -> bool:
        """Append a word at the stack pointer; False if memory is exhausted."""
        if not self.write_word_bytes(self.stack_pointer, value):
            return False
        self.stack_pointer += self.word_bytes
        return True

    def pop(self) -> Optional[int]:
        """Consume and return the word at the stack pointer."""
        value = self.read_word_bytes(self.stack_pointer)
        if value is None:
            return None
        self.stack_pointer += self.word_bytes
        return value

    def advance_hop(self) -> None:
        """Increment the hop number (each TPP-capable switch does this once)."""
        self.hop_number += 1

    # ------------------------------------------------------------ extraction
    def pushed_words(self) -> list[int]:
        """All words written via PUSH so far (stack mode), in push order."""
        return [int.from_bytes(self.memory[i:i + self.word_bytes], "big")
                for i in range(0, self.stack_pointer, self.word_bytes)]

    def words_by_hop(self, values_per_hop: int) -> list[list[int]]:
        """Group the pushed/loaded words into per-hop records.

        For stack-mode TPPs this slices the pushed words into groups of
        ``values_per_hop``; for hop-mode TPPs it slices packet memory by the
        per-hop memory length.
        """
        if values_per_hop <= 0:
            raise ValueError("values_per_hop must be positive")
        if self.mode is AddressingMode.STACK:
            words = self.pushed_words()
            return [words[i:i + values_per_hop]
                    for i in range(0, len(words), values_per_hop)]
        hops = []
        for hop in range(self.hop_number):
            hops.append([self.read_hop_word(offset, hop) or 0
                         for offset in range(values_per_hop)])
        return hops

    def all_words(self) -> list[int]:
        """Every word in packet memory, in order."""
        return [int.from_bytes(self.memory[i:i + self.word_bytes], "big")
                for i in range(0, len(self.memory) - self.word_bytes + 1, self.word_bytes)]

    # --------------------------------------------------------------- encoding
    def encode(self) -> bytes:
        """Serialise the TPP (header + instructions + packet memory)."""
        body = encode_program(self.instructions) + bytes(self.memory)
        check = checksum16(body)
        byte0 = ((self.version & 0xF) << 4) | ((int(self.mode) & 0x3) << 2) | _WORD_CODE[self.word_bytes]
        header = bytes((
            byte0,
            len(self.instructions),
            (len(self.memory) >> 8) & 0xFF, len(self.memory) & 0xFF,
            self.hop_number & 0xFF,
            self.stack_pointer & 0xFF,
            self.hop_size & 0xFF,
            int(self.encap_proto) & 0xFF,
            (check >> 8) & 0xFF, check & 0xFF,
            (self.app_id >> 8) & 0xFF, self.app_id & 0xFF,
        ))
        return header + body

    @classmethod
    def decode(cls, data: bytes, verify_checksum: bool = True) -> "TPP":
        """Parse a TPP from bytes produced by :meth:`encode`."""
        if len(data) < TPP_HEADER_BYTES:
            raise EncodingError(f"TPP needs at least {TPP_HEADER_BYTES} header bytes, got {len(data)}")
        byte0 = data[0]
        version = byte0 >> 4
        mode = AddressingMode((byte0 >> 2) & 0x3)
        word_bytes = _CODE_WORD.get(byte0 & 0x3)
        if word_bytes is None:
            raise EncodingError(f"unknown word-size code {byte0 & 0x3}")
        n_instr = data[1]
        mem_len = (data[2] << 8) | data[3]
        hop_number = data[4]
        stack_pointer = data[5]
        hop_size = data[6]
        encap = EncapProtocol(data[7])
        check = (data[8] << 8) | data[9]
        app_id = (data[10] << 8) | data[11]
        body_start = TPP_HEADER_BYTES
        body_end = body_start + n_instr * INSTRUCTION_BYTES + mem_len
        if len(data) < body_end:
            raise EncodingError("TPP truncated: body shorter than the header claims")
        body = data[body_start:body_end]
        if verify_checksum and checksum16(body) != check:
            raise EncodingError("TPP checksum mismatch")
        instructions = decode_program(body[:n_instr * INSTRUCTION_BYTES])
        memory = bytearray(body[n_instr * INSTRUCTION_BYTES:])
        return cls(instructions=instructions, memory=memory, mode=mode,
                   word_bytes=word_bytes, hop_number=hop_number,
                   stack_pointer=stack_pointer, hop_size=hop_size, app_id=app_id,
                   encap_proto=encap, version=version)

    def clone(self) -> "TPP":
        """Deep copy (used when the shim stamps the same template on many packets)."""
        return TPP(instructions=list(self.instructions), memory=bytearray(self.memory),
                   mode=self.mode, word_bytes=self.word_bytes, hop_number=self.hop_number,
                   stack_pointer=self.stack_pointer, hop_size=self.hop_size,
                   app_id=self.app_id, encap_proto=self.encap_proto, version=self.version,
                   max_instructions=self.max_instructions)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        instrs = "; ".join(str(i) for i in self.instructions)
        return (f"TPP(app={self.app_id}, hop={self.hop_number}, sp={self.stack_pointer}, "
                f"mem={len(self.memory)}B, [{instrs}])")


def make_tpp(instructions: Iterable[Instruction], num_hops: int = 10,
             mode: AddressingMode = AddressingMode.STACK,
             word_bytes: int = DEFAULT_WORD_BYTES, app_id: int = 0,
             values_per_hop: Optional[int] = None,
             initial_values: Optional[Iterable[int]] = None,
             max_instructions: int = MAX_INSTRUCTIONS) -> TPP:
    """Build a TPP with packet memory preallocated for ``num_hops`` hops.

    Args:
        instructions: the program.
        num_hops: how many hops' worth of results to preallocate space for.
        mode: stack or hop addressing.
        word_bytes: 2 or 4 bytes per value on the wire.
        app_id: TPP application id (assigned by the TPP control plane).
        values_per_hop: words written per hop; defaults to the number of
            packet-writing instructions in the program.
        initial_values: optional words to prefill packet memory with (used by
            write-style TPPs such as RCP*'s phase-3 update).
        max_instructions: override of the per-TPP instruction limit.
    """
    instruction_list = list(instructions)
    if values_per_hop is None:
        values_per_hop = max(1, sum(1 for i in instruction_list if i.writes_packet))
    per_hop_bytes = values_per_hop * word_bytes
    memory = bytearray(per_hop_bytes * num_hops)
    if initial_values is not None:
        offset = 0
        mask = (1 << (8 * word_bytes)) - 1
        for value in initial_values:
            if offset + word_bytes > len(memory):
                raise CapacityError("initial values exceed preallocated packet memory")
            memory[offset:offset + word_bytes] = int(value & mask).to_bytes(word_bytes, "big")
            offset += word_bytes
    return TPP(instructions=instruction_list, memory=memory, mode=mode,
               word_bytes=word_bytes, hop_size=per_hop_bytes if mode is AddressingMode.HOP else 0,
               app_id=app_id, max_instructions=max_instructions)
