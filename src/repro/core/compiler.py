"""TPP compiler: from pseudo-assembly to a wire-ready :class:`~repro.core.packet_format.TPP`.

The compiler ties together the assembler, the addressing map, and the packet
format.  It also implements the PUSH/POP serialisation trick of §3.5: because
packet-memory addresses of PUSH/POP are known as soon as the instructions are
parsed, a stack-addressed program can be rewritten into an equivalent
hop-addressed program of LOADs and STOREs that a distributed, out-of-order
TCPU can execute at whatever stage holds each operand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .assembler import parse_program
from .exceptions import AssemblyError
from .isa import Instruction, MAX_INSTRUCTIONS, Opcode
from .packet_format import AddressingMode, DEFAULT_WORD_BYTES, TPP, make_tpp


@dataclass
class CompiledTPP:
    """Result of a compilation: the TPP plus metadata the end-host needs."""

    tpp: TPP
    source: str
    values_per_hop: int

    def clone_tpp(self) -> TPP:
        """A fresh copy of the template TPP (one per stamped packet)."""
        return self.tpp.clone()


def expand_stack_program(instructions: list[Instruction]) -> tuple[list[Instruction], int]:
    """Rewrite PUSH/POP into hop-addressed LOAD/STORE (§3.5).

    Returns the rewritten program and the number of packet-memory words each
    hop consumes.  Instructions that already use explicit packet offsets keep
    them; PUSHes are assigned consecutive offsets in program order, preserving
    the paper's guarantee that pushed values appear in push order.
    """
    rewritten: list[Instruction] = []
    next_offset = 0
    for instruction in instructions:
        if instruction.opcode is Opcode.PUSH:
            rewritten.append(Instruction(Opcode.LOAD, address=instruction.address,
                                         packet_offset=next_offset))
            next_offset += 1
        elif instruction.opcode is Opcode.POP:
            rewritten.append(Instruction(Opcode.STORE, address=instruction.address,
                                         packet_offset=next_offset))
            next_offset += 1
        else:
            rewritten.append(instruction)
            if instruction.opcode is Opcode.CSTORE:
                # CSTORE consumes two words (old, new) and rewrites "old".
                next_offset = max(next_offset, instruction.packet_offset + 2)
            elif instruction.opcode is Opcode.CEXEC:
                next_offset = max(next_offset, instruction.packet_offset + 2)
            elif instruction.opcode in (Opcode.LOAD, Opcode.STORE):
                next_offset = max(next_offset, instruction.packet_offset + 1)
    return rewritten, max(next_offset, 1)


def compile_tpp(source: str, *, num_hops: int = 10,
                mode: Optional[AddressingMode] = None,
                word_bytes: int = DEFAULT_WORD_BYTES,
                app_id: int = 0,
                initial_values: Optional[Iterable[int]] = None,
                expand_stack: bool = False,
                max_instructions: int = MAX_INSTRUCTIONS) -> CompiledTPP:
    """Compile pseudo-assembly into a ready-to-send TPP.

    Args:
        source: the pseudo-assembly text.
        num_hops: hops' worth of packet memory to preallocate.
        mode: addressing mode; inferred when omitted (HOP if any instruction
            uses explicit packet offsets, STACK for pure PUSH/POP programs).
        word_bytes: wire width of each value (2 or 4).
        app_id: application id stamped in the TPP header.
        initial_values: packet-memory words to prefill (hop-addressed
            programs that carry operands, e.g. RCP*'s phase-3 update).
        expand_stack: rewrite PUSH/POP into hop-addressed LOAD/STORE, the
            transformation a distributed TCPU applies (§3.5).
        max_instructions: per-TPP instruction limit (default: the paper's 5).
    """
    instructions = parse_program(source)
    if not instructions:
        raise AssemblyError("program contains no instructions")

    uses_stack = any(i.opcode in (Opcode.PUSH, Opcode.POP) for i in instructions)
    uses_hop = any(i.opcode in (Opcode.LOAD, Opcode.STORE, Opcode.CSTORE, Opcode.CEXEC)
                   for i in instructions)

    if expand_stack and uses_stack:
        instructions, values_per_hop = expand_stack_program(instructions)
        uses_stack, uses_hop = False, True
    else:
        values_per_hop = _values_per_hop(instructions)

    if mode is None:
        mode = AddressingMode.HOP if uses_hop and not uses_stack else AddressingMode.STACK
    if mode is AddressingMode.STACK and uses_hop and uses_stack:
        # Mixed programs are legal; stack addressing still advances SP while
        # explicit offsets index absolute words.  The paper's examples never
        # mix the two, but nothing in the format forbids it.
        pass

    tpp = make_tpp(instructions, num_hops=num_hops, mode=mode, word_bytes=word_bytes,
                   app_id=app_id, values_per_hop=values_per_hop,
                   initial_values=initial_values, max_instructions=max_instructions)
    return CompiledTPP(tpp=tpp, source=source, values_per_hop=values_per_hop)


def _values_per_hop(instructions: list[Instruction]) -> int:
    """How many packet-memory words one hop's execution touches."""
    pushes = sum(1 for i in instructions if i.opcode in (Opcode.PUSH, Opcode.POP))
    max_offset = 0
    for instruction in instructions:
        if instruction.opcode in (Opcode.LOAD, Opcode.STORE):
            max_offset = max(max_offset, instruction.packet_offset + 1)
        elif instruction.opcode in (Opcode.CSTORE, Opcode.CEXEC):
            max_offset = max(max_offset, instruction.packet_offset + 2)
    return max(pushes, max_offset, 1)


# Convenience wrappers used across the applications -------------------------
def collector_tpp(statistics: Iterable[str], *, num_hops: int = 10, app_id: int = 0,
                  word_bytes: int = DEFAULT_WORD_BYTES) -> CompiledTPP:
    """Build the common "PUSH a list of statistics at every hop" TPP."""
    source = "\n".join(f"PUSH [{stat.strip('[]')}]" for stat in statistics)
    return compile_tpp(source, num_hops=num_hops, app_id=app_id, word_bytes=word_bytes)
