"""The TCPU: the execution engine for TPP instructions (§3.3, §3.5).

The TCPU is deliberately independent of any concrete switch implementation —
it only talks to a :class:`MemoryInterface`, which resolves 16-bit virtual
addresses against whatever state the switch holds, given the per-packet
:class:`PacketContext`.  This mirrors the paper's split between a logical
TCPU and the per-stage execution units that actually carry out loads and
stores wherever the operand lives.

Semantics implemented here (per §3.2/§3.3):

* reads observe *post-forwarding* values — the switch builds the
  PacketContext only after its forwarding decision, so a TPP reading
  ``[PacketMetadata:OutputPort]`` sees exactly the port the packet leaves on;
* packet-memory writes take effect in TPP order (we execute sequentially);
* instructions that address memory that does not exist on this switch are
  skipped — the TPP "fails gracefully" and keeps being forwarded;
* a failed ``CSTORE`` or ``CEXEC`` halts all subsequent instructions at this
  hop (and, for CSTORE, writes the observed value back into packet memory so
  the end-host can detect the failure);
* write instructions can be disabled wholesale by the administrator (§4.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Protocol

from .isa import Instruction, Opcode
from .packet_format import TPP


@dataclass
class PacketContext:
    """Per-packet metadata available to a TPP at execution time (Tables 7/8)."""

    input_port: int = 0
    output_port: int = 0
    output_queue: int = 0
    matched_entry_id: int = 0
    matched_entry_version: int = 0
    matched_stage: int = 0
    hop_number: int = 0
    path_id: int = 0
    packet_length: int = 0
    arrival_time: float = 0.0

    def metadata_word(self, field_offset: int) -> Optional[int]:
        """Resolve a ``PacketMetadata:`` field offset to its value."""
        values = {
            0: self.input_port,
            1: self.output_port,
            2: self.output_queue,
            3: self.matched_entry_id,
            4: self.matched_entry_version,
            5: self.matched_stage,
            6: self.hop_number,
            7: self.path_id,
            8: self.packet_length,
            9: int(self.arrival_time * 1e6) & 0xFFFFFFFF,  # microsecond timestamp
        }
        return values.get(field_offset)


class MemoryInterface(Protocol):
    """What the TCPU needs from a switch to execute instructions."""

    def read(self, address: int, context: PacketContext) -> Optional[int]:
        """Return the word at ``address`` or None when it does not exist."""
        ...

    def write(self, address: int, value: int, context: PacketContext) -> bool:
        """Write ``value`` at ``address``; False when the address is absent or read-only."""
        ...


class InstructionStatus(enum.Enum):
    """Per-instruction outcome recorded in the execution trace."""

    EXECUTED = "executed"
    SKIPPED_NO_MEMORY = "skipped_no_memory"
    SKIPPED_HALTED = "skipped_halted"
    SKIPPED_WRITE_DISABLED = "skipped_write_disabled"
    FAILED_CONDITION = "failed_condition"


@dataclass
class ExecutionResult:
    """Outcome of executing one TPP at one hop."""

    statuses: list[InstructionStatus] = field(default_factory=list)
    halted: bool = False
    wrote_switch_memory: bool = False
    switch_reads: int = 0
    switch_writes: int = 0

    @property
    def executed_count(self) -> int:
        return sum(1 for status in self.statuses
                   if status in (InstructionStatus.EXECUTED, InstructionStatus.FAILED_CONDITION))

    def __bool__(self) -> bool:
        return not self.halted


class TCPU:
    """Executes TPPs against a :class:`MemoryInterface`.

    Args:
        write_enabled: when False, all switch-memory writes (STORE, POP,
            CSTORE's store half) are suppressed — the administrator knob of
            §4.3.  Reads still execute.
    """

    def __init__(self, write_enabled: bool = True) -> None:
        self.write_enabled = write_enabled
        self.tpps_executed = 0
        self.instructions_executed = 0

    # ------------------------------------------------------------------ main
    def execute(self, tpp: TPP, memory: MemoryInterface,
                context: PacketContext) -> ExecutionResult:
        """Execute every instruction of ``tpp`` once (one hop's worth)."""
        result = ExecutionResult()
        halted = False
        word_mask = (1 << (8 * tpp.word_bytes)) - 1

        for instruction in tpp.instructions:
            if halted:
                result.statuses.append(InstructionStatus.SKIPPED_HALTED)
                continue
            status = self._execute_one(instruction, tpp, memory, context, result, word_mask)
            result.statuses.append(status)
            if status is InstructionStatus.FAILED_CONDITION:
                halted = True

        result.halted = halted
        self.tpps_executed += 1
        self.instructions_executed += result.executed_count
        return result

    # ----------------------------------------------------------- per opcode
    def _execute_one(self, instruction: Instruction, tpp: TPP, memory: MemoryInterface,
                     context: PacketContext, result: ExecutionResult,
                     word_mask: int) -> InstructionStatus:
        opcode = instruction.opcode

        if opcode is Opcode.NOP:
            return InstructionStatus.EXECUTED

        if opcode is Opcode.PUSH:
            value = memory.read(instruction.address, context)
            result.switch_reads += 1
            if value is None:
                return InstructionStatus.SKIPPED_NO_MEMORY
            if not tpp.push(value):
                return InstructionStatus.SKIPPED_NO_MEMORY
            return InstructionStatus.EXECUTED

        if opcode is Opcode.POP:
            if not self.write_enabled:
                return InstructionStatus.SKIPPED_WRITE_DISABLED
            value = tpp.pop()
            if value is None:
                return InstructionStatus.SKIPPED_NO_MEMORY
            ok = memory.write(instruction.address, value, context)
            result.switch_writes += 1
            if not ok:
                return InstructionStatus.SKIPPED_NO_MEMORY
            result.wrote_switch_memory = True
            return InstructionStatus.EXECUTED

        if opcode is Opcode.LOAD:
            value = memory.read(instruction.address, context)
            result.switch_reads += 1
            if value is None:
                return InstructionStatus.SKIPPED_NO_MEMORY
            if not tpp.write_hop_word(instruction.packet_offset, value):
                return InstructionStatus.SKIPPED_NO_MEMORY
            return InstructionStatus.EXECUTED

        if opcode is Opcode.STORE:
            if not self.write_enabled:
                return InstructionStatus.SKIPPED_WRITE_DISABLED
            value = tpp.read_hop_word(instruction.packet_offset)
            if value is None:
                return InstructionStatus.SKIPPED_NO_MEMORY
            ok = memory.write(instruction.address, value, context)
            result.switch_writes += 1
            if not ok:
                return InstructionStatus.SKIPPED_NO_MEMORY
            result.wrote_switch_memory = True
            return InstructionStatus.EXECUTED

        if opcode is Opcode.CSTORE:
            return self._execute_cstore(instruction, tpp, memory, context, result, word_mask)

        if opcode is Opcode.CEXEC:
            return self._execute_cexec(instruction, tpp, memory, context, result, word_mask)

        return InstructionStatus.SKIPPED_NO_MEMORY  # pragma: no cover - exhaustive above

    def _execute_cstore(self, instruction: Instruction, tpp: TPP, memory: MemoryInterface,
                        context: PacketContext, result: ExecutionResult,
                        word_mask: int) -> InstructionStatus:
        """CSTORE dst, old, new — compare-and-swap gating later instructions (§3.3.3)."""
        current = memory.read(instruction.address, context)
        result.switch_reads += 1
        old = tpp.read_hop_word(instruction.packet_offset)
        new = tpp.read_hop_word(instruction.packet_offset + 1)
        if current is None or old is None or new is None:
            return InstructionStatus.FAILED_CONDITION
        succeeded = (current & word_mask) == (old & word_mask)
        if succeeded:
            if not self.write_enabled:
                return InstructionStatus.SKIPPED_WRITE_DISABLED
            if not memory.write(instruction.address, new, context):
                return InstructionStatus.FAILED_CONDITION
            result.switch_writes += 1
            result.wrote_switch_memory = True
            observed = new
        else:
            observed = current
        # Always write the observed value of X back into the "old" slot so the
        # end-host can tell whether the compare-and-swap succeeded.
        tpp.write_hop_word(instruction.packet_offset, observed)
        return InstructionStatus.EXECUTED if succeeded else InstructionStatus.FAILED_CONDITION

    def _execute_cexec(self, instruction: Instruction, tpp: TPP, memory: MemoryInterface,
                       context: PacketContext, result: ExecutionResult,
                       word_mask: int) -> InstructionStatus:
        """CEXEC addr, [mask, value] — gate the rest of the TPP on a predicate."""
        switch_value = memory.read(instruction.address, context)
        result.switch_reads += 1
        mask = tpp.read_hop_word(instruction.packet_offset)
        value = tpp.read_hop_word(instruction.packet_offset + 1)
        if switch_value is None or mask is None or value is None:
            return InstructionStatus.FAILED_CONDITION
        if (switch_value & mask & word_mask) == (value & word_mask):
            return InstructionStatus.EXECUTED
        return InstructionStatus.FAILED_CONDITION
