"""The TCPU: the execution engine for TPP instructions (§3.3, §3.5).

The TCPU is deliberately independent of any concrete switch implementation —
it only talks to a :class:`MemoryInterface`, which resolves 16-bit virtual
addresses against whatever state the switch holds, given the per-packet
:class:`PacketContext`.  This mirrors the paper's split between a logical
TCPU and the per-stage execution units that actually carry out loads and
stores wherever the operand lives.

Semantics implemented here (per §3.2/§3.3):

* reads observe *post-forwarding* values — the switch builds the
  PacketContext only after its forwarding decision, so a TPP reading
  ``[PacketMetadata:OutputPort]`` sees exactly the port the packet leaves on;
* packet-memory writes take effect in TPP order (we execute sequentially);
* instructions that address memory that does not exist on this switch are
  skipped with :attr:`InstructionStatus.SKIPPED_NO_MEMORY` — the TPP "fails
  gracefully" and keeps being forwarded;
* instructions that address memory the *switch* has but the *packet* has run
  out of (a PUSH onto a full stack, a LOAD/STORE past the preallocated
  per-hop slice) are skipped with the distinct
  :attr:`InstructionStatus.SKIPPED_PACKET_FULL`, so end-hosts can tell
  "this switch lacks the statistic" apart from "the packet ran out of room"
  when diagnosing truncated results;
* values read from switch memory are masked to the TPP's word size before
  they touch packet memory, so wraparound of wide statistics (e.g. the
  32-bit microsecond timestamp) is well-defined for both 2- and 4-byte-word
  TPPs;
* a failed ``CSTORE`` or ``CEXEC`` halts all subsequent instructions at this
  hop (and, for CSTORE, writes the observed value back into packet memory so
  the end-host can detect the failure — including when the store half itself
  was suppressed by the administrator's write-disable knob);
* write instructions can be disabled wholesale by the administrator (§4.3).

Opcode semantics at a glance
----------------------------

========  ============================================  =======================
opcode    effect                                        failure modes
========  ============================================  =======================
NOP       nothing                                       —
PUSH      switch word → packet memory at SP; SP += w    ``SKIPPED_NO_MEMORY``
                                                        (address absent),
                                                        ``SKIPPED_PACKET_FULL``
                                                        (stack full)
POP       packet word at SP → switch memory; SP += w    ``SKIPPED_PACKET_FULL``
                                                        (stack exhausted),
                                                        ``SKIPPED_NO_MEMORY``
                                                        (absent/read-only),
                                                        ``SKIPPED_WRITE_DISABLED``
LOAD      switch word → ``Packet:Hop[k]``               like PUSH
STORE     ``Packet:Hop[k]`` → switch memory             like POP
CSTORE    compare-and-swap; observed value written      ``FAILED_CONDITION``
          back to ``Hop[k]``; failure halts the rest    halts later instructions
CEXEC     continue only if ``(switch & mask) == val``   ``FAILED_CONDITION``
                                                        halts later instructions
========  ============================================  =======================

(``w`` is the TPP word size, 2 or 4 bytes; SP is the stack pointer.  Check
precedence matters and is part of the contract: reads report
``SKIPPED_NO_MEMORY`` before looking at packet room, writes report
``SKIPPED_PACKET_FULL`` before attempting the switch write.)

Execution hot path
------------------

Three engines, one semantics:

1. :meth:`TCPU.execute` — the reference interpreter: resolves each opcode
   through the handler table and runs the uncached step list.  One-off
   programs and tests use it.
2. :meth:`TCPU.execute_program` — the plan cache: the resolved
   ``(handler, instruction)`` list and word mask are cached per unique
   program, so switches that see the same TPP template on every packet of a
   flow pay opcode resolution exactly once.
3. The **compiled trace** (``compile_traces=True``): eligible programs are
   lowered once by :mod:`repro.core.trace` into a single synthesized
   function with no dispatch, no operand decoding, and one inlined bounds
   check per instruction; ineligible programs (conditionals, hazard-laden
   packet layouts) silently fall back to engine 2.

All three produce byte-identical results — the differential sweep in
``tests/test_trace.py`` enforces it.

Both caches are keyed by *identity* of the (frozen, immutable)
:class:`~repro.core.isa.Instruction` objects plus every value the cached
artifact is specialized on (word size; for traces also addressing mode,
hop size, and the write-enable knob).  Identity keys are sound only
because each cache entry holds strong references to its instructions:
while an entry lives, its instructions' ids cannot be reused, so a key
match implies the probing program *is* those exact instruction objects.
Mutating a TPP's instruction list therefore always changes the key — a
mutated program can never hit a stale plan (regression-tested in
``tests/test_trace.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Protocol

from .isa import Instruction, Opcode
from .packet_format import TPP

#: Bounded size of the per-TCPU compiled-plan cache (templates are few; this
#: only guards against pathological workloads with unbounded unique programs).
_PLAN_CACHE_LIMIT = 1024


@dataclass(slots=True)
class PacketContext:
    """Per-packet metadata available to a TPP at execution time (Tables 7/8)."""

    input_port: int = 0
    output_port: int = 0
    output_queue: int = 0
    matched_entry_id: int = 0
    matched_entry_version: int = 0
    matched_stage: int = 0
    hop_number: int = 0
    path_id: int = 0
    packet_length: int = 0
    arrival_time: float = 0.0

    def metadata_word(self, field_offset: int) -> Optional[int]:
        """Resolve a ``PacketMetadata:`` field offset to its value.

        The arrival timestamp is kept to 32 bits here (the widest word a TPP
        can carry); the TCPU masks every metadata read down to the executing
        TPP's word size, so narrower TPPs see a well-defined truncation.
        """
        if field_offset == 0:
            return self.input_port
        if field_offset == 1:
            return self.output_port
        if field_offset == 2:
            return self.output_queue
        if field_offset == 3:
            return self.matched_entry_id
        if field_offset == 4:
            return self.matched_entry_version
        if field_offset == 5:
            return self.matched_stage
        if field_offset == 6:
            return self.hop_number
        if field_offset == 7:
            return self.path_id
        if field_offset == 8:
            return self.packet_length
        if field_offset == 9:
            return int(self.arrival_time * 1e6) & 0xFFFFFFFF  # microsecond timestamp
        return None


class MemoryInterface(Protocol):
    """What the TCPU needs from a switch to execute instructions."""

    def read(self, address: int, context: PacketContext) -> Optional[int]:
        """Return the word at ``address`` or None when it does not exist."""
        ...

    def write(self, address: int, value: int, context: PacketContext) -> bool:
        """Write ``value`` at ``address``; False when the address is absent or read-only."""
        ...


class InstructionStatus(enum.Enum):
    """Per-instruction outcome recorded in the execution trace."""

    EXECUTED = "executed"
    SKIPPED_NO_MEMORY = "skipped_no_memory"
    SKIPPED_PACKET_FULL = "skipped_packet_full"
    SKIPPED_HALTED = "skipped_halted"
    SKIPPED_WRITE_DISABLED = "skipped_write_disabled"
    FAILED_CONDITION = "failed_condition"


@dataclass(slots=True)
class ExecutionResult:
    """Outcome of executing one TPP at one hop."""

    statuses: list[InstructionStatus] = field(default_factory=list)
    halted: bool = False
    wrote_switch_memory: bool = False
    switch_reads: int = 0
    switch_writes: int = 0

    @property
    def executed_count(self) -> int:
        return sum(1 for status in self.statuses
                   if status in (InstructionStatus.EXECUTED, InstructionStatus.FAILED_CONDITION))

    @property
    def packet_full(self) -> bool:
        """True when any instruction was skipped because packet memory ran out."""
        return InstructionStatus.SKIPPED_PACKET_FULL in self.statuses

    @property
    def status_label(self) -> str:
        """A one-word outcome summary, worst condition first.

        Observers (the flight recorder's tpp-exec records) want a compact
        label, not the per-instruction status list: ``halted`` (CEXEC guard
        failed, §3.3), ``out-of-room`` (packet memory exhausted at this
        hop), ``write-disabled`` (a store suppressed by the administrator
        knob of §4.3), or ``ok``.
        """
        if self.halted:
            return "halted"
        if self.packet_full:
            return "out-of-room"
        if InstructionStatus.SKIPPED_WRITE_DISABLED in self.statuses:
            return "write-disabled"
        return "ok"

    def __bool__(self) -> bool:
        return not self.halted


class TCPU:
    """Executes TPPs against a :class:`MemoryInterface`.

    Args:
        write_enabled: when False, all switch-memory writes (STORE, POP,
            CSTORE's store half) are suppressed — the administrator knob of
            §4.3.  Reads still execute, and CSTORE still writes the observed
            switch value back into packet memory so end-hosts see a coherent
            failure (§3.3.3).
        compile_traces: when True, :meth:`execute_program` lowers eligible
            programs through :mod:`repro.core.trace` into per-program
            compiled traces and executes those; ineligible programs fall
            back to the interpreted plan path.  Results are byte-identical
            either way.  The flag may be flipped at any time — both engines
            share no mutable state beyond the counters.
    """

    def __init__(self, write_enabled: bool = True,
                 compile_traces: bool = False) -> None:
        self._write_enabled = write_enabled
        self.compile_traces = compile_traces
        self.tpps_executed = 0
        self.instructions_executed = 0
        # Trace-engine telemetry (benchmarks and tests read these).
        self.traces_compiled = 0
        self.trace_executions = 0
        self.trace_fallbacks = 0
        # Cache-health telemetry: how often execute_program found its plan /
        # bound trace already cached.  Plain int increments (one per hop) so
        # the hot path never tests a telemetry flag; the session layer
        # exposes them as pull-based gauges (see telemetry_counters()).
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.trace_cache_hits = 0
        self.trace_cache_misses = 0
        # Opcode dispatch table, built once; the per-instruction hot path is
        # a single dict lookup instead of an if-ladder.
        self._dispatch = {
            Opcode.NOP: self._op_nop,
            Opcode.PUSH: self._op_push,
            Opcode.POP: self._op_pop,
            Opcode.LOAD: self._op_load,
            Opcode.STORE: self._op_store,
            Opcode.CSTORE: self._op_cstore,
            Opcode.CEXEC: self._op_cexec,
        }
        # Identity-keyed caches (see the module docstring for the soundness
        # argument): every entry pins its Instruction objects via a strong
        # reference, so an id-tuple key can only match the exact objects it
        # was built from.
        # (word_bytes, *ids) -> ([(handler, instruction)], mask).
        self._plan_cache: dict[tuple, tuple[list, int]] = {}
        # Program-level trace cache: (word_bytes, mode, hop_size, *ids) ->
        # (CompiledTrace | None, pinned instructions).  write_enabled is baked
        # into each trace; the write_enabled setter clears both trace caches.
        self._trace_programs: dict[tuple, tuple] = {}
        # Memory-bound trace cache: program key + id(memory) -> (bound fn |
        # None, pinned instructions, pinned memory).  Each TCPU executes
        # against one switch's MemoryInterface in practice, so this holds
        # one binding per program.
        self._trace_cache: dict[tuple, tuple] = {}

    def telemetry_counters(self) -> dict[str, int]:
        """This TCPU's execution/cache accounting, by canonical metric name.

        The session layer sums these across every switch and exposes them
        as pull-based gauges (``tcpu.<name>``) — observation is a read at
        snapshot time, so registering telemetry never touches this hot path.
        """
        return {
            "tpps_executed": self.tpps_executed,
            "instructions_executed": self.instructions_executed,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "trace_cache_hits": self.trace_cache_hits,
            "trace_cache_misses": self.trace_cache_misses,
            "traces_compiled": self.traces_compiled,
            "trace_executions": self.trace_executions,
            "trace_fallbacks": self.trace_fallbacks,
        }

    @property
    def write_enabled(self) -> bool:
        """The §4.3 write-disable knob.  Compiled traces bake it in, so the
        setter drops every cached trace; flipping it mid-run is safe (and
        rare — it is an administrative action)."""
        return self._write_enabled

    @write_enabled.setter
    def write_enabled(self, enabled: bool) -> None:
        if enabled != self._write_enabled:
            self._trace_programs.clear()
            self._trace_cache.clear()
        self._write_enabled = enabled

    # ------------------------------------------------------------------ main
    def execute(self, tpp: TPP, memory: MemoryInterface,
                context: PacketContext) -> ExecutionResult:
        """Execute every instruction of ``tpp`` once (one hop's worth)."""
        dispatch = self._dispatch
        steps = [(dispatch[instruction.opcode], instruction)
                 for instruction in tpp.instructions]
        return self._run_steps(steps, (1 << (8 * tpp.word_bytes)) - 1,
                               tpp, memory, context)

    def execute_program(self, tpp: TPP, memory: MemoryInterface,
                        context: PacketContext) -> ExecutionResult:
        """Fast path: like :meth:`execute`, with per-program caching.

        TPPs stamped from one template share their (frozen, immutable)
        :class:`~repro.core.isa.Instruction` objects across clones, so every
        packet of an instrumented flow after the first hits the cache.  With
        ``compile_traces`` set, eligible programs run their compiled trace
        (see :mod:`repro.core.trace`); everything else runs the cached
        interpreter plan.  All paths return identical results.
        """
        instructions = tpp.instructions
        if self.compile_traces:
            key = (tpp.word_bytes, tpp.mode, tpp.hop_size,
                   id(memory), *map(id, instructions))
            entry = self._trace_cache.get(key)
            if entry is None:
                self.trace_cache_misses += 1
                entry = self._bind_trace(tpp, memory, key)
            else:
                self.trace_cache_hits += 1
            fn = entry[0]
            if fn is not None:
                self.trace_executions += 1
                return fn(self, tpp, context)
            self.trace_fallbacks += 1
        key = (tpp.word_bytes, *map(id, instructions))
        plan = self._plan_cache.get(key)
        if plan is not None:
            self.plan_cache_hits += 1
        else:
            self.plan_cache_misses += 1
            dispatch = self._dispatch
            # The steps pin the instruction objects, keeping the id key sound.
            plan = ([(dispatch[instruction.opcode], instruction)
                     for instruction in instructions],
                    (1 << (8 * tpp.word_bytes)) - 1)
            if len(self._plan_cache) < _PLAN_CACHE_LIMIT:
                self._plan_cache[key] = plan
        return self._run_steps(plan[0], plan[1], tpp, memory, context)

    def _bind_trace(self, tpp: TPP, memory: MemoryInterface, key: tuple) -> tuple:
        """Lower ``tpp``'s program (once) and bind it to ``memory`` (once).

        Both cache layers pin every object whose id appears in their key
        (instructions, and for bindings the memory interface), keeping the
        identity keys sound; ineligible programs are cached as negative
        entries so the fallback decision is also O(1).
        """
        from . import trace  # deferred: repro.core.trace imports this module

        program_key = key[:3] + key[4:]          # drop id(memory)
        program = self._trace_programs.get(program_key)
        if program is None:
            compiled = trace.compile_trace(
                tpp.instructions, word_bytes=tpp.word_bytes, mode=tpp.mode,
                hop_size=tpp.hop_size, write_enabled=self.write_enabled)
            if compiled is not None:
                self.traces_compiled += 1
            program = (compiled, tuple(tpp.instructions))
            if len(self._trace_programs) < _PLAN_CACHE_LIMIT:
                self._trace_programs[program_key] = program
        compiled, instructions = program
        fn = compiled.bind(memory) if compiled is not None else None
        entry = (fn, instructions, memory)
        if len(self._trace_cache) < _PLAN_CACHE_LIMIT:
            self._trace_cache[key] = entry
        return entry

    def _run_steps(self, steps: list, word_mask: int, tpp: TPP,
                   memory: MemoryInterface, context: PacketContext) -> ExecutionResult:
        result = ExecutionResult()
        statuses = result.statuses
        append = statuses.append
        halted = False
        executed = 0
        for handler, instruction in steps:
            if halted:
                append(InstructionStatus.SKIPPED_HALTED)
                continue
            status = handler(instruction, tpp, memory, context, result, word_mask)
            append(status)
            if status is InstructionStatus.FAILED_CONDITION:
                halted = True
                executed += 1
            elif status is InstructionStatus.EXECUTED:
                executed += 1
        result.halted = halted
        self.tpps_executed += 1
        self.instructions_executed += executed
        return result

    # ----------------------------------------------------------- per opcode
    def _op_nop(self, instruction: Instruction, tpp: TPP, memory: MemoryInterface,
                context: PacketContext, result: ExecutionResult,
                word_mask: int) -> InstructionStatus:
        return InstructionStatus.EXECUTED

    def _op_push(self, instruction: Instruction, tpp: TPP, memory: MemoryInterface,
                 context: PacketContext, result: ExecutionResult,
                 word_mask: int) -> InstructionStatus:
        value = memory.read(instruction.address, context)
        result.switch_reads += 1
        if value is None:
            return InstructionStatus.SKIPPED_NO_MEMORY
        if not tpp.push(value & word_mask):
            return InstructionStatus.SKIPPED_PACKET_FULL
        return InstructionStatus.EXECUTED

    def _op_pop(self, instruction: Instruction, tpp: TPP, memory: MemoryInterface,
                context: PacketContext, result: ExecutionResult,
                word_mask: int) -> InstructionStatus:
        if not self.write_enabled:
            return InstructionStatus.SKIPPED_WRITE_DISABLED
        value = tpp.pop()
        if value is None:
            return InstructionStatus.SKIPPED_PACKET_FULL
        ok = memory.write(instruction.address, value, context)
        result.switch_writes += 1
        if not ok:
            return InstructionStatus.SKIPPED_NO_MEMORY
        result.wrote_switch_memory = True
        return InstructionStatus.EXECUTED

    def _op_load(self, instruction: Instruction, tpp: TPP, memory: MemoryInterface,
                 context: PacketContext, result: ExecutionResult,
                 word_mask: int) -> InstructionStatus:
        value = memory.read(instruction.address, context)
        result.switch_reads += 1
        if value is None:
            return InstructionStatus.SKIPPED_NO_MEMORY
        if not tpp.write_hop_word(instruction.packet_offset, value & word_mask):
            return InstructionStatus.SKIPPED_PACKET_FULL
        return InstructionStatus.EXECUTED

    def _op_store(self, instruction: Instruction, tpp: TPP, memory: MemoryInterface,
                  context: PacketContext, result: ExecutionResult,
                  word_mask: int) -> InstructionStatus:
        if not self.write_enabled:
            return InstructionStatus.SKIPPED_WRITE_DISABLED
        value = tpp.read_hop_word(instruction.packet_offset)
        if value is None:
            return InstructionStatus.SKIPPED_PACKET_FULL
        ok = memory.write(instruction.address, value, context)
        result.switch_writes += 1
        if not ok:
            return InstructionStatus.SKIPPED_NO_MEMORY
        result.wrote_switch_memory = True
        return InstructionStatus.EXECUTED

    def _op_cstore(self, instruction: Instruction, tpp: TPP, memory: MemoryInterface,
                   context: PacketContext, result: ExecutionResult,
                   word_mask: int) -> InstructionStatus:
        """CSTORE dst, old, new — compare-and-swap gating later instructions (§3.3.3)."""
        current = memory.read(instruction.address, context)
        result.switch_reads += 1
        old = tpp.read_hop_word(instruction.packet_offset)
        new = tpp.read_hop_word(instruction.packet_offset + 1)
        if current is None or old is None or new is None:
            return InstructionStatus.FAILED_CONDITION
        current &= word_mask
        succeeded = current == (old & word_mask)
        if succeeded:
            if not self.write_enabled:
                # The store half is suppressed.  The "old" slot already holds
                # the observed value (the compare just succeeded on it), so
                # the end-host sees a coherent §3.3.3 record as-is.
                return InstructionStatus.SKIPPED_WRITE_DISABLED
            if not memory.write(instruction.address, new, context):
                return InstructionStatus.FAILED_CONDITION
            result.switch_writes += 1
            result.wrote_switch_memory = True
            observed = new & word_mask
        else:
            observed = current
        # Always write the observed value of X back into the "old" slot so the
        # end-host can tell whether the compare-and-swap succeeded.
        tpp.write_hop_word(instruction.packet_offset, observed)
        return InstructionStatus.EXECUTED if succeeded else InstructionStatus.FAILED_CONDITION

    def _op_cexec(self, instruction: Instruction, tpp: TPP, memory: MemoryInterface,
                  context: PacketContext, result: ExecutionResult,
                  word_mask: int) -> InstructionStatus:
        """CEXEC addr, [mask, value] — gate the rest of the TPP on a predicate."""
        switch_value = memory.read(instruction.address, context)
        result.switch_reads += 1
        mask = tpp.read_hop_word(instruction.packet_offset)
        value = tpp.read_hop_word(instruction.packet_offset + 1)
        if switch_value is None or mask is None or value is None:
            return InstructionStatus.FAILED_CONDITION
        if (switch_value & mask & word_mask) == (value & word_mask):
            return InstructionStatus.EXECUTED
        return InstructionStatus.FAILED_CONDITION
