"""Static analysis of TPPs.

The end-host control plane (§4.1) and the hypervisor policy layer (§4.3) never
execute untrusted TPPs directly; they *statically analyse* the at-most-five
instructions to decide whether the program:

* writes to switch memory at all (so write-disabled deployments can reject it),
* stays within the memory segments granted to the requesting application,
* is free of packet-memory hazards that would make the out-of-order,
  per-stage execution of §3.5 diverge from sequential semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from . import addressing
from .exceptions import AccessControlError
from .isa import Instruction, Opcode


@dataclass(frozen=True)
class MemoryAccess:
    """One switch-memory access performed by an instruction."""

    index: int            # instruction index within the TPP
    opcode: Opcode
    address: int
    is_write: bool


@dataclass
class AnalysisReport:
    """Everything the control plane wants to know about a TPP."""

    accesses: list[MemoryAccess] = field(default_factory=list)
    packet_writes: dict[int, list[int]] = field(default_factory=dict)   # word offset -> instr idx
    packet_reads: dict[int, list[int]] = field(default_factory=dict)
    has_switch_write: bool = False
    has_conditional: bool = False
    hazards: list[str] = field(default_factory=list)

    @property
    def read_addresses(self) -> set[int]:
        return {a.address for a in self.accesses if not a.is_write}

    @property
    def write_addresses(self) -> set[int]:
        return {a.address for a in self.accesses if a.is_write}


def analyze(instructions: Sequence[Instruction]) -> AnalysisReport:
    """Build an :class:`AnalysisReport` for an instruction sequence."""
    report = AnalysisReport()
    stack_offset = 0
    for index, instruction in enumerate(instructions):
        opcode = instruction.opcode
        if opcode is Opcode.NOP:
            continue
        if instruction.is_conditional:
            report.has_conditional = True

        # Switch-memory accesses.
        if instruction.reads_switch:
            report.accesses.append(MemoryAccess(index, opcode, instruction.address, False))
        if instruction.writes_switch:
            report.accesses.append(MemoryAccess(index, opcode, instruction.address, True))
            report.has_switch_write = True

        # Packet-memory accesses (word offsets; PUSH/POP use the running SP).
        if opcode is Opcode.PUSH:
            report.packet_writes.setdefault(stack_offset, []).append(index)
            stack_offset += 1
        elif opcode is Opcode.POP:
            report.packet_reads.setdefault(stack_offset, []).append(index)
            stack_offset += 1
        elif opcode is Opcode.LOAD:
            report.packet_writes.setdefault(instruction.packet_offset, []).append(index)
        elif opcode is Opcode.STORE:
            report.packet_reads.setdefault(instruction.packet_offset, []).append(index)
        elif opcode is Opcode.CSTORE:
            report.packet_reads.setdefault(instruction.packet_offset, []).append(index)
            report.packet_reads.setdefault(instruction.packet_offset + 1, []).append(index)
            report.packet_writes.setdefault(instruction.packet_offset, []).append(index)
        elif opcode is Opcode.CEXEC:
            report.packet_reads.setdefault(instruction.packet_offset, []).append(index)
            report.packet_reads.setdefault(instruction.packet_offset + 1, []).append(index)

    report.hazards = _find_hazards(report)
    return report


def _find_hazards(report: AnalysisReport) -> list[str]:
    """Write-after-write and read-after-write conflicts on packet memory.

    §3.5 allows the switch to reorder instruction execution across stages as
    long as the end-host ensured there are no such conflicts; the analysis
    flags them so the compiler/executor can refuse or split the TPP.
    """
    hazards: list[str] = []
    for offset, writers in report.packet_writes.items():
        if len(writers) > 1:
            hazards.append(
                f"write-after-write on packet word {offset} by instructions {writers}")
        readers = report.packet_reads.get(offset, [])
        late_readers = [r for r in readers if any(r > w for w in writers)]
        # CSTORE reads and writes its own word; that is not a cross-instruction hazard.
        cross = [r for r in late_readers if r not in writers]
        if cross:
            hazards.append(
                f"read-after-write on packet word {offset}: written by {writers}, read by {cross}")
    return hazards


def uses_write_instructions(instructions: Sequence[Instruction]) -> bool:
    """True when any instruction writes switch memory (STORE/POP/CSTORE)."""
    return any(instruction.writes_switch for instruction in instructions)


def trace_ineligibility(instructions: Sequence[Instruction]) -> Optional[str]:
    """Why this program cannot take the compiled-trace fast path, or None.

    The trace compiler (:mod:`repro.core.trace`) lowers only straight-line,
    hazard-free programs; everything else stays on the interpreter:

    * ``CSTORE``/``CEXEC`` gate all later instructions (§3.3.3), so their
      traces would need the interpreter's halt machinery anyway;
    * programs with packet-memory hazards (the §3.5 conflicts this module
      flags) are exactly where specialized in-place code could diverge from
      sequential semantics, so they are left to the reference engine.

    Returning a reason string (not just False) lets control-plane layers
    surface *why* a template will run interpreted.
    """
    for index, instruction in enumerate(instructions):
        if instruction.is_conditional:
            return (f"instruction {index} ({instruction.opcode.mnemonic}) is "
                    f"conditional: CSTORE/CEXEC programs run interpreted")
    hazards = analyze(instructions).hazards
    if hazards:
        return f"packet-memory hazards: {'; '.join(hazards)}"
    return None


@dataclass(frozen=True)
class MemoryGrant:
    """An (operation, address range) permission — §4.1's access-control tuple."""

    operation: str          # "read" or "write"
    start: int
    end: int                # inclusive

    def covers(self, address: int) -> bool:
        return self.start <= address <= self.end


def check_access(instructions: Sequence[Instruction], grants: Iterable[MemoryGrant],
                 app_id: int = 0) -> None:
    """Verify every switch-memory access is covered by a grant.

    Raises :class:`AccessControlError` listing each offending access; the
    whole-TPP reject mirrors §4.1 ("the API call returns a failure and the
    TPP is never installed").

    Reads of the standardised read-only statistics (everything outside the
    per-link application-specific scratch registers) are allowed by default —
    the grants restrict *writes* and reads of app-specific state.
    """
    grant_list = list(grants)
    violations: list[str] = []
    for access in analyze(instructions).accesses:
        operation = "write" if access.is_write else "read"
        if not access.is_write and not _is_app_specific(access.address):
            continue
        allowed = any(grant.operation == operation and grant.covers(access.address)
                      for grant in grant_list)
        if not allowed:
            violations.append(
                f"instruction {access.index} ({access.opcode.mnemonic}) {operation}s "
                f"{addressing.describe(access.address)} ({access.address:#06x}) "
                f"outside app {app_id}'s grants")
    if violations:
        raise AccessControlError("; ".join(violations))


def _is_app_specific(address: int) -> bool:
    """True for addresses in per-link/per-stage application scratch registers."""
    decoded = addressing.decode(address)
    if decoded.region in ("link", "dynamic_link"):
        return decoded.field_offset >= addressing.LINK_FIELDS["AppSpecific_0"]
    if decoded.region == "stage":
        return decoded.field_offset >= addressing.STAGE_FIELDS["Reg0"]
    return False
