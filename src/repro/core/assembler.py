"""Assembler for the TPP pseudo-assembly used throughout the paper.

The accepted syntax is exactly what the paper writes in §2, e.g.::

    PUSH [Switch:SwitchID]
    PUSH [Link:QueueSize]
    PUSH [Link:RX-Utilization]
    PUSH [Link:AppSpecific_0]   # Version number
    PUSH [Link:AppSpecific_1]   # Rfair

    CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]
    STORE  [Link:AppSpecific_1], [Packet:Hop[2]]

* ``#`` starts a comment; blank lines are ignored; a trailing ``\\`` continues
  the statement on the next line (the paper wraps its CSTORE this way).
* Switch operands use the mnemonics of :mod:`repro.core.addressing`.
* Packet operands are written ``[Packet:Hop[k]]`` (case-insensitive ``hop``).
* ``CSTORE dst, old, new`` requires ``new`` to be the word following ``old``
  because the 4-byte wire encoding stores a single packet offset (the "old"
  word) and defines "new" as the next word — the paper's own examples always
  use adjacent words.
"""

from __future__ import annotations

import re
from typing import Optional

from . import addressing
from .exceptions import AssemblyError
from .isa import Instruction, Opcode

_PACKET_OPERAND_RE = re.compile(
    r"^\[?\s*Packet\s*:\s*[Hh]op\s*\[\s*(?P<offset>\d+)\s*\]\s*\]?$")


def _strip_comment(line: str) -> str:
    if "#" in line:
        line = line[:line.index("#")]
    return line.strip()


def _split_statements(text: str) -> list[str]:
    """Join continuation lines and drop comments/blank lines."""
    statements: list[str] = []
    pending = ""
    for raw_line in text.splitlines():
        line = _strip_comment(raw_line)
        if not line:
            continue
        if line.endswith("\\"):
            pending += line[:-1].strip() + " "
            continue
        statements.append((pending + line).strip())
        pending = ""
    if pending.strip():
        statements.append(pending.strip())
    return statements


def _split_operands(operand_text: str) -> list[str]:
    """Split on commas that are not inside brackets."""
    operands, depth, current = [], 0, ""
    for char in operand_text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            operands.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        operands.append(current.strip())
    return operands


def parse_packet_operand(operand: str) -> Optional[int]:
    """Return the hop word offset for a ``[Packet:Hop[k]]`` operand, else None."""
    match = _PACKET_OPERAND_RE.match(operand.strip())
    if match is None:
        return None
    return int(match.group("offset"))


def parse_switch_operand(operand: str) -> int:
    """Resolve a switch-memory operand mnemonic to a virtual address."""
    operand = operand.strip()
    # Allow raw hexadecimal/decimal addresses for tooling and tests.
    if re.fullmatch(r"0[xX][0-9a-fA-F]+|\d+", operand):
        return int(operand, 0)
    try:
        return addressing.resolve(operand)
    except addressing.AddressError as exc:  # type: ignore[attr-defined]
        raise AssemblyError(str(exc)) from exc


def parse_statement(statement: str) -> Instruction:
    """Parse one statement into an :class:`Instruction`."""
    parts = statement.split(None, 1)
    mnemonic = parts[0].upper()
    operand_text = parts[1] if len(parts) > 1 else ""
    operands = _split_operands(operand_text)

    try:
        opcode = Opcode[mnemonic]
    except KeyError:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r} in statement {statement!r}") from None

    if opcode is Opcode.NOP:
        if operands:
            raise AssemblyError("NOP takes no operands")
        return Instruction(Opcode.NOP)

    if opcode in (Opcode.PUSH, Opcode.POP):
        if len(operands) != 1:
            raise AssemblyError(f"{mnemonic} takes exactly one switch operand: {statement!r}")
        return Instruction(opcode, address=parse_switch_operand(operands[0]))

    if opcode in (Opcode.LOAD, Opcode.STORE, Opcode.CEXEC):
        if len(operands) != 2:
            raise AssemblyError(f"{mnemonic} takes two operands: {statement!r}")
        address = parse_switch_operand(operands[0])
        offset = parse_packet_operand(operands[1])
        if offset is None:
            raise AssemblyError(
                f"{mnemonic}'s second operand must be a [Packet:Hop[k]] reference: {statement!r}")
        return Instruction(opcode, address=address, packet_offset=offset)

    if opcode is Opcode.CSTORE:
        if len(operands) != 3:
            raise AssemblyError(f"CSTORE takes three operands: {statement!r}")
        address = parse_switch_operand(operands[0])
        old_offset = parse_packet_operand(operands[1])
        new_offset = parse_packet_operand(operands[2])
        if old_offset is None or new_offset is None:
            raise AssemblyError(f"CSTORE's last two operands must be packet references: {statement!r}")
        if new_offset != old_offset + 1:
            raise AssemblyError(
                "CSTORE requires the 'new' operand to be the packet word immediately "
                f"after 'old' (got Hop[{old_offset}] and Hop[{new_offset}])")
        return Instruction(opcode, address=address, packet_offset=old_offset)

    raise AssemblyError(f"unsupported opcode {mnemonic}")  # pragma: no cover


def parse_program(text: str) -> list[Instruction]:
    """Parse a multi-line pseudo-assembly program into instructions."""
    return [parse_statement(statement) for statement in _split_statements(text)]


def disassemble(instructions: list[Instruction]) -> str:
    """Render instructions back into pseudo-assembly (round-trips with parse)."""
    return "\n".join(str(instruction) for instruction in instructions)
