"""The unified, memory-mapped address space TPPs use to name switch state.

The paper (§3.3.1, appendix Tables 6–8) exposes switch statistics through a
single virtual address space with per-switch, per-stage, per-port (link),
per-queue and per-packet namespaces.  Mnemonics such as
``[Queue:QueueOccupancy]`` or ``[Link:RX-Utilization]`` are resolved by the
compiler into 16-bit virtual addresses that every TPP-capable switch
understands.

Address map (16-bit virtual addresses)
---------------------------------------

========================  =====================================================
``0x0000 – 0x00FF``       ``Switch:`` — global, per-ASIC values
``0x0100 – 0x0FFF``       ``Stage$i:`` — per match-action stage / flow table
``0x1000 – 0x6FFF``       ``Link$i:`` — per port; 64-word block per port
``0x7000 – 0x9FFF``       ``Queue$i$j:`` — per (port, queue); 32-word blocks
``0xA000 – 0xA0FF``       ``PacketMetadata:`` — resolved per packet
``0xB000 – 0xB1FF``       packet-relative ``Link:`` / ``Queue:`` aliases that
                          the switch resolves against the packet's own
                          input/output port and output queue at execution time
========================  =====================================================

Two conventions worth calling out:

* Index-less ``Link:`` mnemonics are *packet relative*: ``TX-*``, queue and
  app-specific fields resolve to the packet's **output** port, while ``RX-*``
  fields resolve to the packet's **input** port — matching how the paper's
  RCP* and CONGA* TPPs sample the links a packet actually traverses.
* Utilisations are stored as integers in basis points (1/100 of a percent,
  0–10000) so they fit comfortably in a 16-bit packet-memory word.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from .exceptions import AddressError

# --------------------------------------------------------------------------
# Region bases and sizes
# --------------------------------------------------------------------------
SWITCH_BASE = 0x0000
SWITCH_REGION_END = 0x00FF

STAGE_BASE = 0x0100
STAGE_BLOCK_WORDS = 0x40
STAGE_REGION_END = 0x0FFF
MAX_STAGES = (STAGE_REGION_END + 1 - STAGE_BASE) // STAGE_BLOCK_WORDS  # 60

LINK_BASE = 0x1000
LINK_BLOCK_WORDS = 0x40
LINK_REGION_END = 0x6FFF
MAX_LINKS = (LINK_REGION_END + 1 - LINK_BASE) // LINK_BLOCK_WORDS  # 384

QUEUE_BASE = 0x7000
QUEUE_BLOCK_WORDS = 0x20
QUEUES_PER_PORT = 8
QUEUE_REGION_END = 0x9FFF

PACKET_METADATA_BASE = 0xA000
PACKET_METADATA_END = 0xA0FF

DYNAMIC_LINK_BASE = 0xB000   # packet-relative Link: alias
DYNAMIC_QUEUE_BASE = 0xB100  # packet-relative Queue: alias
DYNAMIC_END = 0xB1FF

ADDRESS_MAX = 0xFFFF

# --------------------------------------------------------------------------
# Field offsets inside each block
# --------------------------------------------------------------------------
SWITCH_FIELDS = {
    "SwitchID": 0,
    "ID": 0,                    # alias used by some examples in the paper
    "VersionNumber": 1,
    "Clock": 2,
    "ClockFrequency": 3,
    "VendorID": 4,
    "NumPorts": 5,
    "Uptime": 6,
}

STAGE_FIELDS = {
    "VersionNumber": 0,
    "ReferenceCount": 1,
    "LookupPackets": 2,
    "LookupBytes": 3,
    "MatchPackets": 4,
    "MatchBytes": 5,
    "Reg0": 8, "Reg1": 9, "Reg2": 10, "Reg3": 11,
    "Reg4": 12, "Reg5": 13, "Reg6": 14, "Reg7": 15,
}

LINK_FIELDS = {
    "ID": 0,
    "QueueSizeBytes": 1,
    "QueueSizePackets": 2,
    "QueueSize": 1,             # alias: RCP's q(t) is measured in bytes
    "TX-Bytes": 3,
    "TX-Packets": 4,
    "TX-Utilization": 5,
    "RX-Bytes": 6,
    "RX-Packets": 7,
    "RX-Utilization": 8,
    "Drop-Bytes": 9,
    "Drop-Packets": 10,
    "PortStatus": 11,
    "TX-Rate": 12,
    "RX-Rate": 13,
    "Capacity": 14,
    "AppSpecific_0": 16, "AppSpecific_1": 17, "AppSpecific_2": 18,
    "AppSpecific_3": 19, "AppSpecific_4": 20, "AppSpecific_5": 21,
    "AppSpecific_6": 22, "AppSpecific_7": 23,
}

QUEUE_FIELDS = {
    "QueueOccupancy": 0,        # packets currently queued (Figure 1's unit)
    "QueueOccupancyBytes": 1,
    "Drop-Packets": 2,
    "Drop-Bytes": 3,
    "TX-Packets": 4,
    "TX-Bytes": 5,
}

PACKET_METADATA_FIELDS = {
    "InputPort": 0,
    "OutputPort": 1,
    "OutputQueue": 2,
    "MatchedEntryID": 3,
    "MatchedEntryVersion": 4,
    "MatchedStage": 5,
    "HopNumber": 6,
    "PathID": 7,
    "PacketLength": 8,
    "ArrivalTimestamp": 9,
}

# RX-flavoured link fields resolve against the packet's *input* port.
_RX_LINK_FIELDS = {"RX-Bytes", "RX-Packets", "RX-Utilization", "RX-Rate"}

_MNEMONIC_RE = re.compile(
    r"^\s*\[?\s*(?P<ns>[A-Za-z]+)(?P<idx>(?:\$\d+)*)\s*:\s*(?P<field>[A-Za-z0-9_\-]+)\s*\]?\s*$")


@dataclass(frozen=True)
class DecodedAddress:
    """The switch-side interpretation of a 16-bit virtual address."""

    region: str            # "switch" | "stage" | "link" | "queue" | "packet_metadata"
                            # | "dynamic_link" | "dynamic_queue"
    field_offset: int
    index: Optional[int] = None          # stage index or port index
    queue_index: Optional[int] = None    # queue index within a port

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        extra = "" if self.index is None else f"[{self.index}]"
        if self.queue_index is not None:
            extra += f"[{self.queue_index}]"
        return f"{self.region}{extra}+{self.field_offset}"


# --------------------------------------------------------------------------
# Mnemonic -> address resolution (compile time)
# --------------------------------------------------------------------------
def stage_address(stage: int, field: str) -> int:
    """Address of ``field`` in the per-stage block for ``stage``."""
    if not 0 <= stage < MAX_STAGES:
        raise AddressError(f"stage index {stage} out of range [0, {MAX_STAGES})")
    offset = _field_offset(STAGE_FIELDS, field, "Stage")
    return STAGE_BASE + stage * STAGE_BLOCK_WORDS + offset


def link_address(port: int, field: str) -> int:
    """Address of ``field`` in the per-port block for port ``port``."""
    if not 0 <= port < MAX_LINKS:
        raise AddressError(f"port index {port} out of range [0, {MAX_LINKS})")
    offset = _field_offset(LINK_FIELDS, field, "Link")
    return LINK_BASE + port * LINK_BLOCK_WORDS + offset


def queue_address(port: int, queue: int, field: str) -> int:
    """Address of ``field`` for queue ``queue`` on port ``port``."""
    if not 0 <= queue < QUEUES_PER_PORT:
        raise AddressError(f"queue index {queue} out of range [0, {QUEUES_PER_PORT})")
    if not 0 <= port < MAX_LINKS:
        raise AddressError(f"port index {port} out of range [0, {MAX_LINKS})")
    offset = _field_offset(QUEUE_FIELDS, field, "Queue")
    addr = QUEUE_BASE + (port * QUEUES_PER_PORT + queue) * QUEUE_BLOCK_WORDS + offset
    if addr > QUEUE_REGION_END:
        raise AddressError(f"queue block for port {port} exceeds the queue region")
    return addr


def _field_offset(table: dict, field: str, namespace: str) -> int:
    try:
        return table[field]
    except KeyError:
        raise AddressError(f"unknown field '{field}' in namespace '{namespace}'; "
                           f"known fields: {sorted(table)}") from None


def resolve(mnemonic: str) -> int:
    """Resolve a mnemonic like ``[Link:RX-Utilization]`` to a virtual address.

    Index-less ``Link:``/``Queue:`` mnemonics map to the packet-relative
    dynamic region; ``Link$3:``/``Queue$3$1:``/``Stage$2:`` forms map to the
    concrete blocks.
    """
    match = _MNEMONIC_RE.match(mnemonic)
    if match is None:
        raise AddressError(f"malformed mnemonic: {mnemonic!r}")
    namespace = match.group("ns")
    indices = [int(tok) for tok in match.group("idx").split("$") if tok]
    field = match.group("field")

    ns = namespace.lower()
    if ns == "switch":
        return SWITCH_BASE + _field_offset(SWITCH_FIELDS, field, "Switch")
    if ns == "stage":
        if len(indices) != 1:
            raise AddressError(f"Stage mnemonic needs one index, e.g. [Stage$1:Reg0]; got {mnemonic!r}")
        return stage_address(indices[0], field)
    if ns == "link":
        if not indices:
            return DYNAMIC_LINK_BASE + _field_offset(LINK_FIELDS, field, "Link")
        if len(indices) == 1:
            return link_address(indices[0], field)
        raise AddressError(f"Link mnemonic takes at most one index; got {mnemonic!r}")
    if ns == "queue":
        if not indices:
            return DYNAMIC_QUEUE_BASE + _field_offset(QUEUE_FIELDS, field, "Queue")
        if len(indices) == 2:
            return queue_address(indices[0], indices[1], field)
        raise AddressError(f"Queue mnemonic takes zero or two indices; got {mnemonic!r}")
    if ns == "packetmetadata":
        return PACKET_METADATA_BASE + _field_offset(PACKET_METADATA_FIELDS, field, "PacketMetadata")
    raise AddressError(f"unknown namespace '{namespace}' in {mnemonic!r}")


# --------------------------------------------------------------------------
# Address -> region decoding (execution time, switch side)
# --------------------------------------------------------------------------
@lru_cache(maxsize=None)
def decode(address: int) -> DecodedAddress:
    """Classify a virtual address into its region, block index and field offset.

    Pure over the 16-bit address space, so results are memoized (the TCPU
    decodes one address per memory-touching instruction per packet per hop;
    the cache is bounded by the 65536 possible addresses).
    """
    if not 0 <= address <= ADDRESS_MAX:
        raise AddressError(f"address {address:#x} outside the 16-bit address space")
    if address <= SWITCH_REGION_END:
        return DecodedAddress("switch", address - SWITCH_BASE)
    if STAGE_BASE <= address <= STAGE_REGION_END:
        rel = address - STAGE_BASE
        return DecodedAddress("stage", rel % STAGE_BLOCK_WORDS, index=rel // STAGE_BLOCK_WORDS)
    if LINK_BASE <= address <= LINK_REGION_END:
        rel = address - LINK_BASE
        return DecodedAddress("link", rel % LINK_BLOCK_WORDS, index=rel // LINK_BLOCK_WORDS)
    if QUEUE_BASE <= address <= QUEUE_REGION_END:
        rel = address - QUEUE_BASE
        block = rel // QUEUE_BLOCK_WORDS
        return DecodedAddress("queue", rel % QUEUE_BLOCK_WORDS,
                              index=block // QUEUES_PER_PORT,
                              queue_index=block % QUEUES_PER_PORT)
    if PACKET_METADATA_BASE <= address <= PACKET_METADATA_END:
        return DecodedAddress("packet_metadata", address - PACKET_METADATA_BASE)
    if DYNAMIC_LINK_BASE <= address < DYNAMIC_QUEUE_BASE:
        return DecodedAddress("dynamic_link", address - DYNAMIC_LINK_BASE)
    if DYNAMIC_QUEUE_BASE <= address <= DYNAMIC_END:
        return DecodedAddress("dynamic_queue", address - DYNAMIC_QUEUE_BASE)
    raise AddressError(f"address {address:#x} does not belong to any mapped region")


def is_dynamic_rx_field(field_offset: int) -> bool:
    """True when a dynamic-link field offset is an RX statistic (input-port relative)."""
    return field_offset in {LINK_FIELDS[name] for name in _RX_LINK_FIELDS}


def describe(address: int) -> str:
    """Human-readable rendering of an address (best effort), for tooling/tests."""
    decoded = decode(address)
    tables = {
        "switch": SWITCH_FIELDS, "stage": STAGE_FIELDS, "link": LINK_FIELDS,
        "queue": QUEUE_FIELDS, "packet_metadata": PACKET_METADATA_FIELDS,
        "dynamic_link": LINK_FIELDS, "dynamic_queue": QUEUE_FIELDS,
    }
    table = tables[decoded.region]
    names = [name for name, off in table.items() if off == decoded.field_offset]
    field = names[0] if names else f"+{decoded.field_offset}"
    if decoded.region == "switch":
        return f"[Switch:{field}]"
    if decoded.region == "stage":
        return f"[Stage${decoded.index}:{field}]"
    if decoded.region == "link":
        return f"[Link${decoded.index}:{field}]"
    if decoded.region == "queue":
        return f"[Queue${decoded.index}${decoded.queue_index}:{field}]"
    if decoded.region == "packet_metadata":
        return f"[PacketMetadata:{field}]"
    if decoded.region == "dynamic_link":
        return f"[Link:{field}]"
    return f"[Queue:{field}]"
