"""The paper's primary contribution: tiny packet programs.

Public surface:

* :mod:`repro.core.isa` — the instruction set and its 4-byte wire encoding.
* :mod:`repro.core.addressing` — the unified memory map for switch state.
* :mod:`repro.core.assembler` / :mod:`repro.core.compiler` — pseudo-assembly
  front end producing ready-to-send TPPs.
* :mod:`repro.core.packet_format` — the TPP header + packet-memory layout.
* :mod:`repro.core.tcpu` — the execution engine switches embed.
* :mod:`repro.core.static_analysis` — the checks the end-host control plane
  runs before admitting a TPP into the network.
"""

from .addressing import resolve, decode, describe
from .assembler import parse_program, disassemble
from .compiler import CompiledTPP, compile_tpp, collector_tpp, expand_stack_program
from .exceptions import (AccessControlError, AddressError, AssemblyError,
                         CapacityError, EncodingError, ExecutionError, TPPError)
from .isa import Instruction, Opcode, MAX_INSTRUCTIONS
from .packet_format import AddressingMode, TPP, make_tpp
from .static_analysis import MemoryGrant, analyze, check_access, uses_write_instructions
from .tcpu import ExecutionResult, InstructionStatus, PacketContext, TCPU

__all__ = [
    "AccessControlError", "AddressError", "AddressingMode", "AssemblyError",
    "CapacityError", "CompiledTPP", "EncodingError", "ExecutionError",
    "ExecutionResult", "Instruction", "InstructionStatus", "MAX_INSTRUCTIONS",
    "MemoryGrant", "Opcode", "PacketContext", "TCPU", "TPP", "TPPError",
    "analyze", "check_access", "collector_tpp", "compile_tpp", "decode",
    "describe", "disassemble", "expand_stack_program", "make_tpp",
    "parse_program", "resolve", "uses_write_instructions",
]
