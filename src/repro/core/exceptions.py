"""Error hierarchy for the TPP core."""

from __future__ import annotations


class TPPError(Exception):
    """Base class for all TPP-related errors."""


class AssemblyError(TPPError):
    """Raised when TPP pseudo-assembly cannot be parsed or assembled."""


class AddressError(TPPError):
    """Raised for unknown mnemonics or malformed virtual addresses."""


class EncodingError(TPPError):
    """Raised when a TPP cannot be encoded into, or decoded from, bytes."""


class ExecutionError(TPPError):
    """Raised on contract violations during TCPU execution.

    Note that *graceful* failures (an instruction addressing memory that does
    not exist on the current switch) are not errors — per §3.3 the instruction
    is simply skipped.  ExecutionError signals misuse of the execution engine
    itself (e.g. malformed instruction streams).
    """


class AccessControlError(TPPError):
    """Raised when a TPP violates the access-control policy (§4.1/§4.3)."""


class CapacityError(TPPError):
    """Raised when a TPP exceeds size limits (instruction count, MTU, memory)."""
