"""The paper's dataplane tasks, refactored over the TPP interface (§2)."""

from . import (conga, losslocal, microburst, netsight, netverify, rcp,
               sketches)

__all__ = ["conga", "losslocal", "microburst", "netsight", "netverify",
           "rcp", "sketches"]
