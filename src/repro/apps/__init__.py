"""The paper's dataplane tasks, refactored over the TPP interface (§2)."""

from . import conga, microburst, netsight, netverify, rcp, sketches

__all__ = ["conga", "microburst", "netsight", "netverify", "rcp", "sketches"]
