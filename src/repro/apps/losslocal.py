"""Loss localization: per-hop counter diffs name the corrupting link.

The gray-failure case the paper's diagnosis pitch is really about: a link
that stays *up* but silently corrupts a fraction of the packets crossing
it.  Path-level monitors see elevated loss somewhere; the TPP sees which
hop.  Every instrumented packet carries::

    PUSH [Switch:SwitchID]
    PUSH [Link:RX-Packets]
    PUSH [Link:TX-Packets]

so each hop stamps (switch id, the input port's cumulative rx-packet
counter, the output port's cumulative tx-packet counter).  For two
adjacent hops *i -> i+1* on the packet's path, the receiving host computes
the **deficit**::

    deficit = tx[i] + 1 - rx[i+1]

``tx[i]`` is read *before* the packet itself is transmitted and
``rx[i+1]`` *after* it is received (the +1 corrects for the packet
itself), and the link delivers in FIFO order — so on a healthy link every
packet transmitted before this one has already been counted at the far
side and the deficit is at most zero (queue-ahead traffic only drives it
negative).  Packets corrupted on the link advance ``tx`` but never
``rx``, so the deficit grows by one per cumulative corruption: the
directed switch pair with the largest positive deficit *names the lossy
link*, from nothing but two counters per hop.

The aggregator keeps a per-pair max deficit (``link_deficits``) — the
face the :class:`repro.faults.policy.RemediationController` polls — and
emits it as a mergeable summary, so localization also works on the merged
collect-plane view.  :func:`localize` turns either into ranked
:class:`LinkSuspect` verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.collect import CounterSummary, SeriesSummary, SummaryBundle
from repro.core.compiler import CompiledTPP, compile_tpp
from repro.core.packet_format import TPP
from repro.endhost import Aggregator, Collector, PacketFilter
from repro.net import mbps
from repro.net.packet import Packet
from repro.session import ExperimentResult, Scenario

#: Three counters per hop: who am I, what arrived, what left.
LOSSLOCAL_TPP_SOURCE = """
PUSH [Switch:SwitchID]
PUSH [Link:RX-Packets]
PUSH [Link:TX-Packets]
"""

#: Values each hop appends to packet memory.
VALUES_PER_HOP = 3


def losslocal_tpp(num_hops: int = 6, app_id: int = 0) -> CompiledTPP:
    """Compile the loss-localization TPP."""
    return compile_tpp(LOSSLOCAL_TPP_SOURCE, num_hops=num_hops, app_id=app_id)


@dataclass(frozen=True)
class HopRecord:
    """One hop's stamp: switch id plus the two port counters."""

    switch_id: int
    rx_packets: int
    tx_packets: int


@dataclass(frozen=True)
class DeficitSample:
    """One adjacent-hop diff extracted from a completed TPP."""

    time: float
    pair: tuple[int, int]            # (upstream switch id, downstream switch id)
    deficit: int


@dataclass(frozen=True)
class LinkSuspect:
    """A ranked verdict: ``link`` shows a ``deficit``-packet tx/rx gap."""

    link: str
    pair: tuple[int, int]
    deficit: int


class LossLocalizationAggregator(Aggregator):
    """Per-host aggregator: diffs adjacent hops, keeps per-pair max deficits."""

    def __init__(self, host_name: str, collector: Optional[Collector] = None) -> None:
        super().__init__(host_name, collector)
        self.samples: list[DeficitSample] = []
        #: Directed (upstream sid, downstream sid) -> max deficit observed.
        self.link_deficits: dict[tuple[int, int], int] = {}

    def on_tpp(self, tpp: TPP, packet: Packet) -> None:
        super().on_tpp(tpp, packet)
        now = packet.delivered_at if packet.delivered_at is not None else 0.0
        hops = []
        for words in tpp.words_by_hop(VALUES_PER_HOP):
            if len(words) < VALUES_PER_HOP:
                continue
            hops.append(HopRecord(switch_id=words[0], rx_packets=words[1],
                                  tx_packets=words[2]))
        for upstream, downstream in zip(hops, hops[1:]):
            pair = (upstream.switch_id, downstream.switch_id)
            deficit = upstream.tx_packets + 1 - downstream.rx_packets
            self.samples.append(DeficitSample(time=now, pair=pair,
                                              deficit=deficit))
            if deficit > self.link_deficits.get(pair, -(1 << 62)):
                self.link_deficits[pair] = deficit

    def summarize(self) -> SummaryBundle:
        """Counters plus the per-pair max deficits as a mergeable summary.

        Each deficit travels as a ``(0.0, "a->b", max)`` series sample: the
        shard tier's last-writer-wins keeps one (cumulative) snapshot per
        host, and the multiset union across hosts preserves every host's
        maximum for :func:`merged_deficits` to fold.
        """
        counters = CounterSummary({"tpps": self.tpps_received,
                                   "tpps_truncated": self.tpps_truncated,
                                   "samples": len(self.samples)})
        deficits = SeriesSummary()
        for (sid_a, sid_b), deficit in self.link_deficits.items():
            deficits.add(0.0, f"{sid_a}->{sid_b}", deficit)
        return SummaryBundle({"counters": counters, "max_deficits": deficits})


def merged_deficits(result: ExperimentResult,
                    app: str = "loss-localization") -> dict[tuple[int, int], int]:
    """Per-pair max deficits folded across every host's aggregator."""
    folded: dict[tuple[int, int], int] = {}
    for host in sorted(result.aggregators(app)):
        for pair, deficit in result.aggregators(app)[host].link_deficits.items():
            if deficit > folded.get(pair, -(1 << 62)):
                folded[pair] = deficit
    return folded


def localize(result: ExperimentResult, *, app: str = "loss-localization",
             threshold: int = 1) -> list[LinkSuspect]:
    """Ranked suspects: pairs with deficit >= threshold, worst first.

    Maps each directed switch-id pair back to the physical link through
    the live network; ties rank by pair for determinism.
    """
    network = result.network
    names = {switch.switch_id: name
             for name, switch in network.switches.items()}
    suspects = []
    for pair, deficit in sorted(merged_deficits(result, app).items(),
                                key=lambda kv: (-kv[1], kv[0])):
        if deficit < threshold:
            continue
        name_a, name_b = names.get(pair[0]), names.get(pair[1])
        if name_a is None or name_b is None:
            continue
        link = network.link_between(name_a, name_b)
        if link is None:
            continue
        suspects.append(LinkSuspect(link=link.name, pair=pair, deficit=deficit))
    return suspects


@dataclass
class LossLocalizationResult:
    """What the detector (and any remediation loop) concluded."""

    suspects: list[LinkSuspect]
    deficits: dict[tuple[int, int], int]
    samples: list[DeficitSample]
    tpps_received: int
    fault_events_applied: int
    packets_corrupted: int
    remediation_actions: int
    drop_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def accused_link(self) -> Optional[str]:
        """The top suspect's link name (None when the fabric looks clean)."""
        return self.suspects[0].link if self.suspects else None


def _to_losslocal_result(result: ExperimentResult) -> LossLocalizationResult:
    return LossLocalizationResult(
        suspects=localize(result),
        deficits=merged_deficits(result),
        samples=result.merged_samples("loss-localization"),
        tpps_received=result.tpps_received,
        fault_events_applied=result.fault_events_applied,
        packets_corrupted=result.packets_corrupted,
        remediation_actions=result.remediation_actions,
        drop_reasons=dict(result.drop_reasons))


def losslocal_scenario(name: str = "loss-localization", *, k: int = 4,
                       link_rate_bps: float = mbps(100),
                       offered_load: float = 0.2, message_bytes: int = 4_000,
                       sample_frequency: int = 1, seed: int = 1,
                       num_hops: int = 6, faults=None,
                       remediation=None) -> Scenario:
    """The loss-localization experiment on a k-ary fat tree.

    All-hosts message traffic carries the detector TPP; pass ``faults``
    (a :class:`~repro.faults.FaultPlan` / :class:`~repro.faults.FaultSpec`
    or generator kwargs via ``Scenario.faults``) to degrade links and
    ``remediation`` (a policy name or
    :class:`~repro.faults.RemediationSpec`) to act on the verdicts.
    ``losslocal_scenario(...).run(duration_s=...)`` returns a
    :class:`LossLocalizationResult`.
    """
    scenario = (Scenario("fat-tree", seed=seed, name=name, k=k,
                         link_rate_bps=link_rate_bps)
                .tpp("loss-localization", LOSSLOCAL_TPP_SOURCE,
                     num_hops=num_hops,
                     filter=PacketFilter(protocol="udp"),
                     sample_frequency=sample_frequency,
                     aggregator=LossLocalizationAggregator,
                     collector=Collector("losslocal-collector"))
                .workload("messages", link_rate_bps=link_rate_bps,
                          offered_load=offered_load,
                          message_bytes=message_bytes, seed=seed)
                .map_result(_to_losslocal_result))
    if faults is not None:
        scenario.faults(faults)
    if remediation is not None:
        scenario.remediation(remediation)
    return scenario
