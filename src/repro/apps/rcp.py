"""RCP*: the end-host refactoring of the Rate Control Protocol (§2.2, Figure 2).

The network allocates two per-link application registers:

* ``Link:AppSpecific_0`` — a version number,
* ``Link:AppSpecific_1`` — the link's current fair-share rate ``R``.

Every flow runs a rate controller at its sender that executes the three
phases of §2.2 once per control period:

1. **Collect** — a five-instruction TPP reads, at every hop, the link
   capacity, queue backlog, utilisation, and the (version, R) pair.
2. **Compute** — the sender runs the RCP control equation (Eq. 1) per link to
   produce an updated fair rate ``R_new`` for each hop.
3. **Update** — a CSTORE-guarded TPP writes ``R_new`` back, bumping the
   version so concurrent updates by other flows are not lost.

The flow then sets its sending rate to the α-fair aggregate of the per-link
rates (Eq. 2): α→∞ gives max-min fairness (the minimum), α=1 proportional
fairness.

Deviation from the paper's listing: the collect TPP reads
``[Link:Capacity]`` instead of ``[Switch:SwitchID]`` (and TX- rather than
RX-utilisation) so that a controller needs no out-of-band knowledge of the
topology; both reads address the same output link the queue sample refers
to.  DESIGN.md records this substitution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import partial
from typing import Optional

from repro.core import addressing
from repro.core.compiler import compile_tpp
from repro.core.isa import Instruction, Opcode
from repro.core.packet_format import AddressingMode, TPP, make_tpp
from repro.endhost import EndHostStack
from repro.net import RateLimitedFlow, ThroughputMeter, mbps
from repro.session import ExperimentResult, Scenario
from repro.stats import TimeSeries
from repro.switches.counters import UTILIZATION_SCALE

#: Rate quantum used to fit rates into 16-bit packet-memory words: one unit
#: is 10 kb/s, so a 16-bit word covers rates up to ~655 Mb/s.
RATE_UNIT_BPS = 10_000.0

#: Proportional fairness / max-min fairness aliases for the α parameter.
ALPHA_PROPORTIONAL = 1.0
ALPHA_MAXMIN = math.inf

COLLECT_TPP_SOURCE = """
PUSH [Link:Capacity]
PUSH [Link:QueueSizeBytes]
PUSH [Link:TX-Utilization]
PUSH [Link:AppSpecific_0]   # version number
PUSH [Link:AppSpecific_1]   # Rfair
"""

COLLECT_VALUES_PER_HOP = 5


@dataclass
class RcpParameters:
    """The control-equation constants (Eq. 1)."""

    alpha_gain: float = 0.5          # `a` in the paper
    beta_gain: float = 0.25          # `b` in the paper
    average_rtt_s: float = 0.02      # `d`: the average RTT of flows on the link
    period_s: float = 0.01           # `T`: how often each flow runs the loop
    min_rate_bps: float = 100e3      # floor to keep flows alive
    initial_flow_rate_bps: float = 1e6   # "all flows start at 1 Mb/s"


def rcp_update(rate_bps: float, input_rate_bps: float, queue_bytes: float,
               capacity_bps: float, params: RcpParameters) -> float:
    """One application of the RCP control equation (Eq. 1), clamped to [min, C]."""
    if capacity_bps <= 0:
        return params.min_rate_bps
    d = params.average_rtt_s
    T = min(params.period_s, d)
    queue_term = params.beta_gain * (queue_bytes * 8.0) / d
    feedback = (T / d) * (params.alpha_gain * (input_rate_bps - capacity_bps) + queue_term)
    new_rate = rate_bps * (1.0 - feedback / capacity_bps)
    return max(params.min_rate_bps, min(capacity_bps, new_rate))


def alpha_fair_rate(link_rates_bps: list[float], alpha: float) -> float:
    """Aggregate per-link fair rates into one flow rate (Eq. 2).

    ``alpha`` = 1 is proportional fairness, ``alpha`` → ∞ is max-min (the
    minimum of the per-link rates).
    """
    rates = [max(rate, 1.0) for rate in link_rates_bps if rate > 0]
    if not rates:
        raise ValueError("alpha_fair_rate needs at least one positive link rate")
    if math.isinf(alpha):
        return min(rates)
    if alpha == 0:
        # α = 0 maximises total throughput: the flow is limited only by its
        # tightest link, same as max-min for a single flow's perspective.
        return min(rates)
    # Normalise by the minimum rate so large α does not underflow to zero.
    minimum = min(rates)
    total = sum((rate / minimum) ** (-alpha) for rate in rates)
    return minimum * total ** (-1.0 / alpha)


def collect_tpp(num_hops: int = 8, app_id: int = 0):
    """Compile the phase-1 collection TPP."""
    return compile_tpp(COLLECT_TPP_SOURCE, num_hops=num_hops, app_id=app_id)


def build_update_tpp(per_hop_updates: list[tuple[int, int]], app_id: int = 0,
                     num_hops: Optional[int] = None) -> TPP:
    """Build the phase-3 update TPP.

    ``per_hop_updates`` holds ``(observed_version, new_rate_units)`` per hop,
    in path order.  The program is the paper's::

        CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]
        STORE  [Link:AppSpecific_1], [Packet:Hop[2]]

    with packet memory prefilled to ``V_i, V_i + 1, R_new_i`` for hop *i*.
    """
    instructions = [
        Instruction(Opcode.CSTORE,
                    address=addressing.resolve("[Link:AppSpecific_0]"), packet_offset=0),
        Instruction(Opcode.STORE,
                    address=addressing.resolve("[Link:AppSpecific_1]"), packet_offset=2),
    ]
    hops = num_hops if num_hops is not None else max(len(per_hop_updates), 1)
    tpp = make_tpp(instructions, num_hops=hops, mode=AddressingMode.HOP,
                   app_id=app_id, values_per_hop=3)
    for hop, (version, rate_units) in enumerate(per_hop_updates):
        tpp.write_hop_word(0, version, hop=hop)
        tpp.write_hop_word(1, (version + 1) & 0xFFFF, hop=hop)
        tpp.write_hop_word(2, rate_units, hop=hop)
    return tpp


@dataclass
class LinkSample:
    """Per-hop state parsed from a completed collection TPP."""

    capacity_bps: float
    queue_bytes: int
    utilization: float            # fraction of capacity
    version: int
    fair_rate_bps: float


def parse_collect_tpp(tpp: TPP) -> list[LinkSample]:
    """Decode the per-hop samples from an executed collection TPP."""
    samples = []
    for hop in tpp.words_by_hop(COLLECT_VALUES_PER_HOP)[:tpp.hop_number]:
        if len(hop) < COLLECT_VALUES_PER_HOP:
            continue
        capacity_mbps, queue_bytes, util_bp, version, rate_units = hop
        capacity_bps = capacity_mbps * 1e6
        fair_rate = rate_units * RATE_UNIT_BPS if rate_units > 0 else capacity_bps
        samples.append(LinkSample(capacity_bps=capacity_bps, queue_bytes=queue_bytes,
                                  utilization=util_bp / UTILIZATION_SCALE,
                                  version=version, fair_rate_bps=fair_rate))
    return samples


class RcpFlowController:
    """The per-flow rate controller + rate limiter pair of §2.2."""

    def __init__(self, stack: EndHostStack, flow: RateLimitedFlow, dst: str,
                 params: RcpParameters, alpha: float = ALPHA_MAXMIN,
                 bottleneck_only: bool = True) -> None:
        self.stack = stack
        self.flow = flow
        self.dst = dst
        self.params = params
        self.alpha = alpha
        #: Ignore hops whose links are far from saturation-relevant (the
        #: host-switch edge links are provisioned 10x in the Figure 2 setup).
        self.bottleneck_only = bottleneck_only
        self.control_rounds = 0
        self.updates_sent = 0
        self.rate_history = TimeSeries()
        self._collect_template = collect_tpp(app_id=stack.executor_app_id).tpp
        flow.set_rate(params.initial_flow_rate_bps)
        self._process = stack.host.sim.schedule_periodic(params.period_s, self._control_round)

    def stop(self) -> None:
        self._process.stop()

    # ------------------------------------------------------------- phase 1+2+3
    def _control_round(self) -> None:
        self.control_rounds += 1
        self.stack.executor.execute(self._collect_template.clone(), self.dst,
                                    self._on_collected, retries=1,
                                    timeout_s=4 * self.params.period_s)

    def _on_collected(self, tpp: Optional[TPP]) -> None:
        if tpp is None or tpp.hop_number == 0:
            return
        samples = parse_collect_tpp(tpp)
        if not samples:
            return

        relevant = samples
        if self.bottleneck_only:
            min_capacity = min(sample.capacity_bps for sample in samples)
            relevant = [s for s in samples if s.capacity_bps <= 2 * min_capacity]

        updates: list[tuple[int, int]] = []
        link_rates: list[float] = []
        for sample in samples:
            new_rate = rcp_update(sample.fair_rate_bps,
                                  sample.utilization * sample.capacity_bps,
                                  sample.queue_bytes, sample.capacity_bps, self.params)
            updates.append((sample.version, int(round(new_rate / RATE_UNIT_BPS))))
            if sample in relevant:
                link_rates.append(new_rate)

        # Phase 3: write the new rates back (asynchronously, CSTORE-guarded).
        update = build_update_tpp(updates, app_id=self.stack.executor_app_id,
                                  num_hops=max(len(updates), 1))
        self.updates_sent += 1
        self.stack.executor.execute(update, self.dst, lambda _result: None,
                                    retries=0, timeout_s=4 * self.params.period_s)

        # The flow's own rate is the α-fair aggregate of the per-link rates.
        flow_rate = alpha_fair_rate(link_rates or
                                    [s.fair_rate_bps for s in samples], self.alpha)
        self.flow.set_rate(max(self.params.min_rate_bps, flow_rate))
        self.rate_history.add(self.stack.host.sim.now, flow_rate)


# ---------------------------------------------------------------------------
# The Figure 2 experiment
# ---------------------------------------------------------------------------
@dataclass
class RcpExperimentResult:
    """Per-flow throughput series and converged averages for one α."""

    alpha: float
    throughput_series: dict[str, TimeSeries] = field(default_factory=dict)
    mean_throughput_bps: dict[str, float] = field(default_factory=dict)
    control_overhead_fraction: float = 0.0
    link_rate_bps: float = 0.0


#: Figure 2's flow endpoints (a crosses both bottlenecks, b and c one each).
FLOW_SPECS = {
    "a": ("ha", "ha_dst"),     # two bottleneck hops
    "b": ("hb", "hb_dst"),     # s0-s1 only
    "c": ("hc", "hc_dst"),     # s1-s2 only
}


def _wire_rcp_flows(experiment, params: RcpParameters, alpha: float,
                    packet_payload_bytes: int) -> None:
    """Setup hook: wire the Figure 2 flows, meters, and controllers.

    Module-level (bound via :func:`functools.partial`) so an RCP scenario's
    spec pickles across a sweep-worker boundary.
    """
    meters: dict[str, ThroughputMeter] = {}
    controllers: dict[str, RcpFlowController] = {}
    for name, (src, dst) in FLOW_SPECS.items():
        flow = RateLimitedFlow(experiment.sim, experiment.host(src), dst,
                               rate_bps=params.initial_flow_rate_bps,
                               packet_payload_bytes=packet_payload_bytes,
                               dport=21000 + ord(name))
        meter = ThroughputMeter(experiment.sim, window_s=0.25)
        experiment.host(dst).listen(21000 + ord(name), meter.on_packet)
        meters[name] = meter
        controllers[name] = RcpFlowController(experiment.stacks[src], flow, dst,
                                              params, alpha=alpha)
        experiment.on_stop(meter.stop)
        experiment.on_stop(controllers[name].stop)
    experiment.extras["meters"] = meters
    experiment.extras["controllers"] = controllers


def _to_rcp_result(result: ExperimentResult, alpha: float,
                   link_rate_bps: float,
                   warmup_fraction: float) -> RcpExperimentResult:
    """Result mapper for :func:`rcp_scenario` (module-level for pickling)."""
    meters: dict[str, ThroughputMeter] = result.extras["meters"]
    rcp_result = RcpExperimentResult(alpha=alpha, link_rate_bps=link_rate_bps)
    data_bytes = 0
    control_bytes = result.instrumentation_overhead_bytes
    skip = int(len(next(iter(meters.values())).windows) * warmup_fraction)
    for name, meter in meters.items():
        series = TimeSeries()
        for t, bps in meter.windows:
            series.add(t, bps)
        rcp_result.throughput_series[name] = series
        rcp_result.mean_throughput_bps[name] = meter.mean_throughput_bps(skip_windows=skip)
        data_bytes += meter.total_bytes
    rcp_result.control_overhead_fraction = \
        control_bytes / data_bytes if data_bytes else 0.0
    return rcp_result


def rcp_scenario(alpha: float = ALPHA_MAXMIN, link_rate_bps: float = mbps(10),
                 params: Optional[RcpParameters] = None,
                 packet_payload_bytes: int = 1000,
                 warmup_fraction: float = 0.4,
                 utilization_ewma_alpha: float = 0.25, seed: int = 1) -> Scenario:
    """The Figure 2 experiment as a :class:`Scenario`.

    ``rcp_scenario(alpha=...).run(duration_s=15.0)`` returns an
    :class:`RcpExperimentResult`.  Flows, meters and per-flow controllers
    are wired in a setup hook (they need live hosts), and the result is
    assembled by the mapper.  Hooks are partials over module-level
    functions, so ``rcp_scenario(...).to_spec()`` is sweepable.
    """
    if params is None:
        params = RcpParameters()

    return (Scenario("rcp-chain", seed=seed, name="rcp-fairness",
                     link_rate_bps=link_rate_bps,
                     utilization_ewma_alpha=utilization_ewma_alpha)
            .setup(partial(_wire_rcp_flows, params=params, alpha=alpha,
                           packet_payload_bytes=packet_payload_bytes))
            .map_result(partial(_to_rcp_result, alpha=alpha,
                                link_rate_bps=link_rate_bps,
                                warmup_fraction=warmup_fraction)))


def run_rcp_fairness_experiment(alpha: float = ALPHA_MAXMIN,
                                duration_s: float = 15.0,
                                link_rate_bps: float = mbps(10),
                                params: Optional[RcpParameters] = None,
                                packet_payload_bytes: int = 1000,
                                warmup_fraction: float = 0.4,
                                utilization_ewma_alpha: float = 0.25) -> RcpExperimentResult:
    """Reproduce Figure 2 for one fairness criterion (wrapper over :func:`rcp_scenario`).

    Flow *a* crosses both 100 %-capacity links (s0-s1 and s1-s2); flows *b*
    and *c* cross one each.  Max-min fairness should give every flow half a
    link; proportional fairness gives *a* one third and *b*, *c* two thirds.

    The default link rate is scaled down from the paper's 100 Mb/s to keep the
    discrete-event simulation fast; fairness shares are rate-relative, so the
    figure's *shape* is unchanged.  Pass ``link_rate_bps=mbps(100)`` for the
    full-scale run.
    """
    scenario = rcp_scenario(alpha=alpha, link_rate_bps=link_rate_bps, params=params,
                            packet_payload_bytes=packet_payload_bytes,
                            warmup_fraction=warmup_fraction,
                            utilization_ewma_alpha=utilization_ewma_alpha)
    return scenario.run(duration_s=duration_s)


def expected_fair_shares(alpha: float, link_rate_bps: float) -> dict[str, float]:
    """The analytic allocations Figure 2 is checked against."""
    if math.isinf(alpha):
        return {"a": link_rate_bps / 2, "b": link_rate_bps / 2, "c": link_rate_bps / 2}
    if alpha == ALPHA_PROPORTIONAL:
        return {"a": link_rate_bps / 3, "b": 2 * link_rate_bps / 3, "c": 2 * link_rate_bps / 3}
    raise ValueError(f"no closed-form expectation for alpha={alpha}")
