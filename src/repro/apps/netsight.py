"""Network troubleshooting over packet histories (NetSight / ndb, §2.3).

NetSight's central construct is the *packet history*: the path a packet took
and the forwarding state applied to it at every hop.  The TPP refactoring
collects that record in-band, without asking switches to generate truncated
packet copies::

    PUSH [Switch:SwitchID]
    PUSH [PacketMetadata:MatchedEntryID]
    PUSH [PacketMetadata:InputPort]

On top of the collected histories this module implements the four NetSight
applications the paper mentions:

* ``netshark`` — a network-wide tcpdump: store histories, query by header
  and path predicates,
* ``ndb`` — the interactive debugger: breakpoint-style predicates over
  histories (e.g. "packets from A that traversed switch 3"),
* ``netwatch`` — live policy checking (isolation, waypointing, loop freedom),
* ``nprof`` (sketched) — per-entry/per-link profiling from history counts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterable, Optional

from repro.collect import CounterSummary, SummaryBundle, TopKSummary
from repro.core.compiler import CompiledTPP, compile_tpp
from repro.core.packet_format import TPP
from repro.endhost import (Aggregator, Collector, EndHostStack, PacketFilter,
                           PiggybackApplication, deploy)
from repro.net import mbps
from repro.net.packet import Packet
from repro.session import ExperimentResult, Scenario

PACKET_HISTORY_TPP_SOURCE = """
PUSH [Switch:SwitchID]
PUSH [PacketMetadata:MatchedEntryID]
PUSH [PacketMetadata:InputPort]
"""

VALUES_PER_HOP = 3


def packet_history_tpp(num_hops: int = 10, app_id: int = 0) -> CompiledTPP:
    """Compile the §2.3 packet-history TPP."""
    return compile_tpp(PACKET_HISTORY_TPP_SOURCE, num_hops=num_hops, app_id=app_id)


@dataclass(frozen=True)
class HopRecord:
    """One hop of a packet history."""

    switch_id: int
    matched_entry_id: int
    input_port: int


@dataclass
class PacketHistory:
    """A packet's path through the network plus the state applied to it."""

    src: str
    dst: str
    protocol: str
    sport: int
    dport: int
    flow_id: int
    delivered_at: float
    hops: list[HopRecord] = field(default_factory=list)

    @property
    def switch_path(self) -> list[int]:
        return [hop.switch_id for hop in self.hops]

    def traversed(self, switch_id: int) -> bool:
        return switch_id in self.switch_path

    def matched_entry_at(self, switch_id: int) -> Optional[int]:
        for hop in self.hops:
            if hop.switch_id == switch_id:
                return hop.matched_entry_id
        return None


def history_from_tpp(tpp: TPP, packet: Packet) -> PacketHistory:
    """Build a :class:`PacketHistory` from a completed packet-history TPP."""
    history = PacketHistory(src=packet.src, dst=packet.dst, protocol=packet.protocol,
                            sport=packet.sport, dport=packet.dport, flow_id=packet.flow_id,
                            delivered_at=packet.delivered_at or 0.0)
    for hop in tpp.words_by_hop(VALUES_PER_HOP)[:tpp.hop_number]:
        if len(hop) < VALUES_PER_HOP:
            continue
        history.hops.append(HopRecord(switch_id=hop[0], matched_entry_id=hop[1],
                                      input_port=hop[2]))
    return history


HistoryPredicate = Callable[[PacketHistory], bool]


class HistoryStore:
    """netshark: a queryable store of packet histories."""

    def __init__(self) -> None:
        self.histories: list[PacketHistory] = []

    def add(self, history: PacketHistory) -> None:
        self.histories.append(history)

    def extend(self, histories: Iterable[PacketHistory]) -> None:
        self.histories.extend(histories)

    def __len__(self) -> int:
        return len(self.histories)

    # ------------------------------------------------------------------ queries
    def query(self, predicate: HistoryPredicate) -> list[PacketHistory]:
        """All histories satisfying an arbitrary predicate (ndb's breakpoint)."""
        return [history for history in self.histories if predicate(history)]

    def packets_through_switch(self, switch_id: int) -> list[PacketHistory]:
        return self.query(lambda h: h.traversed(switch_id))

    def packets_between(self, src: str, dst: str) -> list[PacketHistory]:
        return self.query(lambda h: h.src == src and h.dst == dst)

    def path_counts(self) -> Counter:
        """How many packets took each distinct switch-level path (nprof-style)."""
        return Counter(tuple(history.switch_path) for history in self.histories)

    def entry_usage(self) -> Counter:
        """(switch, matched entry) usage counts across all histories."""
        counts: Counter = Counter()
        for history in self.histories:
            for hop in history.hops:
                counts[(hop.switch_id, hop.matched_entry_id)] += 1
        return counts


@dataclass
class PolicyViolation:
    """One policy violation found by netwatch."""

    policy: str
    history: PacketHistory
    detail: str


class NetWatch:
    """Live policy checking over packet histories (§2.3's ``netwatch``)."""

    def __init__(self) -> None:
        self.policies: list[tuple[str, HistoryPredicate, str]] = []
        self.violations: list[PolicyViolation] = []

    def add_isolation_policy(self, name: str, src_prefix: str,
                             forbidden_dst_prefix: str) -> None:
        """Packets from ``src_prefix`` hosts must never reach ``forbidden_dst_prefix`` hosts."""
        def violated(history: PacketHistory) -> bool:
            return (history.src.startswith(src_prefix)
                    and history.dst.startswith(forbidden_dst_prefix))
        self.policies.append((name, violated, "tenant isolation breached"))

    def add_waypoint_policy(self, name: str, src_prefix: str, waypoint_switch: int) -> None:
        """Packets from ``src_prefix`` must traverse ``waypoint_switch`` (e.g. a firewall)."""
        def violated(history: PacketHistory) -> bool:
            return (history.src.startswith(src_prefix)
                    and not history.traversed(waypoint_switch))
        self.policies.append((name, violated, f"did not traverse waypoint {waypoint_switch}"))

    def add_loop_freedom_policy(self, name: str = "loop-freedom") -> None:
        """No packet may visit the same switch twice."""
        def violated(history: PacketHistory) -> bool:
            path = history.switch_path
            return len(path) != len(set(path))
        self.policies.append((name, violated, "forwarding loop detected"))

    def check(self, history: PacketHistory) -> list[PolicyViolation]:
        """Check one history against every registered policy."""
        found = []
        for name, violated, detail in self.policies:
            if violated(history):
                violation = PolicyViolation(policy=name, history=history, detail=detail)
                found.append(violation)
                self.violations.append(violation)
        return found


class NetSightAggregator(Aggregator):
    """Per-host aggregator: reconstructs histories, feeds netshark and netwatch."""

    def __init__(self, host_name: str, collector: Optional[Collector] = None,
                 netwatch: Optional[NetWatch] = None) -> None:
        super().__init__(host_name, collector)
        self.store = HistoryStore()
        self.netwatch = netwatch

    def on_tpp(self, tpp: TPP, packet: Packet) -> None:
        super().on_tpp(tpp, packet)
        history = history_from_tpp(tpp, packet)
        self.store.add(history)
        if self.netwatch is not None:
            self.netwatch.check(history)

    def summarize(self) -> SummaryBundle:
        """A mergeable snapshot: history counters plus per-path tallies
        (path-count addition commutes, so shard merges reconstruct the
        network-wide nprof view exactly)."""
        paths = TopKSummary(k=16)
        for path, count in self.store.path_counts().items():
            paths.observe(path, count)
        return SummaryBundle({
            "counters": CounterSummary({"tpps": self.tpps_received,
                                        "tpps_truncated": self.tpps_truncated,
                                        "histories": len(self.store)}),
            "paths": paths,
        })


def deploy_netsight(stacks: dict[str, EndHostStack], collector: Collector,
                    netwatch: Optional[NetWatch] = None, sample_frequency: int = 1,
                    num_hops: int = 10, packet_filter: Optional[PacketFilter] = None):
    """Deploy packet-history collection on every host's shim (§2.3)."""
    any_stack = next(iter(stacks.values()))
    shared_netwatch = netwatch

    def factory(host_name: str, coll: Optional[Collector]) -> NetSightAggregator:
        return NetSightAggregator(host_name, coll, netwatch=shared_netwatch)

    descriptor = PiggybackApplication(
        name="netsight",
        packet_filter=packet_filter if packet_filter is not None else PacketFilter(),
        compiled_tpp=packet_history_tpp(num_hops=num_hops),
        aggregator_factory=factory,
        collector=collector,
        sample_frequency=sample_frequency,
    )
    return deploy(descriptor, stacks, any_stack.control_plane)


@dataclass
class NetSightExperimentResult:
    """A network-wide packet-history collection run (§2.3)."""

    store: HistoryStore                       # histories from every receiver
    violations: list[PolicyViolation]
    packets_instrumented: int
    histories_collected: int
    tpp_overhead_bytes_per_packet: int
    messages_sent: int


def _netsight_aggregator_factory(host_name: str, collector: Optional[Collector],
                                 netwatch: Optional[NetWatch]) -> NetSightAggregator:
    """Per-host aggregator factory (module-level for pickling)."""
    return NetSightAggregator(host_name, collector, netwatch=netwatch)


def _to_netsight_result(result: "ExperimentResult",
                        num_hops: int) -> NetSightExperimentResult:
    """Result mapper for :func:`netsight_scenario` (module-level for pickling).

    The netwatch is read back out of the live aggregators (they all share
    one instance) rather than closed over, so the mapper sees the copy the
    experiment actually ran with when the scenario crossed a process
    boundary as a spec.
    """
    store = HistoryStore()
    netwatch: Optional[NetWatch] = None
    for aggregator in result.aggregators("netsight").values():
        store.extend(aggregator.store.histories)
        if aggregator.netwatch is not None:
            netwatch = aggregator.netwatch
    store.histories.sort(key=lambda history: history.delivered_at)
    workload = result.workloads["messages"]
    return NetSightExperimentResult(
        store=store,
        violations=list(netwatch.violations) if netwatch else [],
        packets_instrumented=result.tpps_attached,
        histories_collected=len(store),
        tpp_overhead_bytes_per_packet=history_overhead_bytes(num_hops),
        messages_sent=len(workload.messages_sent))


def netsight_scenario(hosts_per_side: int = 3, link_rate_bps: float = mbps(10),
                      offered_load: float = 0.3, message_bytes: int = 10_000,
                      sample_frequency: int = 1, num_hops: int = 10,
                      netwatch: Optional[NetWatch] = None,
                      packet_filter: Optional[PacketFilter] = None,
                      seed: int = 1) -> Scenario:
    """Network-wide packet-history collection as a :class:`Scenario`.

    Deploys the §2.3 packet-history TPP on a message workload over a
    dumbbell; ``.run(duration_s=...)`` returns a
    :class:`NetSightExperimentResult` whose merged :class:`HistoryStore`
    answers netshark/ndb queries and whose ``violations`` come from the
    supplied :class:`NetWatch` (if any).  With the default ``netwatch=None``
    every hook is picklable, so ``netsight_scenario(...).to_spec()`` is
    sweepable (a NetWatch carrying policy closures is not picklable and is
    rejected eagerly by ``to_spec``).
    """
    return (Scenario("dumbbell", seed=seed, name="netsight",
                     hosts_per_side=hosts_per_side, link_rate_bps=link_rate_bps)
            .tpp("netsight", PACKET_HISTORY_TPP_SOURCE, num_hops=num_hops,
                 filter=packet_filter if packet_filter is not None else PacketFilter(),
                 sample_frequency=sample_frequency,
                 aggregator=partial(_netsight_aggregator_factory,
                                    netwatch=netwatch))
            .workload("messages", link_rate_bps=link_rate_bps,
                      offered_load=offered_load, message_bytes=message_bytes,
                      seed=seed)
            .map_result(partial(_to_netsight_result, num_hops=num_hops)))


def run_netsight_experiment(duration_s: float = 0.5, hosts_per_side: int = 3,
                            link_rate_bps: float = mbps(10), offered_load: float = 0.3,
                            message_bytes: int = 10_000, sample_frequency: int = 1,
                            num_hops: int = 10, netwatch: Optional[NetWatch] = None,
                            seed: int = 1) -> NetSightExperimentResult:
    """Collect packet histories for every message-workload packet (§2.3)."""
    scenario = netsight_scenario(hosts_per_side=hosts_per_side,
                                 link_rate_bps=link_rate_bps,
                                 offered_load=offered_load,
                                 message_bytes=message_bytes,
                                 sample_frequency=sample_frequency,
                                 num_hops=num_hops, netwatch=netwatch, seed=seed)
    return scenario.run(duration_s=duration_s)


def history_overhead_bytes(num_hops: int = 10) -> int:
    """The per-packet overhead of packet-history collection (§2.3's 84 bytes)."""
    return packet_history_tpp(num_hops=num_hops).tpp.wire_length()


def history_bandwidth_overhead(average_packet_bytes: int = 1000, num_hops: int = 10,
                               sample_frequency: int = 1) -> float:
    """Fractional bandwidth overhead of inserting the TPP on sampled packets."""
    return (history_overhead_bytes(num_hops) / average_packet_bytes) / sample_frequency
