"""CONGA*: congestion-aware load balancing refactored to end-hosts (§2.4, Figure 4).

The network's only jobs are (a) executing TPPs and (b) offering multipath
routes selectable by a header tag (the VLAN id, via a group table).  Each
sending host then:

1. probes every path once per probing interval with a standalone TPP::

       PUSH [Link:ID]
       PUSH [Link:TX-Utilization]
       PUSH [Link:TX-Bytes]

   stamped with that path's tag, and has the receiver echo the executed TPP
   back;
2. aggregates the per-hop link utilisations into a per-path congestion metric
   (``max`` or ``sum`` over the switch-switch hops — the choice the paper
   notes can now be deferred to deployment time);
3. steers each of its flowlets onto the least congested path by rewriting the
   tag on that flowlet's packets.

Figure 4's example is reproduced by :func:`run_conga_experiment`: leaf L1
sends 120 % of a link's worth of traffic to L2 over two paths while L0 sends
50 % over its single path.  ECMP splits L1's flows evenly and saturates the
shared path; CONGA* shifts just enough traffic to the other path to meet both
demands with a maximum link utilisation of ~85 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Optional

from repro.core.compiler import compile_tpp
from repro.core.packet_format import TPP
from repro.endhost import EndHostStack
from repro.net import RateLimitedFlow, ThroughputMeter, mbps
from repro.net.packet import Packet, tpp_probe_packet
from repro.session import ExperimentResult, Scenario
from repro.switches.counters import UTILIZATION_SCALE

PROBE_TPP_SOURCE = """
PUSH [Link:ID]
PUSH [Link:TX-Utilization]
PUSH [Link:TX-Bytes]
"""

PROBE_VALUES_PER_HOP = 3


@dataclass
class PathState:
    """Latest congestion information for one path tag."""

    tag: int
    metric: float = 0.0
    link_utilizations: list[float] = field(default_factory=list)
    updated_at: float = 0.0


class CongaController:
    """Per-host CONGA* agent: probes paths and steers flowlets.

    Args:
        stack: the sending host's end-host stack.
        dst: destination host name the controlled flows go to.
        path_tags: the tag values (VLAN ids) that select distinct paths.
        metric: "max" or "sum" aggregation of per-hop utilisation.
        probe_interval_s: how often each path is probed (§2.4 uses 1 ms).
        reselect_interval_s: how often each flow may switch paths (flowlet
            granularity; CBR flows have no natural flowlet gaps, so this
            models the flowlet boundary rate).
        hysteresis: a flow only moves when the best path is at least this much
            less utilised than its current one, avoiding oscillation.
    """

    def __init__(self, stack: EndHostStack, dst: str, path_tags: list[int],
                 metric: str = "max", probe_interval_s: float = 2e-3,
                 reselect_interval_s: float = 20e-3, hysteresis: float = 0.02,
                 edge_capacity_factor: float = 4.0) -> None:
        if metric not in ("max", "sum"):
            raise ValueError("metric must be 'max' or 'sum'")
        self.stack = stack
        self.dst = dst
        self.path_tags = list(path_tags)
        self.metric = metric
        self.probe_interval_s = probe_interval_s
        self.reselect_interval_s = reselect_interval_s
        self.hysteresis = hysteresis
        self.edge_capacity_factor = edge_capacity_factor
        self.paths: dict[int, PathState] = {tag: PathState(tag) for tag in path_tags}
        self.flows: list[RateLimitedFlow] = []
        self.probes_sent = 0
        self.probes_received = 0
        self.path_switches = 0

        self.app = stack.control_plane.register_application(f"conga@{stack.host.name}")
        stack.shim.bind_application(self.app.app_id, on_tpp=self._on_probe_echo)
        self._template = compile_tpp(PROBE_TPP_SOURCE, num_hops=8,
                                     app_id=self.app.app_id).tpp
        self._probe_process = stack.host.sim.schedule_periodic(probe_interval_s,
                                                               self._probe_all_paths)
        self._reselect_process = stack.host.sim.schedule_periodic(reselect_interval_s,
                                                                  self._reselect_paths)

    # ------------------------------------------------------------------ flows
    def manage_flow(self, flow: RateLimitedFlow) -> None:
        """Take over path selection for ``flow`` (its packets' tag field)."""
        self.flows.append(flow)

    def stop(self) -> None:
        self._probe_process.stop()
        self._reselect_process.stop()

    # ----------------------------------------------------------------- probing
    def _probe_all_paths(self) -> None:
        for tag in self.path_tags:
            probe = tpp_probe_packet(self.stack.host.name, self.dst,
                                     self._template.clone(), vlan=tag,
                                     created_at=self.stack.host.sim.now)
            probe.metadata["path_tag"] = tag
            self.probes_sent += 1
            self.stack.host.send(probe)

    def _on_probe_echo(self, tpp: TPP, packet: Packet) -> None:
        payload = packet.payload if isinstance(packet.payload, dict) else {}
        tag = payload.get("metadata", {}).get("path_tag", payload.get("original_vlan"))
        if tag is None or tag not in self.paths:
            return
        utilizations = []
        for hop in tpp.words_by_hop(PROBE_VALUES_PER_HOP)[:tpp.hop_number]:
            if len(hop) < PROBE_VALUES_PER_HOP:
                continue
            utilizations.append(hop[1] / UTILIZATION_SCALE)
        if not utilizations:
            return
        # Drop the generously-provisioned last hop (leaf to receiving host);
        # CONGA's metric is about the switch-switch fabric links.
        fabric = utilizations[:-1] if len(utilizations) > 1 else utilizations
        state = self.paths[tag]
        state.link_utilizations = fabric
        state.metric = max(fabric) if self.metric == "max" else sum(fabric)
        state.updated_at = self.stack.host.sim.now
        self.probes_received += 1

    # ------------------------------------------------------------ path choice
    def best_path(self) -> int:
        """The currently least congested path tag."""
        return min(self.paths.values(), key=lambda state: state.metric).tag

    def _reselect_paths(self) -> None:
        """Give each flow (flowlet) a chance to move to a less congested path."""
        if not self.flows:
            return
        for flow in self.flows:
            current = self.paths.get(flow.vlan)
            best = min(self.paths.values(), key=lambda state: state.metric)
            if current is None:
                flow.set_vlan(best.tag)
                self.path_switches += 1
                continue
            if best.tag != current.tag and \
                    current.metric - best.metric > self.hysteresis:
                flow.set_vlan(best.tag)
                self.path_switches += 1
                # Locally account for the move so other flows deciding in the
                # same round (before fresh probes arrive) don't all pile onto
                # the path that just looked best.  CONGA's switches keep this
                # state in their congestion tables; end-hosts keep it locally.
                best.metric += self.hysteresis
                current.metric = max(0.0, current.metric - self.hysteresis)


# ---------------------------------------------------------------------------
# The Figure 4 experiment
# ---------------------------------------------------------------------------
@dataclass
class CongaExperimentResult:
    """Achieved throughput and fabric utilisation for one load-balancing scheme."""

    scheme: str
    demand_bps: dict[str, float]
    achieved_bps: dict[str, float]
    max_core_utilization: float
    core_utilizations: dict[str, float] = field(default_factory=dict)

    def achieved_fraction(self, flow: str) -> float:
        demand = self.demand_bps.get(flow, 0.0)
        return self.achieved_bps.get(flow, 0.0) / demand if demand else 0.0


#: The fabric links whose utilisation Figure 4 reports.
CORE_LINKS = [("L1", "S0"), ("L1", "S1"), ("S0", "L2"), ("S1", "L2"), ("L0", "S0")]


def _wire_conga_traffic(experiment, scheme: str, subflow_rate: float,
                        num_l0: int, num_l1: int, warmup_s: float) -> None:
    """Setup hook: subflows, meters, the CONGA* controller, warm-up snapshot.

    Module-level (bound via :func:`functools.partial`) so a CONGA scenario's
    spec pickles across a sweep-worker boundary.
    """
    sim, network = experiment.sim, experiment.network
    meters = {"L0:L2": ThroughputMeter(sim, window_s=0.25),
              "L1:L2": ThroughputMeter(sim, window_s=0.25)}
    receiver = network.hosts["hl2"]

    flows_l0, flows_l1 = [], []
    for i in range(num_l0):
        dport = 40000 + i
        receiver.listen(dport, meters["L0:L2"].on_packet)
        flows_l0.append(RateLimitedFlow(sim, network.hosts["hl0"], "hl2",
                                        rate_bps=subflow_rate, dport=dport,
                                        vlan=i % 2, packet_payload_bytes=1000))
    for i in range(num_l1):
        dport = 41000 + i
        receiver.listen(dport, meters["L1:L2"].on_packet)
        # ECMP: deterministically split the subflows evenly across both paths
        # (the paper's "ECMP splits the flow from L1 to L2 equally").
        flows_l1.append(RateLimitedFlow(sim, network.hosts["hl1"], "hl2",
                                        rate_bps=subflow_rate, dport=dport,
                                        vlan=i % 2, packet_payload_bytes=1000))

    if scheme == "conga":
        controller = CongaController(experiment.stacks["hl1"], "hl2",
                                     path_tags=[0, 1])
        for flow in flows_l1:
            controller.manage_flow(flow)
        experiment.extras["controller"] = controller
        experiment.on_stop(controller.stop)

    # Snapshot fabric-link byte counters after warm-up to measure utilisation.
    counters_at_warmup: dict[str, int] = {}

    def _snapshot() -> None:
        for a, b in CORE_LINKS:
            ports = network.ports_towards(a, b)
            counters_at_warmup[f"{a}->{b}"] = \
                network.switches[a].ports[ports[0]].tx_bytes

    sim.schedule(warmup_s, _snapshot)
    experiment.extras["meters"] = meters
    experiment.extras["flows"] = {"L0:L2": flows_l0, "L1:L2": flows_l1}
    experiment.extras["counters_at_warmup"] = counters_at_warmup
    for meter in meters.values():
        experiment.on_stop(meter.stop)


def _to_conga_result(result: ExperimentResult, scheme: str, demand_l0: float,
                     demand_l1: float, link_rate_bps: float,
                     warmup_s: float) -> CongaExperimentResult:
    """Result mapper for :func:`conga_scenario` (module-level for pickling)."""
    network = result.network
    meters = result.extras["meters"]
    counters_at_warmup = result.extras["counters_at_warmup"]
    measurement_window = result.end_time_s - warmup_s
    core_utilizations = {}
    for a, b in CORE_LINKS:
        ports = network.ports_towards(a, b)
        tx_bytes = network.switches[a].ports[ports[0]].tx_bytes
        delta = tx_bytes - counters_at_warmup.get(f"{a}->{b}", 0)
        core_utilizations[f"{a}->{b}"] = \
            (delta * 8.0 / measurement_window) / link_rate_bps

    skip = int(warmup_s / 0.25)
    achieved = {name: meter.mean_throughput_bps(skip_windows=skip)
                for name, meter in meters.items()}
    return CongaExperimentResult(
        scheme=scheme,
        demand_bps={"L0:L2": demand_l0, "L1:L2": demand_l1},
        achieved_bps=achieved,
        max_core_utilization=max(core_utilizations.values()),
        core_utilizations=core_utilizations,
    )


def conga_scenario(scheme: str = "conga", link_rate_bps: float = mbps(10),
                   demand_l0_fraction: float = 0.5,
                   demand_l1_fraction: float = 1.2,
                   subflow_rate_fraction: float = 0.1,
                   warmup_s: float = 2.0, seed: int = 1) -> Scenario:
    """The Figure 4 scenario as a :class:`Scenario` ("conga" or "ecmp").

    ``conga_scenario(scheme).run(duration_s=10.0)`` returns a
    :class:`CongaExperimentResult`.  Subflows, meters, the CONGA* controller
    and the warm-up counter snapshot are wired in a setup hook.  Hooks are
    partials over module-level functions, so
    ``conga_scenario(...).to_spec()`` is sweepable.
    """
    if scheme not in ("conga", "ecmp"):
        raise ValueError("scheme must be 'conga' or 'ecmp'")

    demand_l0 = demand_l0_fraction * link_rate_bps
    demand_l1 = demand_l1_fraction * link_rate_bps
    subflow_rate = subflow_rate_fraction * link_rate_bps
    num_l0 = max(1, int(round(demand_l0 / subflow_rate)))
    num_l1 = max(1, int(round(demand_l1 / subflow_rate)))

    return (Scenario("conga", seed=seed, name=f"conga-{scheme}",
                     link_rate_bps=link_rate_bps, group_policy="vlan",
                     utilization_ewma_alpha=0.3)
            .setup(partial(_wire_conga_traffic, scheme=scheme,
                           subflow_rate=subflow_rate, num_l0=num_l0,
                           num_l1=num_l1, warmup_s=warmup_s))
            .map_result(partial(_to_conga_result, scheme=scheme,
                                demand_l0=demand_l0, demand_l1=demand_l1,
                                link_rate_bps=link_rate_bps,
                                warmup_s=warmup_s)))


def run_conga_experiment(scheme: str = "conga", duration_s: float = 10.0,
                         link_rate_bps: float = mbps(10),
                         demand_l0_fraction: float = 0.5,
                         demand_l1_fraction: float = 1.2,
                         subflow_rate_fraction: float = 0.1,
                         warmup_s: float = 2.0,
                         seed: int = 1) -> CongaExperimentResult:
    """Reproduce the Figure 4 scenario (thin wrapper over :func:`conga_scenario`).

    Demands are expressed as fractions of the fabric link rate (the paper uses
    50 and 120 Mb/s on 100 Mb/s links); each demand is realised as a bundle of
    equal-rate UDP subflows so ECMP has something to hash.
    """
    scenario = conga_scenario(scheme=scheme, link_rate_bps=link_rate_bps,
                              demand_l0_fraction=demand_l0_fraction,
                              demand_l1_fraction=demand_l1_fraction,
                              subflow_rate_fraction=subflow_rate_fraction,
                              warmup_s=warmup_s, seed=seed)
    return scenario.run(duration_s=duration_s)
