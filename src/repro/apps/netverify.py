"""Network verification and fast updates over TPPs (§2.6).

Two tasks from the paper's "other possibilities" list:

* **Forwarding verification / route-convergence measurement.**  Path
  visibility makes it possible to check that packets actually follow the
  routes the control plane intends, and to measure how long forwarding takes
  to converge after a failure — something end-to-end reachability cannot do,
  because backup paths keep connectivity alive while routes are still
  changing.  :class:`RouteVerifier` compares observed packet histories against
  the control plane's expected path; :func:`measure_convergence_time` probes
  continuously across a link failure + reroute and reports when the observed
  path settles on the new expectation.

* **Fast network updates.**  Writing 64 bits per hop is enough to install new
  routing state in half a round trip.  The switch model exposes per-stage
  application registers (``Stage$i:RegK``), and :func:`fast_update_registers`
  uses a hop-addressed STORE TPP to install a value on every switch along a
  path in a single one-way traversal, returning the number of hops updated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core import addressing
from repro.core.compiler import compile_tpp
from repro.core.isa import Instruction, Opcode
from repro.core.packet_format import AddressingMode, TPP, make_tpp
from repro.endhost import EndHostStack
from repro.net.topology import Network

from .netsight import PacketHistory

PATH_TPP_SOURCE = """
PUSH [Switch:SwitchID]
PUSH [PacketMetadata:InputPort]
PUSH [PacketMetadata:MatchedEntryVersion]
"""

PATH_VALUES_PER_HOP = 3


@dataclass
class PathObservation:
    """The switch-level path a probe actually took, with forwarding versions."""

    time: float
    switch_ids: list[int]
    entry_versions: list[int] = field(default_factory=list)


@dataclass
class VerificationResult:
    """Outcome of comparing an observed path against the expected one."""

    expected: list[int]
    observed: list[int]
    matches: bool
    divergence_hop: Optional[int] = None


class RouteVerifier:
    """Check that observed forwarding matches the control plane's intent."""

    def __init__(self, network: Network) -> None:
        self.network = network

    def expected_switch_path(self, src: str, dst: str) -> list[int]:
        """Switch ids on the shortest path the control plane installed."""
        nodes = self.network.compute_path(src, dst)
        return [self.network.switches[name].switch_id
                for name in nodes if name in self.network.switches]

    @staticmethod
    def verify(expected: list[int], observed: list[int]) -> VerificationResult:
        matches = expected == observed
        divergence = None
        if not matches:
            for index, (want, got) in enumerate(zip(expected, observed)):
                if want != got:
                    divergence = index
                    break
            else:
                divergence = min(len(expected), len(observed))
        return VerificationResult(expected=expected, observed=observed,
                                  matches=matches, divergence_hop=divergence)

    def verify_history(self, history: PacketHistory) -> VerificationResult:
        """Verify a NetSight packet history against the expected path."""
        expected = self.expected_switch_path(history.src, history.dst)
        return self.verify(expected, history.switch_path)


def observation_from_tpp(tpp: TPP, time: float) -> PathObservation:
    """Parse a completed path TPP into a :class:`PathObservation`."""
    switch_ids, versions = [], []
    for hop in tpp.words_by_hop(PATH_VALUES_PER_HOP)[:tpp.hop_number]:
        if len(hop) < PATH_VALUES_PER_HOP:
            continue
        switch_ids.append(hop[0])
        versions.append(hop[2])
    return PathObservation(time=time, switch_ids=switch_ids, entry_versions=versions)


@dataclass
class ConvergenceResult:
    """Outcome of a route-convergence measurement."""

    failure_time: float
    converged_time: Optional[float]
    observations: list[PathObservation]

    @property
    def convergence_seconds(self) -> Optional[float]:
        if self.converged_time is None:
            return None
        return self.converged_time - self.failure_time


def measure_convergence_time(stack: EndHostStack, dst: str, expected_new_path: list[int],
                             failure_time: float, probe_interval_s: float = 1e-3,
                             duration_s: float = 0.5) -> ConvergenceResult:
    """Probe continuously and report when the observed path settles on the new route.

    The caller is responsible for scheduling the failure + reroute (e.g. with
    :meth:`repro.net.link.Link.set_down` and new ``install_route`` calls); this
    helper only produces probes and interprets their results.  Returns a
    result whose ``converged_time`` is the first probe time at or after the
    failure whose observed path equals ``expected_new_path``.
    """
    sim = stack.host.sim
    observations: list[PathObservation] = []
    template = compile_tpp(PATH_TPP_SOURCE, num_hops=8,
                           app_id=stack.executor_app_id).tpp

    def _probe() -> None:
        sent_at = sim.now
        stack.executor.execute(template.clone(), dst,
                               lambda tpp: _record(tpp, sent_at),
                               retries=0, timeout_s=probe_interval_s * 4)

    def _record(tpp: Optional[TPP], sent_at: float) -> None:
        if tpp is None:
            return
        observations.append(observation_from_tpp(tpp, sent_at))

    process = sim.schedule_periodic(probe_interval_s, _probe)
    sim.run(until=sim.now + duration_s)
    process.stop()

    converged_time = None
    for observation in observations:
        if observation.time >= failure_time and observation.switch_ids == expected_new_path:
            converged_time = observation.time
            break
    return ConvergenceResult(failure_time=failure_time, converged_time=converged_time,
                             observations=observations)


@dataclass
class RouteVerificationResult:
    """Outcome of the Scenario-based verification + convergence experiment."""

    pre_failure: VerificationResult            # observed vs intended, before failure
    convergence: ConvergenceResult
    observations: list[PathObservation]
    probes_sent: int


def verification_scenario(src: str = "h0_0", dst: str = "h1_1",
                          failure_time: float = 0.2, reroute_delay_s: float = 0.03,
                          probe_interval_s: float = 2e-3,
                          link_rate_bps: Optional[float] = None,
                          seed: int = 1) -> "Scenario":
    """Route verification + convergence measurement as a :class:`Scenario` (§2.6).

    Probes the ``src -> dst`` path continuously over a two-leaf/two-spine
    fabric, fails the active spine uplink at ``failure_time``, reroutes both
    leaves onto the backup spine ``reroute_delay_s`` later, and reports when
    the observed path settles on the new route.
    ``.run(duration_s=...)`` returns a :class:`RouteVerificationResult`.
    """
    from repro.net import mbps
    from repro.session import Scenario

    if link_rate_bps is None:
        link_rate_bps = mbps(10)

    src_leaf = f"leaf{src.split('_')[0][1:]}"
    dst_leaf = f"leaf{dst.split('_')[0][1:]}"

    def wire_probes(experiment) -> None:
        sim, network = experiment.sim, experiment.network
        stack = experiment.stacks[src]
        observations: list[PathObservation] = []
        template = compile_tpp(PATH_TPP_SOURCE, num_hops=8,
                               app_id=stack.executor_app_id).tpp
        probes = {"sent": 0}

        def _probe() -> None:
            sent_at = sim.now
            probes["sent"] += 1
            stack.executor.execute(
                template.clone(), dst,
                lambda tpp: observations.append(observation_from_tpp(tpp, sent_at))
                if tpp is not None else None,
                retries=0, timeout_s=probe_interval_s * 4)

        process = sim.schedule_periodic(probe_interval_s, _probe)
        experiment.on_stop(process.stop)

        def fail_and_reroute() -> None:
            spine_ids = {name: network.switches[name].switch_id
                         for name in ("spine0", "spine1")}
            current_path = observations[-1].switch_ids if observations else []
            active = next((name for name, sid in spine_ids.items()
                           if sid in current_path), "spine0")
            backup = "spine1" if active == "spine0" else "spine0"
            experiment.extras["failed_spine"] = active
            experiment.extras["backup_spine"] = backup
            network.link_between(src_leaf, active).set_down()

            def reroute() -> None:
                network.switches[src_leaf].install_route(
                    dst, network.ports_towards(src_leaf, backup)[0], priority=100)
                network.switches[dst_leaf].install_route(
                    src, network.ports_towards(dst_leaf, backup)[0], priority=100)

            sim.schedule(reroute_delay_s, reroute)

        sim.schedule_at(failure_time, fail_and_reroute)
        experiment.extras["observations"] = observations
        experiment.extras["probes"] = probes

    def to_result(result) -> RouteVerificationResult:
        network = result.network
        observations: list[PathObservation] = result.extras["observations"]
        verifier = RouteVerifier(network)
        pre = [o for o in observations if o.time < failure_time]
        observed_old = pre[0].switch_ids if pre else []
        # ECMP may route via either spine; the control plane's intent is the
        # *set* of shortest paths, so verify against the member in use.
        candidates = [[network.switches[src_leaf].switch_id,
                       network.switches[spine].switch_id,
                       network.switches[dst_leaf].switch_id]
                      for spine in ("spine0", "spine1")]
        expected_old = next((path for path in candidates if path == observed_old),
                            candidates[0])
        pre_check = verifier.verify(expected_old, observed_old)
        backup = result.extras.get("backup_spine", "spine1")
        expected_new = [network.switches[src_leaf].switch_id,
                        network.switches[backup].switch_id,
                        network.switches[dst_leaf].switch_id]
        converged_time = None
        for observation in observations:
            if observation.time >= failure_time and \
                    observation.switch_ids == expected_new:
                converged_time = observation.time
                break
        convergence = ConvergenceResult(failure_time=failure_time,
                                        converged_time=converged_time,
                                        observations=observations)
        return RouteVerificationResult(pre_failure=pre_check,
                                       convergence=convergence,
                                       observations=observations,
                                       probes_sent=result.extras["probes"]["sent"])

    return (Scenario("leaf-spine", seed=seed, name="route-verification",
                     num_leaves=2, num_spines=2, hosts_per_leaf=2,
                     link_rate_bps=link_rate_bps)
            .setup(wire_probes)
            .map_result(to_result))


def run_route_verification_experiment(duration_s: float = 0.5, **kwargs
                                      ) -> RouteVerificationResult:
    """Run :func:`verification_scenario` (probe, fail, reroute, measure)."""
    return verification_scenario(**kwargs).run(duration_s=duration_s)


# ---------------------------------------------------------------------------
# Fast updates
# ---------------------------------------------------------------------------
def build_fast_update_tpp(stage: int, register: int, per_hop_values: list[int],
                          app_id: int = 0) -> TPP:
    """A one-way TPP that installs ``per_hop_values[i]`` into a stage register at hop *i*."""
    address = addressing.stage_address(stage, f"Reg{register}")
    instructions = [Instruction(Opcode.STORE, address=address, packet_offset=0)]
    tpp = make_tpp(instructions, num_hops=max(len(per_hop_values), 1),
                   mode=AddressingMode.HOP, app_id=app_id, values_per_hop=1)
    for hop, value in enumerate(per_hop_values):
        tpp.write_hop_word(0, value, hop=hop)
    return tpp


def fast_update_registers(stack: EndHostStack, dst: str, stage: int, register: int,
                          per_hop_values: list[int],
                          on_complete=None) -> None:
    """Install per-hop values along the path to ``dst`` in half a round trip (§2.6).

    The update takes effect as the TPP traverses each switch; the echo that
    comes back (handled by ``on_complete`` when supplied) is only confirmation.
    """
    tpp = build_fast_update_tpp(stage, register, per_hop_values,
                                app_id=stack.executor_app_id)
    stack.executor.execute(tpp, dst, on_complete if on_complete is not None
                           else (lambda _result: None), retries=1)
