"""Micro-burst detection (§2.1, Figure 1).

Every instrumented packet carries a three-instruction TPP::

    PUSH [Switch:SwitchID]
    PUSH [PacketMetadata:OutputPort]
    PUSH [Queue:QueueOccupancy]

so the receiving host sees, for each hop, the exact queue the packet was
enqueued behind and its occupancy *at the moment this packet traversed the
switch*.  Aggregating those samples per (switch, port) queue produces the
queue-occupancy time series and CDF of Figure 1b, at packet granularity —
which is what lets end-hosts catch micro-bursts that a polling monitor
(see :mod:`repro.baselines.polling_monitor`) would miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.collect import (CounterSummary, HistogramSummary, SeriesSummary,
                           SummaryBundle, TopKSummary)
from repro.core.compiler import CompiledTPP, compile_tpp
from repro.core.packet_format import TPP
from repro.endhost import (Aggregator, Collector, EndHostStack, PacketFilter,
                           PiggybackApplication, deploy)
from repro.net import MessageWorkload, mbps
from repro.net.packet import Packet
from repro.session import ExperimentResult, Scenario
from repro.stats import TimeSeries, cdf, fraction_at_or_below

#: The §2.1 program, verbatim apart from the explicit output-port read that
#: lets the aggregator distinguish the queues of a multi-port switch.
MICROBURST_TPP_SOURCE = """
PUSH [Switch:SwitchID]
PUSH [PacketMetadata:OutputPort]
PUSH [Queue:QueueOccupancy]
"""

#: Values each hop appends to packet memory.
VALUES_PER_HOP = 3

#: Histogram edges (packets) for the occupancy distribution the aggregator
#: summarises to the collector tier — power-of-two queue depths.
OCCUPANCY_EDGES = (0, 1, 2, 4, 8, 16, 32, 64, 128)


def microburst_tpp(num_hops: int = 6, app_id: int = 0) -> CompiledTPP:
    """Compile the micro-burst detection TPP."""
    return compile_tpp(MICROBURST_TPP_SOURCE, num_hops=num_hops, app_id=app_id)


@dataclass(frozen=True)
class QueueSample:
    """One queue-occupancy observation extracted from a completed TPP."""

    time: float
    switch_id: int
    port: int
    occupancy_packets: int

    @property
    def queue_key(self) -> tuple[int, int]:
        return (self.switch_id, self.port)


class MicroburstAggregator(Aggregator):
    """Per-host aggregator: turns completed TPPs into per-queue time series."""

    def __init__(self, host_name: str, collector: Optional[Collector] = None) -> None:
        super().__init__(host_name, collector)
        self.samples: list[QueueSample] = []
        self.series: dict[tuple[int, int], TimeSeries] = {}

    def on_tpp(self, tpp: TPP, packet: Packet) -> None:
        super().on_tpp(tpp, packet)
        now = packet.delivered_at if packet.delivered_at is not None else 0.0
        for hop in tpp.words_by_hop(VALUES_PER_HOP):
            if len(hop) < VALUES_PER_HOP:
                continue
            switch_id, port, occupancy = hop[0], hop[1], hop[2]
            sample = QueueSample(time=now, switch_id=switch_id, port=port,
                                 occupancy_packets=occupancy)
            self.samples.append(sample)
            self.series.setdefault(sample.queue_key, TimeSeries()).add(now, occupancy)

    def summarize(self) -> SummaryBundle:
        """A mergeable snapshot: counters + occupancy histogram + busiest
        queues + the raw per-queue series (all commutative monoids, so the
        collector tier reconstructs the global view from any sharding)."""
        counters = CounterSummary({"tpps": self.tpps_received,
                                   "tpps_truncated": self.tpps_truncated,
                                   "samples": len(self.samples)})
        occupancy = HistogramSummary(OCCUPANCY_EDGES)
        busiest = TopKSummary(k=8)
        series = SeriesSummary()
        for sample in self.samples:
            occupancy.observe(sample.occupancy_packets)
            busiest.observe(sample.queue_key)
            series.add(sample.time, sample.queue_key, sample.occupancy_packets)
        return SummaryBundle({"counters": counters, "occupancy": occupancy,
                              "busiest_queues": busiest, "queue_series": series})


@dataclass
class MicroburstResult:
    """Everything Figure 1b plots, plus the raw samples."""

    samples: list[QueueSample]
    series: dict[tuple[int, int], TimeSeries]
    messages_sent: int
    packets_instrumented: int
    tpp_overhead_bytes_per_packet: int

    def queue_cdf(self, queue: tuple[int, int]) -> list[tuple[float, float]]:
        """Empirical CDF of occupancy samples for one queue."""
        values = self.series[queue].values if queue in self.series else []
        return cdf(values)

    def fraction_empty(self, queue: tuple[int, int]) -> float:
        """Fraction of packet arrivals that found this queue empty (Figure 1b's CDF)."""
        values = self.series[queue].values if queue in self.series else []
        return fraction_at_or_below(values, 0)

    def max_occupancy(self, queue: Optional[tuple[int, int]] = None) -> int:
        if queue is not None:
            series = self.series.get(queue)
            return int(series.maximum()) if series else 0
        return int(max((s.occupancy_packets for s in self.samples), default=0))

    @property
    def observed_queues(self) -> list[tuple[int, int]]:
        return sorted(self.series)


def deploy_microburst_monitor(stacks: dict[str, EndHostStack], collector: Collector,
                              sample_frequency: int = 1, num_hops: int = 6,
                              sender_hosts: Optional[list[str]] = None,
                              receiver_hosts: Optional[list[str]] = None):
    """Deploy the monitor as a piggy-backed application on existing stacks."""
    any_stack = next(iter(stacks.values()))
    descriptor = PiggybackApplication(
        name="microburst-monitor",
        packet_filter=PacketFilter(protocol="udp"),
        compiled_tpp=microburst_tpp(num_hops=num_hops),
        aggregator_factory=MicroburstAggregator,
        collector=collector,
        sample_frequency=sample_frequency,
    )
    return deploy(descriptor, stacks, any_stack.control_plane,
                  sender_hosts=sender_hosts, receiver_hosts=receiver_hosts)


def _to_microburst_result(result: ExperimentResult) -> MicroburstResult:
    """Assemble the Figure 1 result object from a finished session run."""
    workload: MessageWorkload = result.workloads["messages"]
    return MicroburstResult(
        samples=result.merged_samples("microburst-monitor"),
        series=result.merged_series("microburst-monitor"),
        messages_sent=len(workload.messages_sent),
        packets_instrumented=result.tpps_attached,
        tpp_overhead_bytes_per_packet=microburst_tpp().tpp.wire_length())


def microburst_scenario(hosts_per_side: int = 3, link_rate_bps: float = mbps(100),
                        offered_load: float = 0.3, message_bytes: int = 10_000,
                        sample_frequency: int = 1, seed: int = 1,
                        num_hops: int = 6) -> Scenario:
    """The Figure 1 experiment as a :class:`Scenario`.

    ``microburst_scenario(...).run(duration_s=1.0)`` returns a
    :class:`MicroburstResult`; tweak the scenario (extra TPP apps, different
    workloads) before running for variants.
    """
    return (Scenario("dumbbell", seed=seed, name="microburst",
                     hosts_per_side=hosts_per_side, link_rate_bps=link_rate_bps)
            .tpp("microburst-monitor", MICROBURST_TPP_SOURCE, num_hops=num_hops,
                 filter=PacketFilter(protocol="udp"),
                 sample_frequency=sample_frequency,
                 aggregator=MicroburstAggregator,
                 collector=Collector("microburst-collector"))
            .workload("messages", link_rate_bps=link_rate_bps,
                      offered_load=offered_load, message_bytes=message_bytes,
                      seed=seed)
            .map_result(_to_microburst_result))


def run_microburst_experiment(duration_s: float = 1.0, hosts_per_side: int = 3,
                              link_rate_bps: float = mbps(100), offered_load: float = 0.3,
                              message_bytes: int = 10_000, sample_frequency: int = 1,
                              seed: int = 1) -> MicroburstResult:
    """Reproduce the Figure 1 experiment (thin wrapper over :func:`microburst_scenario`).

    Six hosts on a dumbbell send 10 kB messages to each other at 30 % offered
    load; every packet carries the micro-burst TPP; one collector gathers the
    per-queue samples observed by all receivers.
    """
    scenario = microburst_scenario(hosts_per_side=hosts_per_side,
                                   link_rate_bps=link_rate_bps,
                                   offered_load=offered_load,
                                   message_bytes=message_bytes,
                                   sample_frequency=sample_frequency, seed=seed)
    return scenario.run(duration_s=duration_s)
