"""Low-overhead measurement with sketches (§2.5, Figure 5).

OpenSketch adds hash/filter/count hardware to switches; the TPP refactoring
keeps switches dumb and moves the sketching to end-hosts, which only need the
packet's routing context.  Every participating host stamps (a sample of) its
packets with::

    PUSH [Switch:ID]
    PUSH [PacketMetadata:OutputPort]

The receiving host hashes the header field of interest (here: the destination
IP, i.e. the destination host name) and sets one bit in a per-link bitmap for
every (switch, output port) pair the packet traversed.  Bitmaps are pushed to
a link-monitoring service which ORs them together — the bit-set operation is
commutative, so distribution over hosts is free — and the per-link distinct
count is estimated with the linear-probabilistic-counting formula
``b * ln(b / z)`` (Estan, Varghese, Fisk), where ``z`` is the number of zero
bits among ``b``.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from functools import partial
from typing import Iterable, Optional

from repro.collect import SummaryBundle
from repro.core.compiler import CompiledTPP, compile_tpp
from repro.core.packet_format import TPP
from repro.endhost import (Aggregator, Collector, EndHostStack, PacketFilter,
                           PiggybackApplication, deploy)
from repro.net import mbps
from repro.net.packet import Packet
from repro.session import ExperimentResult, Scenario

SKETCH_TPP_SOURCE = """
PUSH [Switch:ID]
PUSH [PacketMetadata:OutputPort]
"""

VALUES_PER_HOP = 2


def sketch_tpp(num_hops: int = 10, app_id: int = 0) -> CompiledTPP:
    """Compile the §2.5 routing-context TPP."""
    return compile_tpp(SKETCH_TPP_SOURCE, num_hops=num_hops, app_id=app_id)


def _hash_to_bit(element: str, bits: int, salt: int = 0) -> int:
    digest = hashlib.blake2b(f"{salt}:{element}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % bits


class BitmapSketch:
    """A linear-counting bitmap sketch for distinct-element estimation."""

    def __init__(self, bits: int = 1024, salt: int = 0) -> None:
        if bits <= 0:
            raise ValueError("bitmap size must be positive")
        self.bits = bits
        self.salt = salt
        self.bitmap = bytearray(bits // 8 + (1 if bits % 8 else 0))

    def add(self, element: str) -> None:
        index = _hash_to_bit(element, self.bits, self.salt)
        self.bitmap[index // 8] |= 1 << (index % 8)

    def set_bits(self) -> int:
        return sum(bin(byte).count("1") for byte in self.bitmap)

    def zero_bits(self) -> int:
        return self.bits - self.set_bits()

    def estimate(self) -> float:
        """The linear-counting estimate ``b * ln(b / z)``."""
        zeros = self.zero_bits()
        if zeros == 0:
            # Saturated bitmap: the estimator diverges; report the coupon-
            # collector style upper bound instead of infinity.
            return float(self.bits * math.log(self.bits))
        return self.bits * math.log(self.bits / zeros)

    def merge(self, other: "BitmapSketch") -> None:
        """OR another bitmap into this one (the commutative aggregation)."""
        if other.bits != self.bits or other.salt != self.salt:
            raise ValueError("can only merge sketches with identical geometry")
        for i, byte in enumerate(other.bitmap):
            self.bitmap[i] |= byte

    def memory_bytes(self) -> int:
        return len(self.bitmap)

    def as_dict(self) -> dict:
        """Canonical content view (bitmap as hex), for byte-level
        comparison through ``repro.collect.summary_jsonable`` — the
        default object repr would embed a memory address."""
        return {"type": "bitmap-sketch", "bits": self.bits,
                "salt": self.salt, "bitmap": bytes(self.bitmap).hex()}


@dataclass(frozen=True)
class LinkKey:
    """Identifies one directed link: (switch id, output port)."""

    switch_id: int
    output_port: int


class SketchAggregator(Aggregator):
    """Per-host aggregator: one bitmap per traversed link, keyed by the TPP's context."""

    def __init__(self, host_name: str, collector: Optional[Collector] = None,
                 bits: int = 1024, key_field: str = "src") -> None:
        super().__init__(host_name, collector)
        self.bits = bits
        self.key_field = key_field
        self.bitmaps: dict[LinkKey, BitmapSketch] = {}

    def on_tpp(self, tpp: TPP, packet: Packet) -> None:
        super().on_tpp(tpp, packet)
        element = getattr(packet, self.key_field, packet.src)
        for hop in tpp.words_by_hop(VALUES_PER_HOP)[:tpp.hop_number]:
            if len(hop) < VALUES_PER_HOP:
                continue
            key = LinkKey(switch_id=hop[0], output_port=hop[1])
            sketch = self.bitmaps.setdefault(key, BitmapSketch(self.bits))
            sketch.add(element)

    def summarize(self) -> SummaryBundle:
        """One mergeable part per traversed link (bitmap OR commutes, so
        the collector tier shards per-link sketches freely)."""
        return SummaryBundle(dict(self.bitmaps))

    def memory_bytes(self) -> int:
        return sum(sketch.memory_bytes() for sketch in self.bitmaps.values())


class LinkMonitoringService(Collector):
    """The central (logically load-balanced) service aggregating host bitmaps."""

    def __init__(self, bits: int = 1024) -> None:
        super().__init__("link-monitoring-service")
        self.bits = bits
        self.per_link: dict[LinkKey, BitmapSketch] = {}

    def submit(self, host_name: str, summary: object, time: float = 0.0) -> None:
        super().submit(host_name, summary, time)
        if not isinstance(summary, (dict, SummaryBundle)):
            return
        for key, sketch in summary.items():
            if not isinstance(key, LinkKey) or not isinstance(sketch, BitmapSketch):
                continue
            merged = self.per_link.setdefault(key, BitmapSketch(self.bits))
            merged.merge(sketch)

    def estimate(self, key: LinkKey) -> float:
        sketch = self.per_link.get(key)
        return sketch.estimate() if sketch is not None else 0.0

    def estimates(self) -> dict[LinkKey, float]:
        return {key: sketch.estimate() for key, sketch in self.per_link.items()}

    def total_memory_bytes(self) -> int:
        return sum(sketch.memory_bytes() for sketch in self.per_link.values())


def deploy_sketch_application(stacks: dict[str, EndHostStack],
                              service: LinkMonitoringService,
                              bits: int = 1024, key_field: str = "src",
                              sample_frequency: int = 1, num_hops: int = 10):
    """Deploy the distinct-count sketch as a piggy-backed application."""
    any_stack = next(iter(stacks.values()))

    def factory(host_name: str, collector: Optional[Collector]) -> SketchAggregator:
        return SketchAggregator(host_name, collector, bits=bits, key_field=key_field)

    descriptor = PiggybackApplication(
        name="opensketch-distinct-count",
        packet_filter=PacketFilter(protocol="udp"),
        compiled_tpp=sketch_tpp(num_hops=num_hops),
        aggregator_factory=factory,
        collector=service,
        sample_frequency=sample_frequency,
    )
    return deploy(descriptor, stacks, any_stack.control_plane)


@dataclass
class SketchExperimentResult:
    """A distributed distinct-count run: the merged service plus accounting."""

    service: LinkMonitoringService
    estimates: dict[LinkKey, float]
    packets_instrumented: int
    host_memory_bytes: dict[str, int]
    tpp_overhead_bytes_per_packet: int

    def estimate(self, key: LinkKey) -> float:
        return self.estimates.get(key, 0.0)


def _sketch_aggregator_factory(host_name: str, collector: Optional[Collector],
                               bits: int, key_field: str) -> SketchAggregator:
    """Per-host aggregator factory (module-level for pickling)."""
    return SketchAggregator(host_name, collector, bits=bits, key_field=key_field)


def _push_sketch_summaries(experiment) -> None:
    """Finalize hook: flush every host's bitmaps to the monitoring service."""
    experiment.apps["opensketch-distinct-count"].push_all_summaries(
        experiment.sim.now)


def _to_sketch_result(result: "ExperimentResult",
                      num_hops: int) -> SketchExperimentResult:
    """Result mapper for :func:`sketch_scenario` (module-level for pickling).

    Reads the monitoring service back out of ``result.collectors`` rather
    than closing over it: when the scenario crosses a process boundary as a
    spec, the live service is the (deep-copied) one the experiment actually
    ran with.  Under a collect plane the registered collector is a virtual
    front door whose ``downstream`` is the user service — unwrap it.
    """
    service = result.collectors["opensketch-distinct-count"]
    while getattr(service, "downstream", None) is not None:
        service = service.downstream
    aggregators = result.aggregators("opensketch-distinct-count")
    return SketchExperimentResult(
        service=service,
        estimates=service.estimates(),
        packets_instrumented=result.tpps_attached,
        host_memory_bytes={host: aggregator.memory_bytes()
                           for host, aggregator in aggregators.items()},
        tpp_overhead_bytes_per_packet=sketch_tpp(num_hops).tpp.wire_length())


def sketch_scenario(num_leaves: int = 4, num_spines: int = 2, hosts_per_leaf: int = 4,
                    link_rate_bps: float = mbps(50), bits: int = 1024,
                    key_field: str = "src", sample_frequency: int = 1,
                    num_hops: int = 10, seed: int = 1) -> Scenario:
    """The §2.5 distributed sketch experiment as a :class:`Scenario`.

    All-to-all single packets over a leaf-spine fabric; every host sketches
    the (switch, port) pairs its packets traversed, and the link-monitoring
    service ORs the per-host bitmaps.  ``.run(run_until_idle=True)`` returns
    a :class:`SketchExperimentResult`.  Every hook is a module-level
    function (or a partial over one), so ``sketch_scenario(...).to_spec()``
    is sweepable.
    """
    return (Scenario("leaf-spine", seed=seed, name="sketches",
                     num_leaves=num_leaves, num_spines=num_spines,
                     hosts_per_leaf=hosts_per_leaf, link_rate_bps=link_rate_bps)
            .tpp("opensketch-distinct-count", SKETCH_TPP_SOURCE, num_hops=num_hops,
                 filter=PacketFilter(protocol="udp"),
                 sample_frequency=sample_frequency,
                 aggregator=partial(_sketch_aggregator_factory, bits=bits,
                                    key_field=key_field),
                 collector=LinkMonitoringService(bits=bits))
            .workload("all-to-all-once", payload_bytes=300, dport=9999)
            .finalize(_push_sketch_summaries)
            .map_result(partial(_to_sketch_result, num_hops=num_hops)))


def run_sketch_experiment(duration_s: float = 1.0, num_leaves: int = 4,
                          num_spines: int = 2, hosts_per_leaf: int = 4,
                          link_rate_bps: float = mbps(50), bits: int = 1024,
                          key_field: str = "src", sample_frequency: int = 1,
                          seed: int = 1) -> SketchExperimentResult:
    """Run the §2.5 sketch experiment and merge every host's bitmaps."""
    scenario = sketch_scenario(num_leaves=num_leaves, num_spines=num_spines,
                               hosts_per_leaf=hosts_per_leaf,
                               link_rate_bps=link_rate_bps, bits=bits,
                               key_field=key_field,
                               sample_frequency=sample_frequency, seed=seed)
    return scenario.run(duration_s=duration_s)


def sketch_memory_projection(num_links: int = 65_536, bits_per_link: int = 1024,
                             num_servers: int = 65_536) -> dict[str, float]:
    """The §2.5 back-of-envelope: memory per server for a k=64 fat tree.

    With 1 kbit of bitmap per link and 65 536 core links, each server holds
    about 8 MB of sketch state.
    """
    per_link_bytes = bits_per_link / 8
    total_bytes = num_links * per_link_bytes
    return {
        "per_link_bytes": per_link_bytes,
        "total_bytes_per_server": total_bytes,
        "total_megabytes_per_server": total_bytes / 1e6,
        "num_links": float(num_links),
        "num_servers": float(num_servers),
    }
