"""The :class:`Experiment` runner and :class:`ExperimentResult` container.

An :class:`Experiment` is a *built* scenario: it owns the simulator, the
constructed topology, the per-host end-host stacks, the deployed piggy-backed
TPP applications, and the instantiated workloads.  It is created by
:meth:`repro.session.Scenario.build` and torn down exactly once by
:meth:`finish` (or :meth:`run`, which drives the clock and then finishes).

Determinism contract: building an experiment performs every step in a fixed
order — topology, ECMP salting, stacks, TPP deployments (in declaration
order), workloads (in declaration order), the fault plane (injector then
remediation, each on its own seed), the flight recorder (pure observation:
no draws, no events), setup hooks (in declaration order) — and all workload
randomness flows from one ``random.Random(seed)``, so two experiments built
from equal scenarios produce byte-identical event sequences.
"""

from __future__ import annotations

import functools
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.collect import CollectPlane, SHED_POLICIES
from repro.core.compiler import CompiledTPP, compile_tpp
from repro.core.packet_format import TPP
from repro.endhost import (Aggregator, Collector, DeployedApplication,
                           PiggybackApplication, TPPControlPlane, deploy,
                           install_stacks)
from repro.net.sim import Simulator
from repro.net.topology import BuiltTopology, Network
from repro.obs import get_telemetry
from repro.stats import TimeSeries

from .registry import TOPOLOGIES, WORKLOADS

if TYPE_CHECKING:  # pragma: no cover
    from repro.endhost import EndHostStack
    from repro.net.node import Host
    from repro.obs import Telemetry

    from .scenario import Scenario, TppSpec


class _TemplateAdapter:
    """Give a raw :class:`TPP` the ``clone_tpp`` face :func:`deploy` expects."""

    def __init__(self, tpp: TPP) -> None:
        self._tpp = tpp

    def clone_tpp(self) -> TPP:
        return self._tpp.clone()


def _compile_program(program, num_hops: int):
    """Accept TPP assembly source, a CompiledTPP, or a raw TPP template."""
    if isinstance(program, CompiledTPP):
        return program
    if isinstance(program, TPP):
        return _TemplateAdapter(program)
    if isinstance(program, str):
        return compile_tpp(program, num_hops=num_hops)
    raise TypeError(f"tpp program must be source text, a CompiledTPP, or a TPP; "
                    f"got {type(program).__name__}")


def _aggregator_factory(spec: "TppSpec") -> Callable[[str, Optional[Collector]], Aggregator]:
    """Build the per-host aggregator factory, layering on_tpp callbacks on top."""
    base = spec.aggregator if spec.aggregator is not None else Aggregator
    callbacks = tuple(spec.callbacks)
    if not callbacks:
        return base

    def factory(host_name: str, collector: Optional[Collector]) -> Aggregator:
        aggregator = base(host_name, collector)
        original = aggregator.on_tpp

        def on_tpp(tpp, packet):
            original(tpp, packet)
            for callback in callbacks:
                callback(tpp, packet)

        aggregator.on_tpp = on_tpp          # instance attribute shadows the method
        return aggregator

    return factory


class Experiment:
    """A live, built scenario — also the context object hooks receive.

    Attributes hooks and workload factories can rely on:

    * ``sim`` / ``network`` / ``topology`` / ``stacks`` / ``control_plane``
    * ``rng`` — the scenario's master :class:`random.Random`
    * ``seed`` / ``duration_s`` (``None`` when built without a duration)
    * ``apps`` — name -> :class:`DeployedApplication`
    * ``collectors`` — name -> :class:`Collector`
    * ``workloads`` — name -> whatever the workload factory returned
    * ``extras`` — scratch space for setup/finalize hooks to publish results
    * ``on_stop(fn)`` — register teardown callbacks (run LIFO at finish)
    """

    def __init__(self, scenario: "Scenario", duration_s: Optional[float] = None,
                 telemetry: Optional["Telemetry"] = None) -> None:
        self.scenario = scenario
        self.duration_s = duration_s
        self.seed = scenario.seed
        # Observability (repro.obs): explicit instance, else the ambient one
        # (disabled unless installed via obs.use()).  Spans and metrics read
        # wall-clock and existing counters only — never simulation state —
        # so telemetry on/off/exporting is byte-identical (tests/test_obs.py).
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        with self.telemetry.span("experiment.build",
                                 scenario=scenario.name or scenario.topology_name,
                                 seed=scenario.seed):
            self._build(scenario)
        if self.telemetry.enabled:
            self._register_metrics()

    def _build(self, scenario: "Scenario") -> None:
        span = self.telemetry.span
        self.rng = random.Random(scenario.seed)
        self.sim = Simulator()
        with span("build.topology", topology=scenario.topology_name):
            builder = TOPOLOGIES.get(scenario.topology_name)
            self.topology: BuiltTopology = builder(self.sim,
                                                   **scenario.topology_kwargs)
            self.network: Network = self.topology.network
        if scenario.seed_ecmp:
            self._salt_ecmp_groups()
        if scenario.compile_traces:
            # Flip every switch's TCPU onto the compiled-trace engine before
            # any packet moves; byte-identical results, faster hot path.
            for switch in self.network.switches.values():
                switch.compile_traces = True

        self.stacks: dict[str, "EndHostStack"] = {}
        with span("build.stacks"):
            if scenario.install_stacks:
                self.stacks = install_stacks(self.network,
                                             hosts=scenario.host_subset)
                self.control_plane = next(iter(self.stacks.values())).control_plane \
                    if self.stacks else TPPControlPlane()
            else:
                self.control_plane = TPPControlPlane()

        # Scratch/teardown state first: workload factories and setup hooks are
        # entitled to use extras and on_stop (see the class docstring).
        self.extras: dict[str, Any] = {}
        self._stop_callbacks: list[Callable[[], None]] = []
        self._result: Optional[ExperimentResult] = None

        # Collection plane (§4.5): built before any app's collector exists,
        # so every TPP deployment below gets a virtual-IP front door.
        self.collect_plane: Optional[CollectPlane] = None
        self._plane_push_rounds = 0
        cspec = scenario.collector_spec
        if cspec is not None:
            with span("build.collect_plane", shards=cspec.shards):
                self.collect_plane = CollectPlane(
                    cspec.shards, transport=cspec.transport, epoch_s=cspec.epoch_s,
                    batch=cspec.batch, capacity=cspec.capacity,
                    shard_hosts=cspec.hosts, retain_submissions=cspec.retain,
                    tree=cspec.tree, shed=cspec.shed, delta=cspec.delta,
                    delta_resync_every=cspec.delta_resync_every)
                self.collect_plane.attach(self.sim, self.network)
                self.collect_plane.on_epoch(self._push_summaries)

        self.apps: dict[str, DeployedApplication] = {}
        self.collectors: dict[str, Collector] = {}
        with span("build.tpps", apps=len(scenario.tpp_specs)):
            for spec in scenario.tpp_specs:
                self._deploy_tpp(spec)

        self.workloads: dict[str, Any] = {}
        with span("build.workloads", workloads=len(scenario.workload_specs)):
            for wspec in scenario.workload_specs:
                factory = WORKLOADS.get(wspec.workload) \
                    if isinstance(wspec.workload, str) else wspec.workload
                self.workloads[wspec.name] = factory(self, **wspec.kwargs)

        # Fault plane (repro.faults): plan resolution and the remediation
        # loop draw from their own seeds, never self.rng — declaring an
        # empty plan must leave the event sequence byte-identical.
        self.fault_injector = None
        self.remediation = None
        if scenario.fault_spec is not None:
            from repro.faults import FaultInjector
            with span("build.faults"):
                plan = scenario.fault_spec.resolve(self.network)
                self.fault_injector = FaultInjector(self.network, plan)
                self.fault_injector.schedule(self.sim)
        if scenario.remediation_spec is not None:
            from repro.faults import RemediationController
            rspec = scenario.remediation_spec
            if rspec.app not in self.apps:
                raise ValueError(
                    f"remediation watches app {rspec.app!r}, which is not "
                    f"deployed; have {sorted(self.apps)}")
            collector = self.collect_plane.front_door(
                "remediation", name="remediation-collector") \
                if self.collect_plane is not None else Collector("remediation-collector")
            self.collectors["remediation"] = collector
            self.remediation = RemediationController(
                self.network, rspec, self.apps[rspec.app], self.sim,
                collector=collector)
            self.remediation.start()

        # Flight recorder (repro.obs.flightrec): attached after the fault
        # plane so link-state changes are recorded from the first scheduled
        # event, and before setup hooks so hook-driven traffic is visible.
        # Recording is pure observation — the run stays byte-identical.
        self.flight_recorder = None
        if scenario.recorder_spec is not None:
            from repro.obs import FlightRecorder
            rspec = scenario.recorder_spec
            with span("build.flightrec", capacity=rspec.capacity,
                      sample_every=rspec.sample_every):
                app_ids = None
                if rspec.apps is not None:
                    unknown = [name for name in rspec.apps
                               if name not in self.apps]
                    if unknown:
                        raise ValueError(
                            f"flight recorder filters on apps {unknown}, "
                            f"which are not deployed; have {sorted(self.apps)}")
                    app_ids = [self.apps[name].application.app_id
                               for name in rspec.apps]
                self.flight_recorder = FlightRecorder(rspec).attach(
                    self.network, app_ids=app_ids)

        with span("build.hooks", hooks=len(scenario.setup_hooks)):
            for hook in scenario.setup_hooks:
                hook(self)

    # ------------------------------------------------------------------ build
    def _salt_ecmp_groups(self) -> None:
        """Re-salt every hash-policy multipath group from the scenario rng.

        The builders install groups with salt 0; drawing one salt from the
        master rng keeps ECMP placement deterministic per seed while letting
        different seeds explore different flow placements.
        """
        # The selection memo keys on group.salt, so mutated groups miss the
        # memo instead of being served stale — no explicit flush needed.
        salt = self.rng.getrandbits(32)
        for switch in self.network.switches.values():
            for group in switch.group_table.groups.values():
                if group.policy == "hash":
                    group.salt = salt

    def _push_summaries(self, now: float) -> None:
        """One plane-initiated push round: every app, sorted hosts, stamped."""
        self._plane_push_rounds += 1
        for deployed in self.apps.values():
            deployed.push_all_summaries(now)
        if self.remediation is not None:
            self.remediation.push_summary(now)

    def _deploy_tpp(self, spec: "TppSpec") -> None:
        collector = spec.collector
        if self.collect_plane is not None:
            # Route this app through the virtual-IP tier.  A user-supplied
            # collector object keeps receiving every submission as the
            # front door's downstream sink, so its behaviour (and contents)
            # match the unsharded path exactly.
            if isinstance(collector, Collector):
                collector = self.collect_plane.front_door(
                    spec.name, name=collector.name, downstream=collector)
            else:
                name = collector if isinstance(collector, str) \
                    else f"{spec.name}-collector"
                collector = self.collect_plane.front_door(spec.name, name=name)
        elif isinstance(collector, str):
            collector = Collector(collector)
        elif collector is None:
            collector = Collector(f"{spec.name}-collector")
        self.collectors[spec.name] = collector
        descriptor = PiggybackApplication(
            name=spec.name,
            packet_filter=spec.packet_filter,
            compiled_tpp=_compile_program(spec.program, spec.num_hops),
            aggregator_factory=_aggregator_factory(spec),
            collector=collector,
            sample_frequency=spec.sample_frequency,
            priority=spec.priority,
            echo_to_source=spec.echo_to_source,
        )
        if not self.stacks:
            raise RuntimeError(
                f"cannot deploy TPP application {spec.name!r}: the scenario was "
                f"built with install_stacks=False, so no end-host stacks exist")
        self.apps[spec.name] = deploy(descriptor, self.stacks, self.control_plane,
                                      sender_hosts=spec.senders,
                                      receiver_hosts=spec.receivers)

    # ------------------------------------------------------------ conveniences
    def host(self, name: str) -> "Host":
        return self.network.hosts[name]

    def derive_seed(self) -> int:
        """Draw a 32-bit child seed from the master rng (one per consumer)."""
        return self.rng.getrandbits(32)

    def on_stop(self, callback: Callable[[], None]) -> None:
        """Register a teardown callback; callbacks run LIFO at :meth:`finish`."""
        self._stop_callbacks.append(callback)

    # ------------------------------------------------------------ observability
    def _register_metrics(self) -> None:
        """Register pull-based gauges over the engine layers' counters.

        Everything registered here is read at snapshot time only — the
        simulator run loop, TCPU hot path, and shard intake never see the
        registry, which is how the no-perturbation invariant holds.
        """
        from repro.core import trace as trace_engine

        self.sim.register_telemetry(self.telemetry)
        metrics = self.telemetry.metrics
        for name in ("tpps_executed", "instructions_executed",
                     "plan_cache_hits", "plan_cache_misses",
                     "trace_cache_hits", "trace_cache_misses",
                     "traces_compiled", "trace_executions", "trace_fallbacks"):
            metrics.gauge(f"tcpu.{name}",
                          functools.partial(self._tcpu_total, name))
        for name in ("hits", "misses", "ineligible"):
            metrics.gauge(f"trace.codegen_{name}",
                          functools.partial(self._codegen_stat,
                                            trace_engine.codegen_stats, name))
        if self.collect_plane is not None:
            metrics.gauge("collect.shards",
                          lambda: self.collect_plane.shard_count)
            for name in ("submitted", "received", "delivered", "dropped",
                         "bytes_received", "pending", "state_groups",
                         "flushes", "batch_flushes", "epoch_flushes",
                         "stale_replaced", "delta_applied", "delta_gaps",
                         "delta_resyncs"):
                metrics.gauge(f"collect.{name}",
                              functools.partial(self._collect_total, name))
            metrics.gauge("collect.bytes_routed",
                          lambda: self.collect_plane.bytes_routed)
            for reason in SHED_POLICIES + ("delta-gap",):
                metrics.gauge(f"collect.drops.{reason}",
                              functools.partial(self._collect_drop_reason,
                                                reason))

    def _tcpu_total(self, name: str) -> int:
        return sum(switch.tcpu.telemetry_counters()[name]
                   for switch in self.network.switches.values())

    @staticmethod
    def _codegen_stat(stats: Callable[[], dict], name: str) -> int:
        return stats()[name]

    def _collect_total(self, name: str) -> int:
        return sum(shard.metrics()[name] for shard in self.collect_plane.shards)

    def _collect_drop_reason(self, reason: str) -> int:
        return sum(shard.drops_by_policy.get(reason, 0)
                   for shard in self.collect_plane.shards)

    # ---------------------------------------------------------------- running
    def run(self, duration_s: Optional[float] = None, *,
            run_until_idle: bool = False) -> "ExperimentResult":
        """Drive the clock, then tear down and assemble the result."""
        if duration_s is None:
            duration_s = self.duration_s
        with self.telemetry.span("experiment.run", duration_s=duration_s):
            if duration_s is not None:
                self.duration_s = duration_s
                self._drive(duration_s)
            if run_until_idle:
                # Quiesce every event source first, or the drain never goes idle.
                self.network.stop_switch_processes()
                self._stop_workloads()
                if self.remediation is not None:
                    self.remediation.stop()    # the poll loop never idles
                if self.collect_plane is not None:
                    self.collect_plane.stop()  # epoch clocks are event sources
                with self.telemetry.span("engine.drain"):
                    self.sim.run_until_idle()
        return self.finish()

    def _drive(self, duration_s: float) -> None:
        """Advance the clock to ``duration_s``, in telemetry slices if asked.

        Slicing is pure observation: ``run(until=a); run(until=b)`` executes
        the identical event sequence as ``run(until=b)`` (the heap is
        untouched between calls), so per-slice event counts and heap depth
        come for free without perturbing anything.
        """
        slices = self.telemetry.slices if self.telemetry.enabled else 0
        if slices <= 1:
            with self.telemetry.span("engine.run") as span:
                self.sim.run(until=duration_s)
            span.set(events=self.sim.events_executed)
            return
        events_hist = self.telemetry.metrics.histogram("sim.events_per_slice")
        depth_hist = self.telemetry.metrics.histogram("sim.heap_depth_per_slice")
        for index in range(slices):
            target = duration_s if index == slices - 1 \
                else duration_s * (index + 1) / slices
            before = self.sim.events_executed
            with self.telemetry.span("engine.slice", index=index) as span:
                self.sim.run(until=target)
            executed = self.sim.events_executed - before
            span.set(events=executed)
            events_hist.observe(executed)
            depth_hist.observe(self.sim.heap_size)

    def _stop_workloads(self) -> None:
        """Stop workload generators that expose a ``stop()`` (idempotent)."""
        for handle in self.workloads.values():
            stop = getattr(handle, "stop", None)
            if callable(stop):
                stop()

    def finish(self) -> "ExperimentResult":
        """Stop background processes, run finalizers, build the result.

        Idempotent: repeated calls return the same :class:`ExperimentResult`.
        """
        if self._result is not None:
            return self._result
        with self.telemetry.span("experiment.finish"):
            self._finish()
        if self.telemetry.enabled:
            self._result.telemetry = self.telemetry.snapshot()
        if self.flight_recorder is not None:
            # Side channels, like telemetry: excluded from every canonical
            # artifact so recorder on/off results stay byte-identical.
            self._result.flightrec = self.flight_recorder.stats()
            self._result.journeys = self.flight_recorder.log()
        return self._result

    def _finish(self) -> None:
        self.network.stop_switch_processes()
        self._stop_workloads()
        if self.remediation is not None:
            self.remediation.stop()
        for callback in reversed(self._stop_callbacks):
            callback()
        for hook in self.scenario.finalize_hooks:
            hook(self)
        if self.remediation is not None and self.collect_plane is None:
            # Mirror the aggregator contract: one final snapshot at finish.
            if self.remediation.push_rounds == 0:
                self.remediation.push_summary(self.sim.now)
        if self.collect_plane is not None:
            self.collect_plane.stop()
            # Apps that never pushed on their own (beyond the plane's epoch
            # rounds) owe the tier one final snapshot; then fold every
            # shard's remaining batch so merge() sees a complete view.
            for deployed in self.apps.values():
                if deployed.push_rounds <= self._plane_push_rounds:
                    deployed.push_all_summaries(self.sim.now)
            if self.remediation is not None \
                    and self.remediation.push_rounds <= self._plane_push_rounds:
                self.remediation.push_summary(self.sim.now)
            self.collect_plane.flush_all()
        self._result = self._assemble_result()

    def _assemble_result(self) -> "ExperimentResult":
        attached = bytes_added = completed = echoed = overhead = 0
        for stack in self.stacks.values():
            shim = stack.shim
            attached += shim.tpps_attached
            bytes_added += shim.tpp_bytes_added
            completed += shim.tpps_completed
            echoed += shim.tpps_echoed
            overhead += shim.overhead_bytes
        received = truncated = 0
        for deployed in self.apps.values():
            for aggregator in deployed.aggregators.values():
                received += aggregator.tpps_received
                truncated += aggregator.tpps_truncated
        traces = trace_runs = trace_falls = 0
        for switch in self.network.switches.values():
            tcpu = switch.tcpu
            traces += tcpu.traces_compiled
            trace_runs += tcpu.trace_executions
            trace_falls += tcpu.trace_fallbacks
        shards = submitted = delivered = dropped = flushes = 0
        bytes_on_wire = delta_applied = delta_gaps = delta_resyncs = 0
        drops_by_policy: dict[str, int] = {}
        if self.collect_plane is not None:
            plane_stats = self.collect_plane.stats()
            shards = self.collect_plane.shard_count
            submitted = plane_stats.summaries_submitted
            delivered = plane_stats.parts_delivered
            dropped = plane_stats.parts_dropped
            flushes = plane_stats.flushes
            bytes_on_wire = plane_stats.bytes_routed
            delta_applied = plane_stats.delta_applied
            delta_gaps = plane_stats.delta_gaps
            delta_resyncs = plane_stats.delta_resyncs
            drops_by_policy = dict(plane_stats.drops_by_policy)
        corrupted = downs = ups = 0
        for link in self.network.links:
            corrupted += link.packets_corrupted
            downs += link.down_transitions
            ups += link.up_transitions
        drop_reasons: dict[str, int] = {}
        for name in sorted(self.network.nodes):
            for port in self.network.nodes[name].ports:
                for reason, count in port.drops_by_reason.items():
                    drop_reasons[reason] = drop_reasons.get(reason, 0) + count
        fault_events = self.fault_injector.events_applied \
            if self.fault_injector is not None else 0
        actions = len(self.remediation.actions) \
            if self.remediation is not None else 0
        return ExperimentResult(
            scenario=self.scenario.name,
            topology=self.scenario.topology_name,
            seed=self.seed,
            duration_s=self.duration_s,
            end_time_s=self.sim.now,
            events_executed=self.sim.events_executed,
            tpps_attached=attached,
            tpp_bytes_added=bytes_added,
            tpps_completed=completed,
            tpps_echoed=echoed,
            instrumentation_overhead_bytes=overhead,
            tpps_received=received,
            tpps_truncated=truncated,
            traces_compiled=traces,
            trace_executions=trace_runs,
            trace_fallbacks=trace_falls,
            collect_shards=shards,
            summaries_submitted=submitted,
            summary_parts_delivered=delivered,
            summary_parts_dropped=dropped,
            summary_flushes=flushes,
            summary_bytes_on_wire=bytes_on_wire,
            summary_delta_applied=delta_applied,
            summary_delta_gaps=delta_gaps,
            summary_delta_resyncs=delta_resyncs,
            summary_drops_by_policy=drops_by_policy,
            fault_events_applied=fault_events,
            packets_corrupted=corrupted,
            link_down_transitions=downs,
            link_up_transitions=ups,
            remediation_actions=actions,
            drop_reasons=drop_reasons,
            apps=dict(self.apps),
            collectors=dict(self.collectors),
            workloads=dict(self.workloads),
            extras=dict(self.extras),
            experiment=self,
        )


@dataclass
class ExperimentResult:
    """Everything a finished experiment measured, plus live-object handles.

    The scalar fields are the cross-cutting accounting every scenario gets
    for free (event totals and instrumentation overhead); application data
    lives in the per-app aggregators/collectors and in ``extras``, with
    :meth:`merged_series` / :meth:`merged_samples` doing the common
    gather-across-hosts step.
    """

    scenario: str
    topology: str
    seed: int
    duration_s: Optional[float]
    end_time_s: float
    events_executed: int
    # Instrumentation-overhead counters, summed across every end-host shim.
    tpps_attached: int
    tpp_bytes_added: int
    tpps_completed: int
    tpps_echoed: int
    instrumentation_overhead_bytes: int
    # Aggregator-side totals, summed across every deployed application.
    tpps_received: int
    tpps_truncated: int
    # Compiled-trace engine telemetry, summed across every switch TCPU
    # (all zero unless the scenario was built with compile_traces=True).
    traces_compiled: int = 0
    trace_executions: int = 0
    trace_fallbacks: int = 0
    # Collection-plane telemetry (all zero unless the scenario was built
    # with .collector(...)): tier size, front-door submissions, shard-side
    # deliveries/backpressure drops (in summary parts), and flush rounds.
    collect_shards: int = 0
    summaries_submitted: int = 0
    summary_parts_delivered: int = 0
    summary_parts_dropped: int = 0
    summary_flushes: int = 0
    # Streaming-collection telemetry: front-door bytes routed (the wire-size
    # estimate under the configured encoding), delta-channel replay totals,
    # and shard drops broken down by shed policy / delta-gap reason.
    summary_bytes_on_wire: int = 0
    summary_delta_applied: int = 0
    summary_delta_gaps: int = 0
    summary_delta_resyncs: int = 0
    summary_drops_by_policy: dict[str, int] = field(default_factory=dict)
    # Fault-plane telemetry (all zero/empty on a healthy run): plan events
    # applied, link corruption and up/down transition totals, remediation
    # actions taken, and network-wide per-category drop counts (the
    # canonical repro.net.port.DROP_* categories), summed over every port.
    fault_events_applied: int = 0
    packets_corrupted: int = 0
    link_down_transitions: int = 0
    link_up_transitions: int = 0
    remediation_actions: int = 0
    drop_reasons: dict[str, int] = field(default_factory=dict)
    apps: dict[str, DeployedApplication] = field(default_factory=dict)
    collectors: dict[str, Collector] = field(default_factory=dict)
    workloads: dict[str, Any] = field(default_factory=dict)
    extras: dict[str, Any] = field(default_factory=dict)
    experiment: Optional[Experiment] = None
    # Observability side channel: the experiment's telemetry snapshot
    # (metrics + span summary) when telemetry was enabled, else None.
    # Deliberately excluded from every canonical artifact — see
    # docs/ARCHITECTURE.md, "no-perturbation invariant".
    telemetry: Optional[dict] = None
    # Flight-recorder side channels (same exclusion rule): the recorder's
    # accounting counters and the picklable JourneyLog of recorded packet
    # journeys, when the scenario declared .flight_recorder(...), else None.
    flightrec: Optional[dict] = None
    journeys: Optional[Any] = None            # repro.obs.JourneyLog

    # ----------------------------------------------------------- live handles
    @property
    def network(self) -> Network:
        return self.experiment.network

    @property
    def stacks(self) -> dict[str, "EndHostStack"]:
        return self.experiment.stacks

    @property
    def sim(self) -> Simulator:
        return self.experiment.sim

    # --------------------------------------------------------- flight recorder
    def _journeys(self):
        if self.journeys is None:
            raise TypeError(
                "no flight-recorder data on this result; build the scenario "
                "with .flight_recorder(...)")
        return self.journeys

    def journey(self, packet_id: int):
        """One recorded packet's ordered hop records (or None)."""
        return self._journeys().journey(packet_id)

    def trace_flow(self, flow_id: int) -> list:
        """Every recorded packet journey of one flow."""
        return self._journeys().trace_flow(flow_id)

    def explain_drop(self, packet_id: Optional[int] = None, **filters):
        """Drop forensics (see :meth:`repro.obs.JourneyLog.explain_drop`)."""
        return self._journeys().explain_drop(packet_id, **filters)

    # ------------------------------------------------------------ per-app data
    def _app(self, app: Optional[str]) -> DeployedApplication:
        if app is None:
            if len(self.apps) != 1:
                raise ValueError(f"result has {len(self.apps)} deployed apps; "
                                 f"name one of {sorted(self.apps)}")
            return next(iter(self.apps.values()))
        try:
            return self.apps[app]
        except KeyError:
            raise KeyError(f"no deployed app {app!r}; have {sorted(self.apps)}") from None

    def aggregators(self, app: Optional[str] = None) -> dict[str, Aggregator]:
        return self._app(app).aggregators

    def collector(self, app: Optional[str] = None) -> Collector:
        name = self._app(app).descriptor.name
        return self.collectors[name]

    def summaries(self, app: Optional[str] = None) -> dict[str, object]:
        """host -> that host's aggregator summary."""
        return {host: aggregator.summarize()
                for host, aggregator in self.aggregators(app).items()}

    def merged_summary(self, app: Optional[str] = None):
        """The collector tier's reconstructed global view for one app.

        Only available when the scenario was built with ``.collector(...)``
        — the merge is performed by the app's virtual collector
        (:meth:`repro.collect.virtual.VirtualCollector.merged_summary`).
        """
        collector = self.collector(app)
        merger = getattr(collector, "merged_summary", None)
        if merger is None:
            raise TypeError(
                "merged_summary() needs the sharded collection plane; "
                "build the scenario with .collector(shards=...)")
        return merger()

    def merged_samples(self, app: Optional[str] = None, attr: str = "samples",
                       key: Optional[Callable] = None) -> list:
        """Concatenate per-host aggregator sample lists, sorted by time.

        ``attr`` names the list attribute on the aggregator; ``key`` defaults
        to each sample's ``time`` attribute.  The sort is stable, so samples
        with equal timestamps keep host order.
        """
        merged: list = []
        for aggregator in self.aggregators(app).values():
            merged.extend(getattr(aggregator, attr, ()))
        merged.sort(key=key if key is not None else (lambda sample: sample.time))
        return merged

    def merged_series(self, app: Optional[str] = None,
                      attr: str = "series") -> dict[Any, TimeSeries]:
        """Merge per-host ``{key: TimeSeries}`` dicts into network-wide series.

        Series from different hosts interleave in time; each merged series is
        rebuilt in (stable) time order.
        """
        merged: dict[Any, TimeSeries] = {}
        for aggregator in self.aggregators(app).values():
            for series_key, series in getattr(aggregator, attr, {}).items():
                target = merged.setdefault(series_key, TimeSeries())
                target.times.extend(series.times)
                target.values.extend(series.values)
        for series in merged.values():
            order = sorted(range(len(series.times)), key=lambda i: series.times[i])
            series.times = [series.times[i] for i in order]
            series.values = [series.values[i] for i in order]
        return merged
