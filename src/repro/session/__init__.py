"""The unified experiment session layer (Scenario -> Experiment -> Result).

One fluent object composes what every ``run_*_experiment`` used to hand-roll:
a registered topology, the §4 end-host stacks, piggy-backed TPP applications,
registered workloads, and result collection — all seeded from one
``random.Random`` so identical seeds give byte-identical runs::

    from repro.session import Scenario

    result = (Scenario("dumbbell", seed=1, hosts_per_side=3)
              .tpp("queue-monitor", "PUSH [Queue:QueueOccupancy]", num_hops=6)
              .workload("messages", offered_load=0.3)
              .run(duration_s=1.0))

See :mod:`repro.session.scenario` for the builder, ``registry`` for the
``@register_topology`` / ``@register_workload`` extension points, and
``workloads`` for the built-in traffic generators.
"""

from .experiment import Experiment, ExperimentResult
from .registry import (DuplicateRegistration, Registry, TOPOLOGIES,
                       UnknownRegistration, WORKLOADS, register_topology,
                       register_workload)
from .scenario import Scenario, TppSpec, WorkloadSpec
from .spec import (ResultSummary, ScenarioSpec, SpecError, spec_fingerprint,
                   spec_jsonable)
from . import workloads as _builtin_workloads  # noqa: F401  (registration side effect)

__all__ = [
    "DuplicateRegistration", "Experiment", "ExperimentResult", "Registry",
    "ResultSummary", "Scenario", "ScenarioSpec", "SpecError", "TOPOLOGIES",
    "TppSpec", "UnknownRegistration", "WORKLOADS", "WorkloadSpec",
    "register_topology", "register_workload", "spec_fingerprint",
    "spec_jsonable",
]
