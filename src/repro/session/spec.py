"""Serializable scenario specs and result summaries — the process-boundary
faces of the session layer.

The fluent :class:`~repro.session.Scenario` builder is a *live* object: it
may hold hook callables, aggregator factories, and collector objects.  To
fan experiments across a process pool (:mod:`repro.sweep`), a scenario must
cross a pickle boundary and rebuild **byte-identically** on the other side.
This module provides that contract:

* :class:`ScenarioSpec` — a picklable, declarative snapshot of a scenario
  (topology name + kwargs, engine toggles, collector knobs, TPP and
  workload descriptors, hooks, seed).  :meth:`Scenario.to_spec` extracts
  one, validating every piece; :meth:`ScenarioSpec.to_scenario` rebuilds a
  scenario that produces the identical event sequence.
* :class:`ResultSummary` — a slim, picklable view of an
  :class:`~repro.session.ExperimentResult`: the scalar accounting plus each
  app's *mergeable* summary, so worker processes ship monoid elements home
  instead of live simulator objects.
* :func:`spec_fingerprint` — a stable content hash (blake2b over a
  canonical JSON rendering) used by the sweep manifest to recognise
  completed specs across runs and across processes.

Serializability rules
---------------------

Everything in a spec must survive ``pickle`` **by reference or by value**:

* topology/workload names resolve through the registries, so they travel
  as strings;
* callables (workload factories, aggregator factories, hooks, callbacks)
  must be module-level functions/classes — or :func:`functools.partial`
  applications of one over picklable arguments.  Lambdas and closures are
  rejected eagerly by :meth:`Scenario.to_spec` with a :class:`SpecError`
  naming the offending piece, *before* a worker ever chokes on them;
* TPP programs travel as assembly source text (preferred), or as
  ``CompiledTPP``/``TPP`` objects when those pickle cleanly;
* collector objects (e.g. a ``LinkMonitoringService``) travel by value —
  a fresh, unused collector pickles to an equivalent fresh collector.
"""

from __future__ import annotations

import copy
import functools
import hashlib
import json
import pickle
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Optional, TYPE_CHECKING

from repro.collect import summary_copy, summary_jsonable

if TYPE_CHECKING:  # pragma: no cover
    from repro.collect import SummaryBundle
    from .experiment import ExperimentResult
    from .scenario import Scenario

__all__ = [
    "ResultSummary", "ScenarioSpec", "SpecError", "callable_ref",
    "ensure_picklable", "spec_fingerprint", "spec_jsonable",
]


class SpecError(TypeError):
    """A scenario piece cannot cross a process boundary (and why)."""


# --------------------------------------------------------------------------
# Validation
# --------------------------------------------------------------------------
def _describe_callable(fn: Any) -> str:
    module = getattr(fn, "__module__", None) or "?"
    qualname = getattr(fn, "__qualname__", None) \
        or getattr(fn, "__name__", None) or repr(fn)
    return f"{module}:{qualname}"


def callable_ref(fn: Any) -> Any:
    """A canonical, process-stable rendering of a spec callable.

    Module-level callables render as ``"module:qualname"``; ``partial``
    applications render structurally.  Raises :class:`SpecError` for
    lambdas and closures — the two shapes pickle cannot ship by reference.
    """
    if isinstance(fn, functools.partial):
        return {"partial": callable_ref(fn.func),
                "args": [spec_jsonable(arg) for arg in fn.args],
                "kwargs": {key: spec_jsonable(value)
                           for key, value in sorted(fn.keywords.items())}}
    qualname = getattr(fn, "__qualname__", "")
    if "<lambda>" in qualname:
        raise SpecError(
            f"lambda {_describe_callable(fn)} cannot cross a process "
            f"boundary; use a module-level function (or functools.partial "
            f"of one)")
    if "<locals>" in qualname:
        raise SpecError(
            f"closure {_describe_callable(fn)} is defined inside a function "
            f"and cannot cross a process boundary; hoist it to module level "
            f"and bind its parameters with functools.partial")
    return _describe_callable(fn)


def ensure_picklable(value: Any, where: str) -> None:
    """Raise :class:`SpecError` (with the spec path) when pickling fails."""
    if callable(value) and not isinstance(value, type):
        try:
            callable_ref(value)
        except SpecError as exc:
            raise SpecError(f"{where}: {exc}") from None
    try:
        pickle.loads(pickle.dumps(value))
    except Exception as exc:
        raise SpecError(
            f"{where}: {type(value).__name__} does not survive pickling "
            f"({exc}); specs may only carry picklable values") from None


# --------------------------------------------------------------------------
# Canonical rendering / fingerprint
# --------------------------------------------------------------------------
def spec_jsonable(value: Any) -> Any:
    """Render any spec value as deterministic, JSON-able structure.

    Used for fingerprints and the sweep manifest, so the rendering must be
    stable across processes and runs: dict keys are sorted, callables render
    as import references, dataclasses field-wise, and anything else falls
    back to a hash of its pickled bytes (never ``repr`` — reprs can leak
    memory addresses).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [spec_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): spec_jsonable(value[key])
                for key in sorted(value, key=str)}
    if isinstance(value, functools.partial) or callable(value):
        return callable_ref(value)
    if is_dataclass(value) and not isinstance(value, type):
        rendered = {f.name: spec_jsonable(getattr(value, f.name))
                    for f in fields(value)}
        rendered["__type__"] = type(value).__name__
        return rendered
    renderer = getattr(value, "as_dict", None)
    if callable(renderer):
        return renderer()
    encoder = getattr(value, "encode", None)
    if callable(encoder):                        # TPP / CompiledTPP wire bytes
        try:
            encoded = encoder()
            if isinstance(encoded, (bytes, bytearray)):
                return {"__type__": type(value).__name__,
                        "wire_blake2b": hashlib.blake2b(
                            bytes(encoded), digest_size=16).hexdigest()}
        except TypeError:
            pass
    digest = hashlib.blake2b(pickle.dumps(value), digest_size=16).hexdigest()
    return {"__type__": type(value).__name__, "pickle_blake2b": digest}


def spec_fingerprint(spec: "ScenarioSpec") -> str:
    """A stable content hash of a spec's canonical rendering."""
    canonical = json.dumps(spec_jsonable(spec), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


# --------------------------------------------------------------------------
# The spec itself
# --------------------------------------------------------------------------
@dataclass
class ScenarioSpec:
    """A picklable snapshot of everything a :class:`Scenario` declares.

    Construct via :meth:`Scenario.to_spec` (which validates) rather than by
    hand; rebuild with :meth:`to_scenario`.  Equal specs with equal seeds
    rebuild scenarios that produce byte-identical runs — the determinism
    contract the sweep layer's differential tests pin down.
    """

    topology: str
    seed: int = 1
    name: Optional[str] = None
    topology_kwargs: dict[str, Any] = field(default_factory=dict)
    stacks: bool = True
    hosts: Optional[list[str]] = None
    seed_ecmp: bool = False
    compile_traces: bool = False
    collector: Optional[Any] = None               # CollectorSpec
    faults: Optional[Any] = None                  # FaultSpec
    remediation: Optional[Any] = None             # RemediationSpec
    recorder: Optional[Any] = None                # obs.RecorderSpec
    tpps: list[Any] = field(default_factory=list)         # TppSpec
    workloads: list[Any] = field(default_factory=list)    # WorkloadSpec
    setup_hooks: list[Any] = field(default_factory=list)
    finalize_hooks: list[Any] = field(default_factory=list)
    result_mapper: Optional[Any] = None

    @classmethod
    def from_scenario(cls, scenario: "Scenario") -> "ScenarioSpec":
        """Extract and validate a spec (see :meth:`Scenario.to_spec`)."""
        spec = cls(
            topology=scenario.topology_name,
            seed=scenario.seed,
            name=scenario.name,
            topology_kwargs=copy.deepcopy(scenario.topology_kwargs),
            stacks=scenario.install_stacks,
            hosts=list(scenario.host_subset)
            if scenario.host_subset is not None else None,
            seed_ecmp=scenario.seed_ecmp,
            compile_traces=scenario.compile_traces,
            collector=copy.deepcopy(scenario.collector_spec),
            faults=copy.deepcopy(scenario.fault_spec),
            remediation=copy.deepcopy(scenario.remediation_spec),
            recorder=copy.deepcopy(scenario.recorder_spec),
            tpps=copy.deepcopy(scenario.tpp_specs),
            workloads=copy.deepcopy(scenario.workload_specs),
            setup_hooks=list(scenario.setup_hooks),
            finalize_hooks=list(scenario.finalize_hooks),
            result_mapper=scenario._result_mapper,
        )
        spec.validate()
        # Sanity: the rendering the fingerprint hashes must serialise.
        json.dumps(spec_jsonable(spec), sort_keys=True)
        return spec

    # ------------------------------------------------------------- validation
    def validate(self) -> "ScenarioSpec":
        """Check every piece crosses a process boundary; raise SpecError."""
        ensure_picklable(self.topology_kwargs, f"topology {self.topology!r} kwargs")
        if self.collector is not None:
            ensure_picklable(self.collector, "collector spec")
        if self.faults is not None:
            ensure_picklable(self.faults, "fault spec")
        if self.remediation is not None:
            ensure_picklable(self.remediation, "remediation spec")
        if self.recorder is not None:
            ensure_picklable(self.recorder, "recorder spec")
        for tpp in self.tpps:
            where = f"tpp {tpp.name!r}"
            ensure_picklable(tpp.program, f"{where} program")
            ensure_picklable(tpp.packet_filter, f"{where} filter")
            if tpp.aggregator is not None:
                ensure_picklable(tpp.aggregator, f"{where} aggregator factory")
            ensure_picklable(tpp.collector, f"{where} collector")
            for index, callback in enumerate(tpp.callbacks):
                ensure_picklable(callback, f"{where} collect callback #{index}")
        for workload in self.workloads:
            where = f"workload {workload.name!r}"
            ensure_picklable(workload.workload, f"{where} factory")
            ensure_picklable(workload.kwargs, f"{where} kwargs")
        for index, hook in enumerate(self.setup_hooks):
            ensure_picklable(hook, f"setup hook #{index}")
        for index, hook in enumerate(self.finalize_hooks):
            ensure_picklable(hook, f"finalize hook #{index}")
        if self.result_mapper is not None:
            ensure_picklable(self.result_mapper, "result mapper")
        return self

    # ------------------------------------------------------------------ build
    def to_scenario(self) -> "Scenario":
        """Rebuild the fluent scenario this spec was extracted from."""
        from .scenario import Scenario

        scenario = Scenario(self.topology, seed=self.seed, name=self.name,
                            stacks=self.stacks, hosts=self.hosts,
                            seed_ecmp=self.seed_ecmp,
                            compile_traces=self.compile_traces,
                            **copy.deepcopy(self.topology_kwargs))
        scenario.collector_spec = copy.deepcopy(self.collector)
        scenario.fault_spec = copy.deepcopy(self.faults)
        scenario.remediation_spec = copy.deepcopy(self.remediation)
        scenario.recorder_spec = copy.deepcopy(self.recorder)
        scenario.tpp_specs = copy.deepcopy(self.tpps)
        scenario.workload_specs = copy.deepcopy(self.workloads)
        scenario.setup_hooks = list(self.setup_hooks)
        scenario.finalize_hooks = list(self.finalize_hooks)
        scenario._result_mapper = self.result_mapper
        return scenario

    def run(self, duration_s: Optional[float] = 1.0, *,
            run_until_idle: bool = False):
        """Rebuild and run (a convenience mirroring :meth:`Scenario.run`)."""
        return self.to_scenario().run(duration_s, run_until_idle=run_until_idle)

    def fingerprint(self) -> str:
        return spec_fingerprint(self)

    def with_overrides(self, **replacements: Any) -> "ScenarioSpec":
        """An independent copy with top-level fields replaced."""
        clone = copy.deepcopy(self)
        for key, value in replacements.items():
            if not hasattr(clone, key):
                raise SpecError(f"ScenarioSpec has no field {key!r}")
            setattr(clone, key, value)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ScenarioSpec {self.name!r} topology={self.topology!r} "
                f"seed={self.seed} tpps={[t.name for t in self.tpps]} "
                f"workloads={[w.name for w in self.workloads]}>")


# --------------------------------------------------------------------------
# The result view that crosses back
# --------------------------------------------------------------------------
#: ExperimentResult's integer accounting fields, in canonical order.  These
#: become the ``counters`` part of :meth:`ResultSummary.bundle`, so a sweep's
#: merged view sums them across experiments.
RESULT_COUNTER_FIELDS = (
    "events_executed", "tpps_attached", "tpp_bytes_added", "tpps_completed",
    "tpps_echoed", "instrumentation_overhead_bytes", "tpps_received",
    "tpps_truncated", "traces_compiled", "trace_executions",
    "trace_fallbacks", "collect_shards", "summaries_submitted",
    "summary_parts_delivered", "summary_parts_dropped", "summary_flushes",
    "summary_bytes_on_wire", "summary_delta_applied", "summary_delta_gaps",
    "summary_delta_resyncs",
    "fault_events_applied", "packets_corrupted", "link_down_transitions",
    "link_up_transitions", "remediation_actions",
)


@dataclass
class ResultSummary:
    """The picklable slice of an :class:`ExperimentResult`.

    Carries the scalar accounting plus each app's *mergeable* summary (the
    collector tier's merged view when the scenario ran with
    ``.collector(...)``, else the fold of per-host ``summarize()``
    snapshots in sorted host order).  Live simulator handles never cross;
    workers ship monoid elements, the parent merges them.
    """

    scenario: str
    topology: str
    seed: int
    duration_s: Optional[float]
    end_time_s: float
    counters: dict[str, int]
    app_summaries: dict[str, Any] = field(default_factory=dict)
    experiments: int = 1
    # Observability side channel (repro.obs): the experiment's telemetry
    # snapshot when one was enabled.  Never part of as_jsonable() — the
    # canonical artifact must be byte-identical with telemetry on or off.
    telemetry: Optional[dict] = None
    # Flight-recorder side channels (same exclusion rule): the recorder's
    # accounting counters and the picklable JourneyLog, when the scenario
    # declared .flight_recorder(...).  This is how journey()/explain_drop()
    # round-trip through a sweep worker: the log's plain tuples pickle home
    # and the query API works identically in the parent.
    flightrec: Optional[dict] = None
    journeys: Optional[Any] = None                # repro.obs.JourneyLog

    @classmethod
    def from_result(cls, result: "ExperimentResult") -> "ResultSummary":
        counters = {name: int(getattr(result, name))
                    for name in RESULT_COUNTER_FIELDS}
        app_summaries: dict[str, Any] = {}
        plane = result.experiment.collect_plane \
            if result.experiment is not None else None
        for app in sorted(result.apps):
            if plane is not None:
                app_summaries[app] = result.merged_summary(app)
                continue
            merged = None
            aggregators = result.aggregators(app)
            for host in sorted(aggregators):
                snapshot = aggregators[host].summarize()
                if not hasattr(snapshot, "merge"):
                    merged = None
                    break
                if merged is None:
                    merged = summary_copy(snapshot)
                else:
                    merged.merge(snapshot)
            if merged is not None:
                app_summaries[app] = merged
        return cls(scenario=result.scenario, topology=result.topology,
                   seed=result.seed, duration_s=result.duration_s,
                   end_time_s=result.end_time_s, counters=counters,
                   app_summaries=app_summaries,
                   telemetry=result.telemetry,
                   flightrec=result.flightrec,
                   journeys=result.journeys)

    # --------------------------------------------------------- flight recorder
    def _journeys(self):
        if self.journeys is None:
            raise TypeError(
                "no flight-recorder data on this summary; build the scenario "
                "with .flight_recorder(...)")
        return self.journeys

    def journey(self, packet_id: int):
        """One recorded packet's ordered hop records (or None)."""
        return self._journeys().journey(packet_id)

    def trace_flow(self, flow_id: int) -> list:
        """Every recorded packet journey of one flow."""
        return self._journeys().trace_flow(flow_id)

    def explain_drop(self, packet_id: Optional[int] = None, **filters):
        """Drop forensics (see :meth:`repro.obs.JourneyLog.explain_drop`)."""
        return self._journeys().explain_drop(packet_id, **filters)

    # ------------------------------------------------------------ monoid face
    def bundle(self) -> "SummaryBundle":
        """This experiment as one mergeable bundle (counters + app parts).

        Folding the bundles of every experiment in a sweep (in any order,
        from any worker partition) produces the sweep's invariant merged
        view: integer counters sum, app summaries merge monoidally.
        """
        from repro.collect import CounterSummary, SummaryBundle

        parts: dict[Any, Any] = {
            "experiment-counters": CounterSummary(
                dict(self.counters, experiments=self.experiments)),
        }
        for app, summary in self.app_summaries.items():
            parts[f"app:{app}"] = summary_copy(summary)
        return SummaryBundle(parts)

    def as_jsonable(self) -> dict:
        """Canonical JSON-able rendering (stable ordering throughout)."""
        return {
            "scenario": self.scenario,
            "topology": self.topology,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "end_time_s": self.end_time_s,
            "experiments": self.experiments,
            "counters": {name: self.counters[name]
                         for name in sorted(self.counters)},
            "apps": {app: summary_jsonable(self.app_summaries[app])
                     for app in sorted(self.app_summaries)},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ResultSummary {self.scenario!r} seed={self.seed} "
                f"events={self.counters.get('events_executed')} "
                f"apps={sorted(self.app_summaries)}>")
