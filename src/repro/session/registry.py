"""Registries that make scenarios a composition problem (§2's "many tasks").

Two registries back the :class:`~repro.session.Scenario` API:

* the **topology registry** maps names like ``"dumbbell"`` to the builder
  functions in :mod:`repro.net.topology` (signature
  ``builder(sim, **kwargs) -> BuiltTopology``),
* the **workload registry** maps names like ``"messages"`` to traffic
  factories (signature ``factory(experiment, **kwargs) -> handle``, where
  ``experiment`` is the live :class:`~repro.session.Experiment`).

New scenarios are one decorator away::

    @register_topology("ring")
    def build_ring(sim, num_switches=4, **kwargs) -> BuiltTopology:
        ...

    @register_workload("replay")
    def replay_trace(experiment, *, trace, **kwargs):
        ...

Lookups raise :class:`UnknownRegistration` with the sorted list of known
names, so a typo fails with the full menu instead of a bare ``KeyError``.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

__all__ = [
    "Registry", "UnknownRegistration", "DuplicateRegistration",
    "TOPOLOGIES", "WORKLOADS", "register_topology", "register_workload",
]


class UnknownRegistration(KeyError):
    """Raised when a scenario names a topology/workload nobody registered."""

    def __init__(self, kind: str, name: str, known: list[str]) -> None:
        self.kind = kind
        self.name = name
        self.known = known
        menu = ", ".join(known) if known else "<none>"
        super().__init__(f"unknown {kind} {name!r}; registered {kind}s: {menu}")

    def __str__(self) -> str:  # KeyError.__str__ repr-quotes its argument
        return self.args[0]


class DuplicateRegistration(ValueError):
    """Raised when a name is registered twice without ``overwrite=True``."""


class Registry:
    """A named collection of factory callables."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Callable] = {}

    def register(self, name: Optional[str] = None, *, overwrite: bool = False):
        """Decorator registering a factory under ``name`` (default: its __name__).

        Usable bare (``@register_topology``) or called
        (``@register_topology("dumbbell")``).
        """
        def _register(factory: Callable, registered_name: Optional[str] = None):
            key = registered_name or getattr(factory, "__name__", None)
            if not key:
                raise ValueError(f"cannot infer a {self.kind} name for {factory!r}")
            if key in self._entries and not overwrite:
                raise DuplicateRegistration(
                    f"{self.kind} {key!r} is already registered; "
                    f"pass overwrite=True to replace it")
            self._entries[key] = factory
            return factory

        if callable(name):           # bare @register usage
            return _register(name)
        return lambda factory: _register(factory, name)

    def get(self, name: str) -> Callable:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownRegistration(self.kind, name, self.names()) from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Registry {self.kind}: {', '.join(self.names()) or '<empty>'}>"


#: The process-wide registries the Scenario API resolves names against.
TOPOLOGIES = Registry("topology")
WORKLOADS = Registry("workload")

register_topology = TOPOLOGIES.register
register_workload = WORKLOADS.register


def _register_builtin_topologies() -> None:
    """Wrap the five paper topologies from :mod:`repro.net.topology`."""
    from repro.net import topology as t

    TOPOLOGIES.register("dumbbell")(t.build_dumbbell)
    TOPOLOGIES.register("rcp-chain")(t.build_rcp_chain)
    TOPOLOGIES.register("conga")(t.build_conga_topology)
    TOPOLOGIES.register("leaf-spine")(t.build_leaf_spine)
    TOPOLOGIES.register("fat-tree")(t.build_fat_tree)


_register_builtin_topologies()
