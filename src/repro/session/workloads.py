"""Built-in registered workloads for the :class:`~repro.session.Scenario` API.

Each factory has the registry signature ``factory(experiment, **kwargs)``:
it receives the live :class:`~repro.session.Experiment` (simulator, network,
topology, stacks, master rng) and returns a handle that lands in
``result.workloads[name]``.  Factories that consume randomness draw their
seed from the experiment's master rng unless one is passed explicitly, so a
scenario's single seed makes the whole run reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.flows import MessageWorkload, RateLimitedFlow
from repro.net.packet import Packet, udp_packet

from .registry import register_workload

__all__ = ["BurstTraffic", "all_to_all_once", "cross_pod_bursts", "messages",
           "paced_flows"]


def _host_objects(experiment, hosts: Optional[list[str]]):
    names = hosts if hosts is not None else experiment.topology.host_names
    return [experiment.network.hosts[name] for name in names]


def _default_link_rate(experiment) -> float:
    """The access-link rate of the first host (builders provision uniformly)."""
    return next(iter(experiment.network.hosts.values())).uplink_port.rate_bps


@register_workload("messages")
def messages(experiment, *, link_rate_bps: Optional[float] = None,
             offered_load: float = 0.3, message_bytes: int = 10_000,
             packet_payload_bytes: int = 1000, dport: int = 20000,
             hosts: Optional[list[str]] = None, seed: Optional[int] = None,
             start_time: float = 0.0,
             stop_time: Optional[float] = None) -> MessageWorkload:
    """Figure 1's all-to-all short-message workload over the topology's hosts.

    ``stop_time`` defaults to the scenario's run duration.
    """
    if link_rate_bps is None:
        link_rate_bps = _default_link_rate(experiment)
    if seed is None:
        seed = experiment.derive_seed()
    if stop_time is None:
        stop_time = experiment.duration_s
    return MessageWorkload(experiment.sim, _host_objects(experiment, hosts),
                           link_rate_bps=link_rate_bps, offered_load=offered_load,
                           message_bytes=message_bytes,
                           packet_payload_bytes=packet_payload_bytes, dport=dport,
                           seed=seed, start_time=start_time, stop_time=stop_time)


@register_workload("paced-flows")
def paced_flows(experiment, *, flows: list[dict],
                stop_time: Optional[float] = None) -> dict[str, RateLimitedFlow]:
    """A set of rate-limited UDP flows from ``(src, dst, rate_bps, ...)`` specs.

    Each spec dict needs ``src``, ``dst``, ``rate_bps``; optional keys
    (``dport``, ``vlan``, ``packet_payload_bytes``, ``start_time``, ``name``)
    pass through to :class:`RateLimitedFlow`.  Returns name -> flow.
    """
    handles: dict[str, RateLimitedFlow] = {}
    for index, spec in enumerate(flows):
        spec = dict(spec)
        name = spec.pop("name", f"flow{index}")
        src = experiment.network.hosts[spec.pop("src")]
        dst = spec.pop("dst")
        if stop_time is not None:
            spec.setdefault("stop_time", stop_time)
        handles[name] = RateLimitedFlow(experiment.sim, src, dst, **spec)
    return handles


@register_workload("all-to-all-once")
def all_to_all_once(experiment, *, payload_bytes: int = 300, dport: int = 9999,
                    hosts: Optional[list[str]] = None) -> int:
    """Every host sends one UDP packet to every other host at t=0.

    The sketch experiments use this to give every fabric link a known set of
    traversing sources.  Returns the number of packets injected.
    """
    host_objs = _host_objects(experiment, hosts)
    sent = 0
    for src in host_objs:
        for dst in host_objs:
            if src is not dst:
                src.send(udp_packet(src.name, dst.name, payload_bytes, dport=dport))
                sent += 1
    return sent


@dataclass
class BurstTraffic:
    """Handle returned by the ``cross-pod-bursts`` workload."""

    burst_packets: int
    burst_interval_s: float
    payload_bytes: int
    use_batch: bool
    bursts_injected: int = 0
    packets_injected: int = 0
    processes: list = field(default_factory=list)

    def stop(self) -> None:
        for process in self.processes:
            process.stop()


@register_workload("cross-pod-bursts")
def cross_pod_bursts(experiment, *, burst_packets: int = 8,
                     burst_interval_s: float = 100e-6, payload_bytes: int = 700,
                     dport: int = 2000, use_batch: bool = True) -> BurstTraffic:
    """Periodic cross-pod UDP bursts from every host to a distant partner.

    The event-throughput benchmark's workload: host *i* bursts to host
    ``i + n/2 (mod n)`` every ``burst_interval_s`` through the batched
    injection path (or per-packet ``host.send`` with ``use_batch=False``).
    """
    hosts = _host_objects(experiment, None)
    n = len(hosts)
    if n < 2:
        raise ValueError("cross-pod-bursts needs at least two hosts")
    handle = BurstTraffic(burst_packets=burst_packets,
                          burst_interval_s=burst_interval_s,
                          payload_bytes=payload_bytes, use_batch=use_batch)
    for i, host in enumerate(hosts):
        partner = hosts[(i + n // 2) % n].name
        shim = experiment.stacks[host.name].shim if experiment.stacks else None

        def burst(host=host, shim=shim, partner=partner) -> None:
            packets: list[Packet] = [
                udp_packet(host.name, partner, handle.payload_bytes, dport=dport)
                for _ in range(handle.burst_packets)]
            if handle.use_batch and shim is not None:
                shim.send_burst(packets)
            else:
                for packet in packets:
                    host.send(packet)
            handle.bursts_injected += 1
            handle.packets_injected += len(packets)

        handle.processes.append(
            experiment.sim.schedule_periodic(burst_interval_s, burst))
    return handle
