"""The fluent :class:`Scenario` builder — one session object per experiment.

The paper's pitch is that one mechanism (tiny packet programs) serves many
tasks; this module makes one *API* serve many experiments.  A scenario is a
declarative recipe — topology + stacks + TPP applications + workloads +
collection — that :meth:`Scenario.run` turns into a deterministic
discrete-event run::

    from repro.session import Scenario
    from repro.endhost import PacketFilter

    result = (Scenario(topology="dumbbell", seed=1, hosts_per_side=3)
              .tpp("queue-monitor",
                   "PUSH [Switch:SwitchID]\\n"
                   "PUSH [PacketMetadata:OutputPort]\\n"
                   "PUSH [Queue:QueueOccupancy]",
                   filter=PacketFilter(protocol="udp"), sample_frequency=1)
              .workload("messages", offered_load=0.3, message_bytes=10_000)
              .collect(on_tpp=lambda tpp, packet: ...)
              .run(duration_s=1.0))

    result.events_executed, result.tpps_attached, result.merged_series(...)

Every mutator returns ``self``, so scenarios chain; :meth:`build` hands back
the live :class:`~repro.session.Experiment` for callers that want to drive
the simulator interactively (probe, fail a link, run some more) before
calling :meth:`Experiment.finish`.

The fixed build order
---------------------

Building an experiment always performs these steps, in this order, with
every random draw taken from one ``random.Random(seed)``:

1. **topology** — the registered builder runs with the scenario's kwargs;
2. **ECMP salting** — with ``seed_ecmp=True``, hash-policy groups are
   re-salted from the master rng;
3. **trace engine** — with ``compile_traces=True``, every switch TCPU is
   flipped to the compiled-trace engine (byte-identical results, see
   :mod:`repro.core.trace`);
4. **stacks** — the §4 end-host stack is installed on (a subset of) hosts;
5. **collection plane** — with ``.collector(...)``, the sharded
   :class:`~repro.collect.CollectPlane` is built and attached (shard
   placement, epoch clock), before any app's collector is created;
6. **TPP deployments** — each ``.tpp(...)`` spec, in declaration order;
7. **workloads** — each ``.workload(...)`` spec, in declaration order
   (registered workloads draw their child seed here, also in order);
8. **fault plane** — with ``.faults(...)``, the resolved
   :class:`~repro.faults.FaultPlan` is scheduled by a
   :class:`~repro.faults.FaultInjector`; with ``.remediation(...)``, the
   :class:`~repro.faults.RemediationController` loop is started.  Both
   draw from their *own* seeds (never the master rng), so an empty plan
   leaves the run byte-identical to one with no fault plane at all;
9. **flight recorder** — with ``.flight_recorder(...)``, the
   :class:`~repro.obs.FlightRecorder` is attached to every node, port and
   link.  Recording is pure observation (no random draws, no scheduled
   events, no packet mutation), so a run with the recorder on is
   byte-identical to the same run with it off;
10. **setup hooks** — each ``.setup(...)`` hook, in declaration order.

Because the order is fixed and the seed flows from one rng, equal
scenarios with equal seeds produce byte-identical event sequences — the
determinism contract ``tests/test_session.py`` asserts.  Declaration
order is therefore *part of a scenario's identity*: swapping two
workloads changes their seeds and may change the run.

Topology and workload names resolve through the registries in
:mod:`repro.session.registry`; apps register their own with
``@register_topology`` / ``@register_workload``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from repro.endhost import Aggregator, Collector, PacketFilter

from .experiment import Experiment, ExperimentResult
from .registry import TOPOLOGIES, WORKLOADS
from .spec import ScenarioSpec

#: Signature of hooks: they receive the live Experiment.
Hook = Callable[[Experiment], None]


@dataclass
class TppSpec:
    """One piggy-backed TPP application the scenario will deploy."""

    name: str
    program: object                               # source text | CompiledTPP | TPP
    packet_filter: PacketFilter
    sample_frequency: int = 1
    num_hops: int = 8
    priority: int = 0
    echo_to_source: bool = False
    aggregator: Optional[Callable[[str, Optional[Collector]], Aggregator]] = None
    collector: Union[Collector, str, None] = None
    senders: Optional[list[str]] = None
    receivers: Optional[list[str]] = None
    callbacks: list[Callable] = field(default_factory=list)


@dataclass
class WorkloadSpec:
    """One workload the scenario will instantiate at build time."""

    name: str
    workload: Union[str, Callable]                # registry name or factory
    kwargs: dict[str, Any] = field(default_factory=dict)


@dataclass
class CollectorSpec:
    """The sharded collection plane a scenario opts into (§4.5).

    Materialised at build time as a :class:`repro.collect.CollectPlane`;
    every declared TPP application's collector becomes a
    :class:`~repro.collect.virtual.VirtualCollector` front door onto the
    shared shard tier (user-supplied collector objects become the front
    door's downstream sink, so their behaviour is preserved exactly).
    """

    shards: int = 1
    epoch_s: Optional[float] = None
    transport: str = "inline"
    batch: Optional[int] = 64
    capacity: int = 4096
    hosts: Optional[list[str]] = None
    retain: bool = True
    # Streaming-collection knobs (normalised specs, so sweeps can override
    # nested fields with dataclasses.replace — see repro.sweep.plan).
    tree: Optional["TreeSpec"] = None        # repro.collect.TreeSpec
    shed: Optional["ShedSpec"] = None        # repro.collect.ShedSpec
    delta: bool = False
    delta_resync_every: int = 0


class Scenario:
    """Fluent builder for a complete, seeded experiment session.

    Args:
        topology: a registered topology name (see ``Scenario.topologies()``).
        seed: master seed; one ``random.Random(seed)`` drives every derived
            seed (workloads, ECMP salting), so equal seeds give
            byte-identical runs.
        name: label stamped on the result (defaults to the topology name).
        stacks: install the §4 end-host stack on every host (default True).
        hosts: restrict stack installation to this subset of hosts.
        seed_ecmp: re-salt hash-policy ECMP groups from the master rng
            (default False: keep the builders' salt-0 placement).
        compile_traces: run every switch TCPU with the compiled-trace
            engine (:mod:`repro.core.trace`).  Results are byte-identical
            to the interpreted default; only wall-clock speed changes, so
            experiments can flip this freely for A/B throughput runs.
        **topology_kwargs: forwarded to the topology builder verbatim.
    """

    def __init__(self, topology: str = "dumbbell", seed: int = 1, *,
                 name: Optional[str] = None, stacks: bool = True,
                 hosts: Optional[list[str]] = None, seed_ecmp: bool = False,
                 compile_traces: bool = False,
                 **topology_kwargs) -> None:
        if topology not in TOPOLOGIES:
            TOPOLOGIES.get(topology)         # raises with the registered menu
        self.topology_name = topology
        self.topology_kwargs = dict(topology_kwargs)
        self.seed = seed
        self.name = name if name is not None else topology
        self.install_stacks = stacks
        self.host_subset = list(hosts) if hosts is not None else None
        self.seed_ecmp = seed_ecmp
        self.compile_traces = compile_traces
        self.collector_spec: Optional[CollectorSpec] = None
        self.fault_spec = None                   # Optional[FaultSpec]
        self.remediation_spec = None             # Optional[RemediationSpec]
        self.recorder_spec = None                # Optional[obs.RecorderSpec]
        self.tpp_specs: list[TppSpec] = []
        self.workload_specs: list[WorkloadSpec] = []
        self.setup_hooks: list[Hook] = []
        self.finalize_hooks: list[Hook] = []
        self._result_mapper: Optional[Callable[[ExperimentResult], Any]] = None

    # ------------------------------------------------------------- registries
    @staticmethod
    def topologies() -> list[str]:
        """Registered topology names."""
        return TOPOLOGIES.names()

    @staticmethod
    def workloads() -> list[str]:
        """Registered workload names."""
        return WORKLOADS.names()

    # ---------------------------------------------------------------- fluency
    def configure(self, **topology_kwargs) -> "Scenario":
        """Merge extra keyword arguments into the topology builder call."""
        self.topology_kwargs.update(topology_kwargs)
        return self

    def tpp(self, name: str, program, *, filter: Optional[PacketFilter] = None,
            sample_frequency: int = 1, num_hops: int = 8, priority: int = 0,
            echo_to_source: bool = False,
            aggregator: Optional[Callable] = None,
            collector: Union[Collector, str, None] = None,
            senders: Optional[list[str]] = None,
            receivers: Optional[list[str]] = None) -> "Scenario":
        """Declare a piggy-backed TPP application (§4.5's descriptor, fluent).

        ``program`` is TPP assembly source (compiled with ``num_hops``), an
        already-compiled :class:`~repro.core.compiler.CompiledTPP`, or a raw
        :class:`~repro.core.packet_format.TPP` template.  ``aggregator`` is a
        per-host factory ``(host_name, collector) -> Aggregator``; omit it
        and attach plain callbacks with :meth:`collect` instead.
        """
        if any(spec.name == name for spec in self.tpp_specs):
            raise ValueError(f"a TPP application named {name!r} is already declared")
        self.tpp_specs.append(TppSpec(
            name=name, program=program,
            packet_filter=filter if filter is not None else PacketFilter(),
            sample_frequency=sample_frequency, num_hops=num_hops,
            priority=priority, echo_to_source=echo_to_source,
            aggregator=aggregator, collector=collector,
            senders=senders, receivers=receivers))
        return self

    def workload(self, workload: Union[str, Callable], *, name: Optional[str] = None,
                 **kwargs) -> "Scenario":
        """Declare a workload: a registered name or a factory callable.

        Factories are called at build time as ``factory(experiment,
        **kwargs)`` and may return any handle (it lands in
        ``result.workloads[name]``).  Registered workloads that take a
        ``seed`` draw one from the scenario's master rng unless given one
        explicitly.
        """
        if isinstance(workload, str):
            if workload not in WORKLOADS:
                WORKLOADS.get(workload)      # raises with the registered menu
            label = name or workload
        elif callable(workload):
            label = name or getattr(workload, "__name__", f"workload{len(self.workload_specs)}")
        else:
            raise TypeError("workload must be a registered name or a callable factory")
        if any(spec.name == label for spec in self.workload_specs):
            raise ValueError(f"a workload named {label!r} is already declared; "
                             f"pass name= to disambiguate")
        self.workload_specs.append(WorkloadSpec(name=label, workload=workload,
                                                kwargs=dict(kwargs)))
        return self

    def collector(self, shards: int = 1, *, epoch_s: Optional[float] = None,
                  transport: str = "inline", batch: Optional[int] = 64,
                  capacity: int = 4096,
                  hosts: Optional[list[str]] = None,
                  retain: bool = True,
                  tree=None, shed=None, delta: bool = False,
                  delta_resync_every: int = 0) -> "Scenario":
        """Route every application's summaries through a sharded collector
        tier behind one virtual address (§4.5's deployment model).

        Args:
            shards: number of :class:`~repro.collect.CollectorShard`
                services; (app, host, key) is consistently hashed across
                them and ``merge()`` reconstructs the global view, so
                merged results are invariant in this number.
            epoch_s: push-and-flush period.  Each epoch the live experiment
                pushes every aggregator's summary (stamped with the
                simulation time) and the shards fold their batch buffers.
                ``None`` (default) defers to one push/flush at finish.
            transport: ``"inline"`` delivers submissions as direct calls —
                no simulated traffic, so runs stay byte-identical to the
                unsharded path; ``"network"`` ships summaries as UDP
                packets from the submitting host to the shard's host over
                the simulated fabric (epoch pushes recommended: packets
                submitted after the clock stops are never delivered).
            batch: shard batch size — the buffer folds into merged state
                when it fills (or at each epoch, whichever comes first).
                ``None`` disables the fill trigger: folds happen only at
                epochs and at finish.
            capacity: shard backpressure bound; submissions beyond a full
                buffer are dropped and accounted, never queued unboundedly.
                Because a batch fold empties the buffer synchronously, the
                bound only engages with deferred folding (``batch=None``)
                or when ``capacity < batch``.
            hosts: explicit shard placement for the network transport
                (defaults to round-robin over sorted host names).
            retain: keep each app's front-door submission log.  Disable
                for long epoch-push runs — the log would hold every
                cumulative snapshot, while shard state stays bounded by
                last-writer-wins regardless.
            tree: aggregation-tree shape — a fan-in (int), a
                :class:`~repro.collect.TreeSpec`, or None for the flat
                single-tier merge.  Semantics-free: any shape reconstructs
                the identical global view (differential-tested).
            shed: backpressure policy for full shard buffers — a policy
                name (one of :data:`~repro.collect.SHED_POLICIES`), a
                :class:`~repro.collect.ShedSpec`, or None for the default
                ``"drop-newest"`` tail drop.  Every shed is accounted in
                ``result.summary_drops_by_policy``.
            delta: encode submissions as per-source delta channels (epoch
                diffs with sequence numbers and cumulative-resync
                fallback) instead of cumulative re-sends.  Exact: merged
                views are byte-identical to cumulative mode.
            delta_resync_every: sender keyframe interval backstop for
                delta channels (0 disables; receiver-driven resyncs
                happen regardless).

        Single-shard inline planes are byte-identical to the legacy
        in-memory :class:`~repro.endhost.Collector` (differential-tested
        for all six apps); ``benchmarks/bench_collector_scale.py`` sweeps
        shard counts and asserts merged-view invariance.
        """
        # Validation is eager (like topology/workload names) so mistakes
        # surface at declaration, not deep inside the build.
        from repro.collect import TRANSPORTS
        from repro.collect.shard import as_shed_spec
        from repro.collect.virtual import as_tree_spec
        if shards < 1:
            raise ValueError("the collector tier needs at least one shard")
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}; "
                             f"choose from {TRANSPORTS}")
        if epoch_s is not None and epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        if (batch is not None and batch < 1) or capacity < 1:
            raise ValueError("batch (when set) and capacity must be >= 1")
        if delta_resync_every < 0:
            raise ValueError("delta_resync_every must be >= 0")
        self.collector_spec = CollectorSpec(shards=shards, epoch_s=epoch_s,
                                            transport=transport, batch=batch,
                                            capacity=capacity,
                                            hosts=list(hosts) if hosts else None,
                                            retain=retain,
                                            tree=as_tree_spec(tree),
                                            shed=as_shed_spec(shed) if shed is not None else None,
                                            delta=bool(delta),
                                            delta_resync_every=delta_resync_every)
        return self

    def faults(self, plan=None, **generator_kwargs) -> "Scenario":
        """Declare the fault plane (see :mod:`repro.faults`).

        Accepts a :class:`~repro.faults.FaultSpec` (used as-is), a
        :class:`~repro.faults.FaultPlan` (wrapped), or generator knobs
        forwarded to :class:`~repro.faults.FaultSpec` (``seed``,
        ``corrupt_links``, ``loss_rate``, ``onset_s``, ``fail_links``,
        ``fail_at_s``, ``repair_after_s``, ``links``) that resolve to a
        plan once the topology exists.  Validation is eager — bad knobs
        fail here, not inside the build.
        """
        from repro.faults import FaultPlan, FaultSpec
        if isinstance(plan, FaultSpec):
            if generator_kwargs:
                raise ValueError("pass either a FaultSpec or generator "
                                 "kwargs, not both")
            self.fault_spec = plan
        elif isinstance(plan, FaultPlan):
            if generator_kwargs:
                raise ValueError("pass either a FaultPlan or generator "
                                 "kwargs, not both")
            self.fault_spec = FaultSpec(plan=plan)
        elif plan is None:
            self.fault_spec = FaultSpec(**generator_kwargs)
        else:
            raise TypeError(f"faults() takes a FaultSpec, a FaultPlan, or "
                            f"generator kwargs; got {type(plan).__name__}")
        return self

    def remediation(self, policy="do-nothing", **spec_kwargs) -> "Scenario":
        """Declare the remediation loop (see :mod:`repro.faults.policy`).

        ``policy`` is a registered policy name (resolved eagerly against
        the ``@register_policy`` registry, so typos fail with the menu) or
        a pre-built :class:`~repro.faults.RemediationSpec`; keyword knobs
        (``app``, ``period_s``, ``threshold``, ``min_path_diversity``,
        ``repair_time_s``) forward to the spec.
        """
        from repro.faults import POLICIES, RemediationSpec
        if isinstance(policy, RemediationSpec):
            if spec_kwargs:
                raise ValueError("pass either a RemediationSpec or spec "
                                 "kwargs, not both")
            spec = policy
        elif isinstance(policy, str):
            spec = RemediationSpec(policy=policy, **spec_kwargs)
        else:
            raise TypeError(f"remediation() takes a policy name or a "
                            f"RemediationSpec; got {type(policy).__name__}")
        if spec.policy not in POLICIES:
            POLICIES.get(spec.policy)        # raises with the registered menu
        self.remediation_spec = spec
        return self

    def flight_recorder(self, spec=None, *, capacity: int = 4096,
                        sample_every: int = 1,
                        apps: Optional[list[str]] = None,
                        links: Optional[list[str]] = None) -> "Scenario":
        """Declare the dataplane flight recorder (see
        :mod:`repro.obs.flightrec`).

        Accepts a pre-built :class:`~repro.obs.RecorderSpec` (used as-is)
        or policy knobs: ``capacity`` (per-node ring-buffer records),
        ``sample_every`` (record 1-in-N flows by stable flow-id hash;
        drops are always recorded), ``apps`` (only packets carrying a TPP
        of these declared applications), ``links`` (tap only ports on
        these link names).  Validation is eager — bad knobs fail here.

        Recording is pure observation: the run's event sequence and
        canonical result are byte-identical with the recorder on or off
        (differential-tested on all six apps).  The recorded journeys land
        on ``result.journeys`` and the counters on ``result.flightrec``.
        """
        from repro.obs import RecorderSpec
        if isinstance(spec, RecorderSpec):
            if apps is not None or links is not None or capacity != 4096 \
                    or sample_every != 1:
                raise ValueError("pass either a RecorderSpec or policy "
                                 "kwargs, not both")
            self.recorder_spec = spec
        elif spec is None:
            self.recorder_spec = RecorderSpec(
                capacity=capacity, sample_every=sample_every,
                apps=tuple(apps) if apps is not None else None,
                links=tuple(links) if links is not None else None)
        else:
            raise TypeError(f"flight_recorder() takes a RecorderSpec or "
                            f"policy kwargs; got {type(spec).__name__}")
        return self

    def collect(self, on_tpp: Callable, *, app: Optional[str] = None) -> "Scenario":
        """Attach a completed-TPP callback to a declared TPP application.

        Defaults to the most recently declared app, so
        ``.tpp(...).collect(on_tpp=...)`` reads naturally.  The callback runs
        after the app's aggregator (if any) on every receiving host.
        """
        spec = self._find_tpp(app)
        spec.callbacks.append(on_tpp)
        return self

    def setup(self, hook: Hook) -> "Scenario":
        """Run ``hook(experiment)`` after build, before the clock starts.

        The escape hatch for wiring Scenario does not model first-class —
        per-flow controllers, scheduled link failures, custom meters.  Hooks
        run in declaration order.
        """
        self.setup_hooks.append(hook)
        return self

    def finalize(self, hook: Hook) -> "Scenario":
        """Run ``hook(experiment)`` at finish, after teardown callbacks.

        Use it to compute derived results into ``experiment.extras``.
        """
        self.finalize_hooks.append(hook)
        return self

    def map_result(self, mapper: Callable[[ExperimentResult], Any]) -> "Scenario":
        """Post-process the :class:`ExperimentResult` that :meth:`run` returns.

        Lets app modules keep their domain result types
        (``MicroburstResult``, ``RcpExperimentResult``, ...) while the whole
        run goes through the session layer.
        """
        self._result_mapper = mapper
        return self

    def _find_tpp(self, app: Optional[str]) -> TppSpec:
        if not self.tpp_specs:
            raise ValueError("declare a .tpp(...) application before .collect(...)")
        if app is None:
            return self.tpp_specs[-1]
        for spec in self.tpp_specs:
            if spec.name == app:
                return spec
        raise KeyError(f"no declared TPP application {app!r}; "
                       f"have {[spec.name for spec in self.tpp_specs]}")

    # ---------------------------------------------------------------- running
    def build(self, duration_s: Optional[float] = None,
              telemetry=None) -> Experiment:
        """Construct the live experiment without starting the clock.

        ``telemetry`` is an optional :class:`repro.obs.Telemetry`; omitted,
        the experiment uses the ambient one (disabled unless installed with
        :func:`repro.obs.use`).
        """
        return Experiment(self, duration_s=duration_s, telemetry=telemetry)

    def run(self, duration_s: Optional[float] = 1.0, *,
            run_until_idle: bool = False, telemetry=None):
        """Build, simulate for ``duration_s``, tear down, return the result.

        Returns the :class:`ExperimentResult`, or whatever
        :meth:`map_result`'s mapper turns it into.
        """
        result = self.build(duration_s, telemetry=telemetry) \
            .run(duration_s, run_until_idle=run_until_idle)
        if self._result_mapper is not None:
            return self._result_mapper(result)
        return result

    def copy(self) -> "Scenario":
        """An independent deep copy (tweak a base scenario per variant)."""
        return copy.deepcopy(self)

    # ----------------------------------------------------------- serialization
    def to_spec(self) -> "ScenarioSpec":
        """Extract a picklable :class:`~repro.session.spec.ScenarioSpec`.

        The spec crosses process boundaries (the sweep layer fans specs
        across a pool) and rebuilds a byte-identical scenario via
        :meth:`ScenarioSpec.to_scenario`.  Every callable the scenario
        holds — hooks, collect callbacks, aggregator factories, workload
        factories — must be a module-level callable or a
        ``functools.partial`` of one; lambdas and closures raise
        :class:`~repro.session.spec.SpecError` here, eagerly, with the
        offending piece named.
        """
        return ScenarioSpec.from_scenario(self)

    @classmethod
    def from_spec(cls, spec: "ScenarioSpec") -> "Scenario":
        """Rebuild a scenario from a spec (``spec.to_scenario()`` mirror)."""
        return spec.to_scenario()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Scenario {self.name!r} topology={self.topology_name!r} "
                f"seed={self.seed} tpps={[s.name for s in self.tpp_specs]} "
                f"workloads={[s.name for s in self.workload_specs]}>")
