"""Hardware area model (§6.1, Table 4).

Two questions the paper answers about die area:

* what the TCPU costs on the NetFPGA prototype, measured by Xilinx synthesis
  reports — Table 4's slices / registers / LUTs / LUT-FF pairs for the
  4-pipeline reference router with and without the TCPU;
* what it would cost on a real switching ASIC, extrapolated from Bosshart et
  al.'s RMT numbers: 7 000 match-action processing units cost under 7 % of
  die area, and TPP support needs only 5 instructions × 64 stages = 320
  execution units, i.e. about 0.32 % of the die.

The NetFPGA numbers are synthesis outputs reproduced as calibration
constants; the ASIC number is a scaling argument that this module implements
as a function so its assumptions are explicit and testable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceCost:
    """One Table 4 row: baseline router usage and the extra the TCPU adds."""

    name: str
    router: float
    tcpu_extra: float

    @property
    def total(self) -> float:
        return self.router + self.tcpu_extra

    @property
    def percent_extra(self) -> float:
        return 100.0 * self.tcpu_extra / self.router


#: Table 4: cost of TPP modules at 4 pipelines in the NetFPGA (thousands of units).
NETFPGA_TABLE4 = [
    ResourceCost("Slices", router=26.8e3, tcpu_extra=5.8e3),
    ResourceCost("Slice registers", router=64.7e3, tcpu_extra=14.0e3),
    ResourceCost("LUTs", router=69.1e3, tcpu_extra=20.8e3),
    ResourceCost("LUT-flip flop pairs", router=88.8e3, tcpu_extra=21.8e3),
]

#: Paper-reported percentage extras for the same rows (used as the check).
NETFPGA_TABLE4_PAPER_PERCENT = {
    "Slices": 21.6,
    "Slice registers": 21.6,
    "LUTs": 30.1,
    "LUT-flip flop pairs": 24.5,
}


def netfpga_percent_extra() -> dict[str, float]:
    """Percentage resource increase of adding the TCPU on the NetFPGA."""
    return {row.name: row.percent_extra for row in NETFPGA_TABLE4}


def asic_tcpu_area_percent(instructions_per_packet: int = 5,
                           stages: int = 64,
                           rmt_processing_units: int = 7000,
                           rmt_area_percent: float = 7.0) -> float:
    """Extrapolate the ASIC area cost of TCPU execution units (§6.1, "Die Area").

    Bosshart et al. report that ``rmt_processing_units`` RISC-like action
    units cost less than ``rmt_area_percent`` of a switching ASIC.  A TPP
    needs one execution unit per instruction per stage across the
    ingress/egress pipelines — 5 × 64 = 320 — so the area scales down
    proportionally (≈0.32 %).
    """
    if rmt_processing_units <= 0:
        raise ValueError("rmt_processing_units must be positive")
    tcpu_units = instructions_per_packet * stages
    return rmt_area_percent * tcpu_units / rmt_processing_units


@dataclass
class AreaReport:
    """Summary used by the Table 4 benchmark."""

    netfpga_percent_extra: dict[str, float]
    asic_tcpu_units: int
    asic_area_percent: float
    max_netfpga_percent_extra: float


def build_area_report(instructions_per_packet: int = 5, stages: int = 64) -> AreaReport:
    percents = netfpga_percent_extra()
    return AreaReport(
        netfpga_percent_extra=percents,
        asic_tcpu_units=instructions_per_packet * stages,
        asic_area_percent=asic_tcpu_area_percent(instructions_per_packet, stages),
        max_netfpga_percent_extra=max(percents.values()),
    )
