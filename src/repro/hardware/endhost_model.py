"""End-host dataplane throughput model (§6.2, Figure 10 and Table 5).

The paper's end-host microbenchmark runs on a specific 4-core i7; absolute
Gb/s therefore cannot be re-measured here.  What can be reproduced is the
*structure* of the result, which follows from three cost components:

* a fixed per-packet CPU cost in the shim (match + copy),
* a per-filter-rule evaluation cost (the Table 5 sweep),
* a per-flow bookkeeping/context-switch cost that only matters when the
  number of concurrent flows is large (Table 5's "all" row at 1000 rules),

plus a purely arithmetic goodput reduction from the TPP header bytes
(Figure 10's left panel): stamping a 260 B TPP on every MSS-sized segment
costs ~17 % of application goodput even though network throughput barely
moves.

The model's constants are calibrated once against the paper's baseline points
(8.8 Gb/s with an empty filter table, 4 Gb/s single-flow TCP goodput,
6.5 Gb/s with 20 flows); everything else — the shape of both figures — is
derived, not fitted point by point.
"""

from __future__ import annotations

from dataclasses import dataclass

MTU_BYTES = 1500
MSS_BYTES = 1240
TPP_PROBE_BYTES = 260            # the Figure 10 experiment's TPP size


@dataclass(frozen=True)
class EndHostCostModel:
    """CPU cost structure of the software dataplane shim."""

    #: Seconds of CPU per packet with an empty filter table, calibrated so an
    #: MTU packet stream saturates at the paper's 8.8 Gb/s.
    base_packet_cost_s: float = MTU_BYTES * 8 / 8.8e9
    #: Seconds per filter rule evaluated per packet (calibrated from the
    #: 1000-rule row of Table 5: 8.8 -> 3.6 Gb/s).
    per_rule_cost_s: float = 2.0e-9
    #: Seconds per active flow per packet of scheduling/bookkeeping overhead
    #: (only visible in Table 5's "all" scenario with 1000 flows).
    per_flow_cost_s: float = 5.2e-9
    #: Single-flow TCP goodput without TPPs (Figure 10's right-most point).
    single_flow_goodput_bps: float = 4.0e9
    #: Aggregate TCP goodput with 20 flows without TPPs.
    multi_flow_goodput_bps: float = 6.5e9

    # -------------------------------------------------------------- Table 5
    def filter_chain_throughput_bps(self, num_rules: int, scenario: str = "first",
                                    packet_bytes: int = MTU_BYTES,
                                    num_flows: int = 10) -> float:
        """Attainable network throughput with ``num_rules`` installed filters.

        ``scenario`` is "first", "last" (flows match the first/last rule —
        identical cost because the shim evaluates the chain linearly) or
        "all" (one flow per rule, so flow-state overhead scales with the rule
        count as well).
        """
        if scenario not in ("first", "last", "all"):
            raise ValueError("scenario must be 'first', 'last' or 'all'")
        flows = max(num_flows, num_rules) if scenario == "all" else num_flows
        per_packet = (self.base_packet_cost_s
                      + num_rules * self.per_rule_cost_s
                      + flows * self.per_flow_cost_s * (1 if scenario == "all" else 0))
        return packet_bytes * 8 / per_packet

    # ------------------------------------------------------------- Figure 10
    def _baseline_goodput_bps(self, num_flows: int) -> float:
        """Baseline (no TPP) TCP goodput as a function of flow count."""
        if num_flows <= 1:
            return self.single_flow_goodput_bps
        # Goodput grows with parallelism and saturates at the 20-flow figure.
        span = self.multi_flow_goodput_bps - self.single_flow_goodput_bps
        return self.single_flow_goodput_bps + span * min(1.0, (num_flows - 1) / 19.0)

    def tpp_bytes_per_packet(self, sampling_frequency: float) -> float:
        """Average TPP bytes added per transmitted packet (∞ => no TPPs)."""
        if sampling_frequency == float("inf") or sampling_frequency <= 0:
            return 0.0
        return TPP_PROBE_BYTES / sampling_frequency

    def network_throughput_bps(self, num_flows: int, sampling_frequency: float) -> float:
        """Figure 10 (right): on-wire throughput, nearly flat in the sampling rate.

        The benchmark is CPU-bound (a veth pair, no NIC), so what the shim can
        push per second is set by the per-packet CPU cost.  Attaching a TPP
        adds one filter evaluation plus a copy of the TPP bytes — small
        relative to the per-packet base cost — which is why the measured
        network throughput barely moves while goodput shrinks.
        """
        baseline_wire = self._baseline_goodput_bps(num_flows) * (MTU_BYTES / MSS_BYTES)
        extra = self.tpp_bytes_per_packet(sampling_frequency)
        # CPU slowdown factor: rule evaluation + proportional copy cost.
        per_packet_cpu = self.base_packet_cost_s \
            + (self.per_rule_cost_s if extra > 0 else 0.0) \
            + (extra / MTU_BYTES) * self.base_packet_cost_s * 0.25
        slowdown = self.base_packet_cost_s / per_packet_cpu
        return baseline_wire * slowdown

    def application_goodput_bps(self, num_flows: int, sampling_frequency: float) -> float:
        """Figure 10 (left): application goodput falls with the header overhead."""
        extra = self.tpp_bytes_per_packet(sampling_frequency)
        network = self.network_throughput_bps(num_flows, sampling_frequency)
        return network * MSS_BYTES / (MTU_BYTES + extra)


#: Paper-reported Table 5 rows (Gb/s) for reference/benchmark comparison.
TABLE5_PAPER_GBPS = {
    "first": {0: 8.8, 1: 8.7, 10: 8.6, 100: 7.8, 1000: 3.6},
    "last": {0: 8.8, 1: 8.7, 10: 8.6, 100: 7.7, 1000: 3.6},
    "all": {0: 8.8, 1: 8.7, 10: 8.3, 100: 6.7, 1000: 1.4},
}

#: Paper-reported Figure 10 anchor points (Gb/s).
FIGURE10_PAPER_GBPS = {
    "goodput_1flow_no_tpp": 4.0,
    "goodput_20flows_no_tpp": 6.5,
}
