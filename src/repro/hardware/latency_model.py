"""Hardware latency model (§6.1, Table 3).

The paper's hardware evaluation is cycle accounting: how many cycles each
step of TPP execution costs on the 160 MHz NetFPGA prototype versus a 1 GHz
commercial ASIC, and what that means for packet latency.  The cycle costs are
inputs (they come from synthesis runs and ASIC designers' estimates, not from
measurements this reproduction could repeat), so the model's job is to
combine them faithfully and derive the §6.1 headline numbers:

* the worst-case extra latency a TPP adds — 50 ns on an ASIC when all five
  instructions are CSTOREs (10 cycles each at 1 GHz),
* the buffering needed to absorb that stall at 1 Tb/s aggregate — 6.25 kB,
* the relative latency increase — 10–25 % of a 200–500 ns switch transit,
* the ~50 ns packetisation latency of a 64 B packet at 10 Gb/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.isa import Instruction, Opcode


@dataclass(frozen=True)
class PlatformCosts:
    """Per-step cycle costs for one hardware platform (one Table 3 column)."""

    name: str
    clock_hz: float
    parse_cycles: float
    memory_access_cycles: float       # one switch-memory read or write (worst case)
    cstore_cycles: float              # a CSTORE, including its memory accesses
    other_execute_cycles: float       # non-memory execution cost of other opcodes
    rewrite_cycles: float
    pipeline_stages: int
    baseline_per_stage_cycles: float  # the switch's existing per-stage latency

    @property
    def cycle_ns(self) -> float:
        return 1e9 / self.clock_hz

    # ------------------------------------------------------------ instruction
    def instruction_cycles(self, instruction: Instruction) -> float:
        """Worst-case cycles of stall one instruction can add to the pipeline."""
        if instruction.opcode is Opcode.NOP:
            return 0.0
        if instruction.opcode is Opcode.CSTORE:
            return self.cstore_cycles
        accesses = (1 if instruction.reads_switch else 0) + (1 if instruction.writes_switch else 0)
        return max(accesses, 1) * self.memory_access_cycles + self.other_execute_cycles

    def tpp_added_latency_ns(self, instructions: Sequence[Instruction]) -> float:
        """Worst-case latency a TPP adds end to end across the pipeline."""
        cycles = sum(self.instruction_cycles(instr) for instr in instructions)
        return cycles * self.cycle_ns

    def tpp_added_per_stage_cycles(self, instructions: Sequence[Instruction]) -> float:
        """The same stall expressed per stage (instructions spread over stages)."""
        cycles = (self.parse_cycles + self.rewrite_cycles
                  + sum(self.instruction_cycles(i) for i in instructions))
        return cycles / self.pipeline_stages


#: NetFPGA prototype: 160 MHz, single-port block RAM with 1-cycle access;
#: parsing, execution and rewrite all complete within a cycle except CSTORE,
#: which needs one extra (the measured per-stage total was exactly 2 cycles).
NETFPGA = PlatformCosts(name="NetFPGA", clock_hz=160e6, parse_cycles=1.0,
                        memory_access_cycles=1.0, cstore_cycles=2.0,
                        other_execute_cycles=0.0, rewrite_cycles=1.0,
                        pipeline_stages=4, baseline_per_stage_cycles=2.5)

#: Commercial 1 GHz ASIC: 2–5 cycle single-port SRAM access (worst case 5),
#: a 10-cycle CSTORE, and a 200–500 ns end-to-end transit over 4–5 stages
#: (≈50–100 cycles per stage of existing latency).
ASIC = PlatformCosts(name="ASIC", clock_hz=1e9, parse_cycles=1.0,
                     memory_access_cycles=5.0, cstore_cycles=10.0,
                     other_execute_cycles=0.0, rewrite_cycles=1.0,
                     pipeline_stages=5, baseline_per_stage_cycles=75.0)


#: Table 3 of the paper, as (NetFPGA, ASIC) pairs of per-step cycle costs.
TABLE3_PAPER_CYCLES = {
    "Parsing": (1.0, 1.0),
    "Memory access": (1.0, 5.0),
    "Instr. Exec.: CSTORE": (1.0, 10.0),
    "Instr. Exec.: (the rest)": (1.0, 1.0),
    "Packet rewrite": (1.0, 1.0),
    "Total per-stage": (2.5, 75.0),
}


def worst_case_tpp(num_instructions: int = 5) -> list[Instruction]:
    """The paper's worst case: every instruction is a CSTORE."""
    return [Instruction(Opcode.CSTORE, address=0x1010, packet_offset=0)
            for _ in range(num_instructions)]


def packetization_latency_ns(packet_bytes: int = 64, line_rate_bps: float = 10e9) -> float:
    """Serialisation latency of a packet at line rate (~51 ns for 64 B at 10 Gb/s)."""
    return packet_bytes * 8.0 / line_rate_bps * 1e9


def buffering_for_stall_bytes(stall_ns: float, aggregate_rate_bps: float = 1e12) -> float:
    """Bytes of buffering that absorb a pipeline stall at the switch's aggregate rate.

    The paper: a 50 ns worst-case stall at 1 Tb/s needs 6.25 kB for the whole
    switch.
    """
    return stall_ns * 1e-9 * aggregate_rate_bps / 8.0


def relative_latency_increase(added_ns: float,
                              switch_latency_ns_range: tuple[float, float] = (200.0, 500.0)
                              ) -> tuple[float, float]:
    """Added latency relative to typical unloaded switch latency (10–25 % band)."""
    low, high = switch_latency_ns_range
    return (added_ns / high, added_ns / low)


@dataclass
class LatencyReport:
    """The §6.1 headline numbers for one platform."""

    platform: str
    worst_case_added_ns: float
    added_per_stage_cycles: float
    baseline_per_stage_cycles: float
    buffering_bytes_at_1tbps: float
    relative_increase_range: tuple[float, float]
    packetization_ns_64b_10g: float


def build_latency_report(platform: PlatformCosts,
                         instructions: Iterable[Instruction] | None = None) -> LatencyReport:
    """Summarise the latency model for one platform."""
    program = list(instructions) if instructions is not None else worst_case_tpp()
    added = platform.tpp_added_latency_ns(program)
    return LatencyReport(
        platform=platform.name,
        worst_case_added_ns=added,
        added_per_stage_cycles=platform.tpp_added_per_stage_cycles(program),
        baseline_per_stage_cycles=platform.baseline_per_stage_cycles,
        buffering_bytes_at_1tbps=buffering_for_stall_bytes(added),
        relative_increase_range=relative_latency_increase(added),
        packetization_ns_64b_10g=packetization_latency_ns(),
    )
