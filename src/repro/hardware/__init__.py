"""Feasibility models for §6: latency, die area, and end-host throughput."""

from .area_model import (AreaReport, NETFPGA_TABLE4, NETFPGA_TABLE4_PAPER_PERCENT,
                         ResourceCost, asic_tcpu_area_percent, build_area_report,
                         netfpga_percent_extra)
from .endhost_model import (EndHostCostModel, FIGURE10_PAPER_GBPS, MSS_BYTES, MTU_BYTES,
                            TABLE5_PAPER_GBPS, TPP_PROBE_BYTES)
from .latency_model import (ASIC, LatencyReport, NETFPGA, PlatformCosts,
                            TABLE3_PAPER_CYCLES, build_latency_report,
                            buffering_for_stall_bytes, packetization_latency_ns,
                            relative_latency_increase, worst_case_tpp)

__all__ = [
    "ASIC", "AreaReport", "EndHostCostModel", "FIGURE10_PAPER_GBPS", "LatencyReport",
    "MSS_BYTES", "MTU_BYTES", "NETFPGA", "NETFPGA_TABLE4", "NETFPGA_TABLE4_PAPER_PERCENT",
    "PlatformCosts", "ResourceCost", "TABLE3_PAPER_CYCLES", "TABLE5_PAPER_GBPS",
    "TPP_PROBE_BYTES", "asic_tcpu_area_percent", "build_area_report",
    "build_latency_report", "buffering_for_stall_bytes", "netfpga_percent_extra",
    "packetization_latency_ns", "relative_latency_increase", "worst_case_tpp",
]
