"""Parallel sweep orchestration over serializable scenario specs.

The sweep plane turns the session layer's fluent ``Scenario`` builder into
a fan-out engine: a :class:`SweepSpec` expands one base scenario into a
grid (or zip, or seed-replicated set) of picklable
:class:`~repro.session.ScenarioSpec` tasks, and a :class:`SweepRunner`
executes them serially or across a process pool — with per-task timeouts,
crash/retry accounting, incremental result streaming, and a resumable
on-disk manifest.  Because every experiment returns a commutative-monoid
:class:`~repro.session.ResultSummary`, the canonical sweep artifact is
byte-identical regardless of worker count or completion order::

    from repro.session import Scenario
    from repro.sweep import SweepSpec, SweepRunner

    base = (Scenario("dumbbell", seed=1, hosts_per_side=2)
            .tpp("mon", "PUSH [Queue:QueueOccupancy]", num_hops=6)
            .workload("messages", offered_load=0.2))
    sweep = (SweepSpec(base)
             .axis("workload.messages.offered_load", [0.1, 0.3])
             .replicate(4))
    result = SweepRunner(workers=4, duration_s=0.5).run(sweep)
    print(result.canonical_json())
"""

from .plan import Axis, SweepSpec, SweepTask
from .runner import SweepResult, SweepRunner, TaskOutcome

__all__ = ["Axis", "SweepResult", "SweepRunner", "SweepSpec", "SweepTask",
           "TaskOutcome"]
