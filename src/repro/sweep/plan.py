"""Sweep plans: declarative expansion of one base spec into many.

A :class:`SweepSpec` takes a base scenario (or spec) plus a set of *axes*
and expands them into a list of :class:`SweepTask`s — one fully-resolved,
picklable :class:`~repro.session.ScenarioSpec` per experiment.  Three
expansion modes cover the paper-reproduction workloads:

* ``grid`` (default) — the cartesian product of all axes, in axis
  declaration order (first axis varies slowest);
* ``zip`` — axes advance in lockstep (all must have equal length);
* seed replication — :meth:`SweepSpec.replicate` adds a ``seed`` axis, the
  common "same experiment, N seeds" pattern.

Axis paths address the spec declaratively::

    seed                      the master seed
    name                      the scenario label
    compile_traces            engine toggle (likewise seed_ecmp / stacks)
    topology.<kwarg>          a topology-builder keyword
    collector.<field>         a .collector(...) knob (shards, epoch_s, ...)
    collector.tree.<field>    an aggregation-tree knob (fanin); materialises
                              a default TreeSpec when the base has none
    collector.shed.<field>    a load-shedding knob (policy, sample_stride,
                              priority); likewise materialises a ShedSpec
    faults.<field>            a .faults(...) knob (loss_rate, corrupt_links,
                              onset_s, seed, ...)
    remediation.<field>       a .remediation(...) knob (policy, period_s,
                              threshold, min_path_diversity, ...)
    recorder.<field>          a .flight_recorder(...) knob (capacity,
                              sample_every, apps, links); materialises a
                              default RecorderSpec when the base has none
    workload.<name>.<kwarg>   a keyword of the named workload declaration
    tpp.<name>.<field>        a field of the named TPP declaration
                              (sample_frequency, num_hops, priority, ...)

Expansion is pure and deterministic: the same plan always yields the same
tasks in the same order with the same labels and fingerprints, which is
what lets the runner's manifest recognise completed work across runs.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, fields, replace
from typing import Any, Iterable, Optional, Sequence, Union

from repro.collect import ShedSpec, TreeSpec
from repro.faults import FaultSpec, RemediationSpec
from repro.obs import RecorderSpec
from repro.session import Scenario, ScenarioSpec
from repro.session.scenario import CollectorSpec
from repro.session.spec import SpecError, ensure_picklable

__all__ = ["Axis", "SweepSpec", "SweepTask"]

#: Top-level spec fields an axis may address directly.
_SCALAR_PATHS = ("seed", "name", "stacks", "seed_ecmp", "compile_traces")


@dataclass(frozen=True)
class Axis:
    """One swept dimension: a dotted path and the values it takes."""

    path: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"axis {self.path!r} needs at least one value")


@dataclass
class SweepTask:
    """One fully-resolved experiment: label + overrides + picklable spec."""

    index: int
    label: str
    overrides: dict[str, Any]
    spec: ScenarioSpec
    fingerprint: str = ""

    def __post_init__(self) -> None:
        if not self.fingerprint:
            self.fingerprint = self.spec.fingerprint()


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _apply_override(spec: ScenarioSpec, path: str, value: Any) -> None:
    """Set one axis value on a (deep-copied) spec, validating the path."""
    head, _, rest = path.partition(".")
    if head in _SCALAR_PATHS:
        if rest:
            raise SpecError(f"axis path {path!r}: {head!r} takes no sub-path")
        setattr(spec, head, value)
        return
    if head == "topology":
        if not rest:
            raise SpecError(f"axis path {path!r} needs a topology kwarg name")
        spec.topology_kwargs[rest] = value
        return
    if head == "collector":
        if not rest:
            raise SpecError(f"axis path {path!r} must be collector.<field>")
        if spec.collector is None:
            spec.collector = CollectorSpec()
        if "." in rest:
            # Nested streaming-collection knobs: collector.tree.<field> /
            # collector.shed.<field>, rewriting the sub-spec immutably so
            # sibling tasks sharing the base spec never alias state.
            sub, _, leaf = rest.partition(".")
            nested = {"tree": TreeSpec, "shed": ShedSpec}
            if sub not in nested or not leaf or "." in leaf:
                raise SpecError(f"axis path {path!r} must be "
                                f"collector.<field>, collector.tree.<field>, "
                                f"or collector.shed.<field>")
            sub_cls = nested[sub]
            if leaf not in {f.name for f in fields(sub_cls)}:
                raise SpecError(f"axis path {path!r}: {sub_cls.__name__} has "
                                f"no field {leaf!r}")
            current = getattr(spec.collector, sub) or sub_cls()
            spec.collector = replace(spec.collector,
                                     **{sub: replace(current, **{leaf: value})})
            return
        if rest not in {f.name for f in fields(CollectorSpec)}:
            raise SpecError(f"axis path {path!r}: CollectorSpec has no "
                            f"field {rest!r}")
        if rest == "tree" and isinstance(value, int) \
                and not isinstance(value, bool):
            value = TreeSpec(fanin=value)
        elif rest == "shed" and isinstance(value, str):
            value = ShedSpec(policy=value)
        spec.collector = replace(spec.collector, **{rest: value})
        return
    if head == "faults":
        if not rest or "." in rest:
            raise SpecError(f"axis path {path!r} must be faults.<field>")
        if spec.faults is None:
            spec.faults = FaultSpec()
        if rest not in {f.name for f in fields(FaultSpec)}:
            raise SpecError(f"axis path {path!r}: FaultSpec has no "
                            f"field {rest!r}")
        spec.faults = replace(spec.faults, **{rest: value})
        return
    if head == "remediation":
        if not rest or "." in rest:
            raise SpecError(f"axis path {path!r} must be remediation.<field>")
        if spec.remediation is None:
            spec.remediation = RemediationSpec()
        if rest not in {f.name for f in fields(RemediationSpec)}:
            raise SpecError(f"axis path {path!r}: RemediationSpec has no "
                            f"field {rest!r}")
        spec.remediation = replace(spec.remediation, **{rest: value})
        return
    if head == "recorder":
        if not rest or "." in rest:
            raise SpecError(f"axis path {path!r} must be recorder.<field>")
        if spec.recorder is None:
            spec.recorder = RecorderSpec()
        if rest not in {f.name for f in fields(RecorderSpec)}:
            raise SpecError(f"axis path {path!r}: RecorderSpec has no "
                            f"field {rest!r}")
        # RecorderSpec is frozen; replace() re-runs its validation, so bad
        # axis values (capacity=0, ...) fail at declaration time.
        spec.recorder = replace(spec.recorder, **{rest: value})
        return
    if head == "workload":
        wname, _, kwarg = rest.partition(".")
        if not wname or not kwarg:
            raise SpecError(f"axis path {path!r} must be workload.<name>.<kwarg>")
        for wspec in spec.workloads:
            if wspec.name == wname:
                wspec.kwargs[kwarg] = value
                return
        raise SpecError(f"axis path {path!r}: no declared workload {wname!r} "
                        f"(have {[w.name for w in spec.workloads]})")
    if head == "tpp":
        tname, _, attr = rest.partition(".")
        if not tname or not attr:
            raise SpecError(f"axis path {path!r} must be tpp.<name>.<field>")
        for tspec in spec.tpps:
            if tspec.name == tname:
                if not hasattr(tspec, attr):
                    raise SpecError(f"axis path {path!r}: TppSpec has no "
                                    f"field {attr!r}")
                setattr(tspec, attr, value)
                return
        raise SpecError(f"axis path {path!r}: no declared TPP {tname!r} "
                        f"(have {[t.name for t in spec.tpps]})")
    raise SpecError(
        f"axis path {path!r}: unknown root {head!r}; expected one of "
        f"{_SCALAR_PATHS + ('topology', 'collector', 'faults', 'remediation', 'recorder', 'workload', 'tpp')}")


class SweepSpec:
    """A base spec plus swept axes; :meth:`expand` yields the task list.

    Args:
        base: a :class:`Scenario` (converted via ``to_spec()``, so it must
            be spec-serializable) or an already-extracted
            :class:`ScenarioSpec`.
        mode: ``"grid"`` (cartesian product, default) or ``"zip"``
            (lockstep axes of equal length).
    """

    def __init__(self, base: Union[Scenario, ScenarioSpec], *,
                 mode: str = "grid") -> None:
        if mode not in ("grid", "zip"):
            raise ValueError(f"unknown sweep mode {mode!r}; use 'grid' or 'zip'")
        if isinstance(base, Scenario):
            base = base.to_spec()
        elif isinstance(base, ScenarioSpec):
            base = copy.deepcopy(base).validate()
        else:
            raise TypeError("base must be a Scenario or a ScenarioSpec")
        self.base = base
        self.mode = mode
        self.axes: list[Axis] = []

    # ---------------------------------------------------------------- fluency
    def axis(self, path: str, values: Iterable[Any]) -> "SweepSpec":
        """Add one swept dimension (see the module docstring for paths)."""
        values = tuple(values)
        if any(axis.path == path for axis in self.axes):
            raise ValueError(f"axis {path!r} is already declared")
        ensure_picklable(list(values), f"axis {path!r} values")
        # Validate the path (and each value's applicability) eagerly, on a
        # throwaway copy, so typos fail at declaration — not inside a worker.
        probe = copy.deepcopy(self.base)
        for value in values:
            _apply_override(probe, path, value)
        self.axes.append(Axis(path, values))
        return self

    def replicate(self, seeds: Union[int, Sequence[int]],
                  base_seed: Optional[int] = None) -> "SweepSpec":
        """Seed replication: run every point under each of these seeds.

        ``seeds`` is either an explicit sequence or a count ``n``, which
        expands to ``base_seed, base_seed+1, ..., base_seed+n-1``
        (``base_seed`` defaults to the base spec's seed).
        """
        if isinstance(seeds, int):
            if seeds < 1:
                raise ValueError("replicate(n) needs n >= 1")
            start = self.base.seed if base_seed is None else base_seed
            seeds = range(start, start + seeds)
        return self.axis("seed", seeds)

    # -------------------------------------------------------------- expansion
    def _combinations(self) -> Iterable[tuple[Any, ...]]:
        if not self.axes:
            return [()]
        if self.mode == "grid":
            return itertools.product(*(axis.values for axis in self.axes))
        lengths = {len(axis.values) for axis in self.axes}
        if len(lengths) != 1:
            raise ValueError(
                f"zip mode needs equal-length axes; got "
                f"{ {axis.path: len(axis.values) for axis in self.axes} }")
        return zip(*(axis.values for axis in self.axes))

    def expand(self) -> list[SweepTask]:
        """The deterministic task list: one resolved spec per combination."""
        tasks: list[SweepTask] = []
        for combo in self._combinations():
            overrides = {axis.path: value
                         for axis, value in zip(self.axes, combo)}
            spec = copy.deepcopy(self.base)
            for path, value in overrides.items():
                _apply_override(spec, path, value)
            label = ",".join(f"{path}={_format_value(value)}"
                             for path, value in overrides.items()) or "base"
            tasks.append(SweepTask(index=len(tasks), label=label,
                                   overrides=overrides, spec=spec))
        fingerprints: dict[str, str] = {}
        for task in tasks:
            if task.fingerprint in fingerprints:
                raise ValueError(
                    f"sweep points {fingerprints[task.fingerprint]!r} and "
                    f"{task.label!r} resolve to identical specs; "
                    f"de-duplicate the axes")
            fingerprints[task.fingerprint] = task.label
        return tasks

    def __len__(self) -> int:
        if not self.axes:
            return 1
        if self.mode == "grid":
            total = 1
            for axis in self.axes:
                total *= len(axis.values)
            return total
        return len(self.axes[0].values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        axes = {axis.path: len(axis.values) for axis in self.axes}
        return (f"<SweepSpec base={self.base.name!r} mode={self.mode!r} "
                f"axes={axes} points={len(self)}>")
