"""The sweep executor: specs across a process pool, results folded home.

:class:`SweepRunner` drives a list of :class:`~repro.sweep.plan.SweepTask`s
(or a whole :class:`~repro.sweep.plan.SweepSpec`) to completion:

* **serial** (``workers <= 1``): every spec rebuilds and runs in-process,
  in task order — the reference execution the differential tests compare
  the pool against;
* **parallel** (``workers >= 2``): specs are pickled across a
  ``ProcessPoolExecutor`` with a sliding submission window, per-task
  timeouts, worker-crash detection with bounded retries, and incremental
  result streaming (the optional ``on_outcome`` callback fires the moment
  each task settles, in completion order).

Because scenarios are deterministic and self-contained, and because
:class:`~repro.session.ResultSummary` values are commutative-monoid
bundles, the *merged* view of a sweep is invariant in worker count and
completion order: :meth:`SweepResult.canonical_artifact` renders
byte-identically whether the sweep ran serially, on 2 workers, or on 8 —
the sweep-layer analogue of the collect plane's shard-count invariance.

Resumability: give the runner a ``manifest_dir`` and every completed spec
is recorded (by content fingerprint) in ``manifest.json`` as it finishes;
a rerun loads the manifest, skips completed fingerprints, and still folds
their stored summaries into the full merged artifact.  The canonical
artifact of a resumed sweep is byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import multiprocessing

from repro.collect import SummaryBundle, summary_jsonable
from repro.obs import Telemetry
from repro.session import ResultSummary, ScenarioSpec

from .plan import SweepSpec, SweepTask

__all__ = ["SweepResult", "SweepRunner", "TaskOutcome"]

#: Terminal task states.
DONE, FAILED, TIMEOUT = "done", "failed", "timeout"


def _execute_task(spec: ScenarioSpec, duration_s: Optional[float],
                  run_until_idle: bool,
                  telemetry_slices: Optional[int] = None) -> ResultSummary:
    """Worker entry point: rebuild the scenario, run it, summarise.

    Module-level so the pool can import it; returns only the picklable
    :class:`ResultSummary` — live simulator state never crosses back.
    ``telemetry_slices`` (not ``None``) runs the experiment under a
    worker-local :class:`~repro.obs.Telemetry`, so the summary carries a
    telemetry snapshot home — observation only, never part of the
    canonical rendering.
    """
    telemetry = Telemetry(slices=telemetry_slices) \
        if telemetry_slices is not None else None
    experiment = spec.to_scenario().build(duration_s, telemetry=telemetry)
    result = experiment.run(duration_s, run_until_idle=run_until_idle)
    return ResultSummary.from_result(result)


@dataclass
class TaskOutcome:
    """How one sweep task ended."""

    index: int
    label: str
    fingerprint: str
    status: str                                   # done | failed | timeout
    summary: Optional[ResultSummary] = None
    error: Optional[str] = None
    attempts: int = 1
    wall_s: float = 0.0
    source: str = "run"                           # run | manifest

    def jsonable(self) -> dict:
        row = {"index": self.index, "label": self.label,
               "fingerprint": self.fingerprint, "status": self.status,
               "attempts": self.attempts, "source": self.source,
               "wall_s": self.wall_s}
        if self.error is not None:
            row["error"] = self.error
        if self.summary is not None:
            row["summary"] = self.summary.as_jsonable()
        return row


class SweepManifest:
    """The on-disk resume ledger: fingerprint -> terminal outcome.

    ``manifest.json`` is rewritten atomically after every settled task, so
    an interrupted sweep loses at most the task in flight.  Completed
    summaries are stored twice: canonically rendered (human-inspectable)
    and pickled (base64) so a resumed sweep rehydrates real
    :class:`ResultSummary` objects and can still build the full merged
    artifact without re-running anything.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "manifest.json"
        self.tasks: dict[str, dict] = {}
        self.accounting: dict[str, int] = {}
        if self.path.exists():
            data = json.loads(self.path.read_text(encoding="utf-8"))
            self.tasks = data.get("tasks", {})
            self.accounting = data.get("accounting", {})

    def completed_summary(self, fingerprint: str) -> Optional[ResultSummary]:
        entry = self.tasks.get(fingerprint)
        if entry is None or entry.get("status") != DONE:
            return None
        return pickle.loads(base64.b64decode(entry["pickle"]))

    def record(self, outcome: TaskOutcome) -> None:
        entry = {"label": outcome.label, "status": outcome.status,
                 "attempts": outcome.attempts, "wall_s": outcome.wall_s}
        if outcome.error is not None:
            entry["error"] = outcome.error
        if outcome.summary is not None:
            entry["summary"] = outcome.summary.as_jsonable()
            if outcome.summary.telemetry is not None:
                # Side channel only: worker telemetry rides next to (never
                # inside) the canonical summary rendering.
                entry["telemetry"] = outcome.summary.telemetry
            entry["pickle"] = base64.b64encode(
                pickle.dumps(outcome.summary)).decode("ascii")
        self.tasks[outcome.fingerprint] = entry

    def write(self, accounting: Optional[dict] = None) -> None:
        if accounting is not None:
            self.accounting = dict(accounting)
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({"version": 1, "accounting": self.accounting,
                              "tasks": self.tasks},
                             sort_keys=True, indent=2) + "\n"
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, self.path)


@dataclass
class SweepResult:
    """Everything a finished sweep produced, plus the invariant merged view."""

    outcomes: list[TaskOutcome]
    workers: int
    duration_s: Optional[float]
    wall_s: float = 0.0
    retries: int = 0
    worker_crashes: int = 0
    pool_restarts: int = 0
    skipped_from_manifest: int = 0

    # ------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def completed(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if o.status == DONE]

    @property
    def failed(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if o.status == FAILED]

    @property
    def timeouts(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if o.status == TIMEOUT]

    def summaries(self) -> dict[str, ResultSummary]:
        """label -> summary for every completed task."""
        return {o.label: o.summary for o in self.completed}

    def experiments_per_second(self) -> float:
        ran = [o for o in self.completed if o.source == "run"]
        return len(ran) / self.wall_s if self.wall_s > 0 and ran else 0.0

    # ----------------------------------------------------------- merged view
    def merged_bundle(self) -> Optional[SummaryBundle]:
        """The sweep-wide fold of every completed experiment's bundle.

        Folded in canonical (label, fingerprint) order — *not* completion
        order — over commutative-monoid bundles, so the result is invariant
        in worker count, scheduling, and completion order.
        """
        merged: Optional[SummaryBundle] = None
        ordered = sorted(self.completed,
                         key=lambda o: (o.label, o.fingerprint))
        for outcome in ordered:
            bundle = outcome.summary.bundle()
            if merged is None:
                merged = bundle
            else:
                merged.merge(bundle)
        return merged

    # ------------------------------------------------------------- artifacts
    def canonical_artifact(self) -> dict:
        """The deterministic sweep artifact (stable ordering throughout).

        Contains only run content — labels, fingerprints, statuses, result
        summaries, and the merged view.  Wall-clock, attempts, worker
        counts, and manifest provenance are deliberately excluded so the
        rendering is byte-identical across worker counts, completion
        orders, and resumed runs (see :meth:`accounting` for those).
        """
        rows = [{"label": o.label, "fingerprint": o.fingerprint,
                 "status": o.status,
                 "summary": o.summary.as_jsonable() if o.summary else None,
                 "error": o.error}
                for o in sorted(self.outcomes,
                                key=lambda o: (o.label, o.fingerprint))]
        merged = self.merged_bundle()
        return {
            "artifact": "repro.sweep",
            "tasks": len(self.outcomes),
            "completed": len(self.completed),
            "results": rows,
            "merged": summary_jsonable(merged) if merged is not None else None,
        }

    def canonical_json(self) -> str:
        """The canonical artifact as canonical JSON text (the byte contract)."""
        return json.dumps(self.canonical_artifact(), sort_keys=True,
                          indent=2) + "\n"

    def accounting(self) -> dict:
        """Non-deterministic run accounting (wall clock, retries, crashes)."""
        return {
            "workers": self.workers,
            "duration_s": self.duration_s,
            "wall_s": self.wall_s,
            "tasks": len(self.outcomes),
            "completed": len(self.completed),
            "failed": len(self.failed),
            "timeouts": len(self.timeouts),
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "pool_restarts": self.pool_restarts,
            "skipped_from_manifest": self.skipped_from_manifest,
            "experiments_per_second": self.experiments_per_second(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SweepResult {len(self.completed)}/{len(self.outcomes)} done "
                f"workers={self.workers} wall={self.wall_s:.2f}s "
                f"retries={self.retries} timeouts={len(self.timeouts)}>")


class SweepRunner:
    """Execute sweep tasks serially or across a process pool.

    Args:
        workers: pool size.  ``<= 1`` runs every spec in-process, serially
            (the reference execution); ``>= 2`` fans specs across a
            ``ProcessPoolExecutor``.
        duration_s / run_until_idle: forwarded to every scenario run.
        timeout_s: per-task wall-clock budget (pool mode only — a serial
            run cannot preempt itself).  A task past its budget is recorded
            as ``timeout`` and its worker process is torn down (the pool is
            rebuilt; other in-flight tasks are re-dispatched without
            consuming retry budget).
        retries: how many times a *failing or crashing* task is re-dispatched
            before being recorded as ``failed``.  Timeouts never retry — a
            deterministic spec that timed out once will time out again.
        manifest_dir: enable resumability: completed spec fingerprints (and
            their summaries) are persisted here incrementally; a rerun
            skips them and still folds their results into the artifact.
            The canonical artifact is also written here (``artifact.json``).
        mp_context: multiprocessing start method; defaults to ``"fork"``
            where available (workers inherit registered topologies and
            workloads even when they were registered at runtime, e.g. from
            a test module).  Under ``"spawn"`` every registration must be
            importable from the spec's modules.
        telemetry: the :class:`~repro.obs.Telemetry` the runner records its
            own spans and per-task timing into (``sweep.run`` /
            ``sweep.task``).  Timing and the per-task timeout both read
            spans, so the runner *requires* a live instance: omitted — or
            handed a disabled one — it builds a runner-local enabled
            telemetry.  Runner-side accounting (``wall_s``) is part of the
            runner's contract and still never touches canonical artifacts.
        worker_telemetry: when True, every worker runs its experiment under
            a fresh worker-local telemetry (``worker_slices`` engine
            slices), and the resulting snapshot rides home on
            ``ResultSummary.telemetry`` and into the manifest — next to,
            never inside, the canonical summary rendering.
    """

    def __init__(self, *, workers: int = 1, duration_s: Optional[float] = 1.0,
                 run_until_idle: bool = False, timeout_s: Optional[float] = None,
                 retries: int = 0,
                 manifest_dir: Union[str, Path, None] = None,
                 mp_context: Optional[str] = None,
                 poll_s: float = 0.02,
                 telemetry: Optional[Telemetry] = None,
                 worker_telemetry: bool = False,
                 worker_slices: int = 0) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.workers = workers
        self.duration_s = duration_s
        self.run_until_idle = run_until_idle
        self.timeout_s = timeout_s
        self.retries = retries
        self.manifest_dir = Path(manifest_dir) if manifest_dir is not None else None
        self.poll_s = poll_s
        if telemetry is None or not telemetry.enabled:
            telemetry = Telemetry()
        self.telemetry = telemetry
        self.worker_telemetry = worker_telemetry
        self.worker_slices = worker_slices
        if mp_context is None:
            mp_context = "fork" if "fork" in multiprocessing.get_all_start_methods() \
                else "spawn"
        self.mp_context = mp_context

    @property
    def _worker_slices(self) -> Optional[int]:
        """The ``telemetry_slices`` argument workers receive (None = off)."""
        return self.worker_slices if self.worker_telemetry else None

    # ------------------------------------------------------------------ entry
    def run(self, sweep: Union[SweepSpec, Sequence[SweepTask],
                               Sequence[ScenarioSpec]],
            on_outcome: Optional[Callable[[TaskOutcome], None]] = None
            ) -> SweepResult:
        """Run every task; return the :class:`SweepResult`.

        ``on_outcome`` (optional) is called with each :class:`TaskOutcome`
        the moment it settles — completion order, not task order — which is
        how callers stream incremental results out of a long sweep.
        """
        tasks = self._resolve_tasks(sweep)
        manifest = SweepManifest(self.manifest_dir) \
            if self.manifest_dir is not None else None
        result = SweepResult(outcomes=[], workers=self.workers,
                             duration_s=self.duration_s)
        sweep_span = self.telemetry.interval("sweep.run", tasks=len(tasks),
                                             workers=self.workers)
        task_wall = self.telemetry.metrics.histogram("sweep.task_wall_s")

        def settle(outcome: TaskOutcome) -> None:
            result.outcomes.append(outcome)
            if outcome.source == "run":
                task_wall.observe(outcome.wall_s)
            if manifest is not None and outcome.source == "run":
                manifest.record(outcome)
                manifest.write(result.accounting())
            if on_outcome is not None:
                on_outcome(outcome)

        # Resume: completed fingerprints come straight from the manifest.
        pending_tasks: list[SweepTask] = []
        for task in tasks:
            summary = manifest.completed_summary(task.fingerprint) \
                if manifest is not None else None
            if summary is not None:
                result.skipped_from_manifest += 1
                settle(TaskOutcome(index=task.index, label=task.label,
                                   fingerprint=task.fingerprint, status=DONE,
                                   summary=summary, attempts=0,
                                   source="manifest"))
            else:
                pending_tasks.append(task)

        if pending_tasks:
            if self.workers <= 1:
                self._run_serial(pending_tasks, settle)
            else:
                self._run_pool(pending_tasks, settle, result)

        result.wall_s = sweep_span.finish().duration
        result.outcomes.sort(key=lambda outcome: outcome.index)
        if manifest is not None:
            manifest.write(result.accounting())
            artifact_path = self.manifest_dir / "artifact.json"
            artifact_path.write_text(result.canonical_json(), encoding="utf-8")
        return result

    def _resolve_tasks(self, sweep) -> list[SweepTask]:
        if isinstance(sweep, SweepSpec):
            return sweep.expand()
        tasks: list[SweepTask] = []
        for index, item in enumerate(sweep):
            if isinstance(item, SweepTask):
                tasks.append(item)
            elif isinstance(item, ScenarioSpec):
                label = f"{item.name or item.topology}#{index}"
                tasks.append(SweepTask(index=index, label=label,
                                       overrides={}, spec=item))
            else:
                raise TypeError(
                    f"sweep item #{index} must be a SweepTask or ScenarioSpec, "
                    f"got {type(item).__name__}")
        if not tasks:
            raise ValueError("the sweep has no tasks")
        return tasks

    # ----------------------------------------------------------------- serial
    def _run_serial(self, tasks: list[SweepTask],
                    settle: Callable[[TaskOutcome], None]) -> None:
        for task in tasks:
            attempts = 0
            while True:
                attempts += 1
                span = self.telemetry.interval("sweep.task", label=task.label,
                                               attempt=attempts)
                try:
                    summary = _execute_task(task.spec, self.duration_s,
                                            self.run_until_idle,
                                            self._worker_slices)
                except Exception as exc:               # noqa: BLE001 - accounted
                    span.set(status=FAILED)
                    span.finish()
                    if attempts <= self.retries:
                        continue
                    settle(TaskOutcome(
                        index=task.index, label=task.label,
                        fingerprint=task.fingerprint, status=FAILED,
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=attempts,
                        wall_s=span.duration))
                    break
                span.set(status=DONE)
                span.finish()
                settle(TaskOutcome(index=task.index, label=task.label,
                                   fingerprint=task.fingerprint, status=DONE,
                                   summary=summary, attempts=attempts,
                                   wall_s=span.duration))
                break

    # ------------------------------------------------------------------- pool
    def _make_executor(self) -> ProcessPoolExecutor:
        context = multiprocessing.get_context(self.mp_context)
        return ProcessPoolExecutor(max_workers=self.workers,
                                   mp_context=context)

    @staticmethod
    def _terminate(executor: ProcessPoolExecutor) -> None:
        """Tear a pool down hard (stuck workers included)."""
        processes = list(getattr(executor, "_processes", {}).values())
        for process in processes:
            process.terminate()
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            process.join(timeout=1.0)

    def _run_pool(self, tasks: list[SweepTask],
                  settle: Callable[[TaskOutcome], None],
                  result: SweepResult) -> None:
        queue = deque((task, 0) for task in tasks)    # (task, attempts so far)
        executor = self._make_executor()
        inflight: dict = {}                 # future -> (task, attempts, span)
        # Tasks in flight when a pool broke with >1 task running: the crash
        # cannot be attributed, so they re-run one at a time (window of 1)
        # until each either settles or breaks the pool alone.
        suspects: set[str] = set()
        try:
            while queue or inflight:
                window = 1 if suspects else self.workers
                while queue and len(inflight) < window:
                    task, attempts = queue.popleft()
                    future = executor.submit(_execute_task, task.spec,
                                             self.duration_s,
                                             self.run_until_idle,
                                             self._worker_slices)
                    # interval(), not span(): pool tasks overlap, and each
                    # task's track gets its own exporter row.
                    inflight[future] = (task, attempts + 1, self.telemetry.interval(
                        "sweep.task", track=f"task:{task.label}",
                        label=task.label, attempt=attempts + 1))

                done, _ = wait(list(inflight), timeout=self.poll_s,
                               return_when=FIRST_COMPLETED)
                crashed: list = []          # (task, attempts, wall) from break
                for future in done:
                    task, attempts, span = inflight.pop(future)
                    wall = span.finish().duration
                    try:
                        summary = future.result()
                    except BrokenProcessPool:
                        span.set(status="crashed")
                        crashed.append((task, attempts, wall))
                        continue
                    except Exception as exc:           # noqa: BLE001 - accounted
                        span.set(status=FAILED)
                        suspects.discard(task.fingerprint)
                        if attempts <= self.retries:
                            result.retries += 1
                            queue.append((task, attempts))
                        else:
                            settle(TaskOutcome(
                                index=task.index, label=task.label,
                                fingerprint=task.fingerprint, status=FAILED,
                                error=f"{type(exc).__name__}: {exc}",
                                attempts=attempts, wall_s=wall))
                        continue
                    span.set(status=DONE)
                    suspects.discard(task.fingerprint)
                    settle(TaskOutcome(index=task.index, label=task.label,
                                       fingerprint=task.fingerprint,
                                       status=DONE, summary=summary,
                                       attempts=attempts, wall_s=wall))

                restart = bool(crashed)
                if crashed:
                    result.worker_crashes += 1
                    # Every task on the broken pool is a casualty: the ones
                    # whose futures raised plus the ones still in flight.
                    casualties = list(crashed)
                    for task, attempts, span in inflight.values():
                        span.set(status="casualty")
                        casualties.append((task, attempts,
                                           span.finish().duration))
                    inflight.clear()
                    if len(casualties) == 1:
                        # Alone on the pool: definitively the crasher.
                        task, attempts, wall = casualties[0]
                        suspects.discard(task.fingerprint)
                        if attempts <= self.retries:
                            result.retries += 1
                            queue.appendleft((task, attempts))
                        else:
                            settle(TaskOutcome(
                                index=task.index, label=task.label,
                                fingerprint=task.fingerprint, status=FAILED,
                                error="worker process crashed",
                                attempts=attempts, wall_s=wall))
                    else:
                        # Ambiguous: isolate all of them (front of the queue,
                        # re-dispatched without consuming retry budget).
                        for task, attempts, _ in reversed(casualties):
                            suspects.add(task.fingerprint)
                            queue.appendleft((task, attempts - 1))

                if self.timeout_s is not None and not restart:
                    expired = [future for future, (_, _, span) in inflight.items()
                               if span.elapsed > self.timeout_s]
                    for future in expired:
                        task, attempts, span = inflight.pop(future)
                        span.set(status=TIMEOUT)
                        settle(TaskOutcome(
                            index=task.index, label=task.label,
                            fingerprint=task.fingerprint, status=TIMEOUT,
                            error=f"exceeded {self.timeout_s}s budget",
                            attempts=attempts, wall_s=span.finish().duration))
                        if not future.cancel():
                            # The task is running on a worker we cannot
                            # preempt: the whole pool is torn down below and
                            # innocent in-flight tasks are re-dispatched.
                            restart = True

                if restart:
                    # Victim tasks (in flight on the dead pool through no
                    # fault of their own) re-queue without consuming retries.
                    for future, (task, attempts, span) in inflight.items():
                        span.set(status="requeued")
                        span.finish()
                        queue.append((task, attempts - 1))
                    inflight.clear()
                    self._terminate(executor)
                    executor = self._make_executor()
                    result.pool_restarts += 1
        finally:
            self._terminate(executor)
