"""TCP baseline used for the §2.2 overhead comparison.

The paper reports that the bandwidth overhead of RCP*'s control TPPs is
1.0–6.0 % of the flows' rate for 3→99 long-lived flows, against TCP's
0.8–2.4 % (acks + headers).  This module measures the TCP side of that
comparison by running long-lived TCP connections over the same two-bottleneck
chain the RCP* experiment uses and reporting the control-byte fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net import Simulator, TcpConnection, build_rcp_chain, mbps


@dataclass
class TcpOverheadResult:
    """Aggregate overhead across all connections in one run."""

    num_flows: int
    data_payload_bytes: int
    control_bytes: int
    overhead_fraction: float
    mean_goodput_bps: float


def run_tcp_overhead_experiment(num_flows: int = 3, duration_s: float = 5.0,
                                link_rate_bps: float = mbps(10),
                                mss: int = 1240) -> TcpOverheadResult:
    """Run ``num_flows`` long-lived TCP flows and measure their control overhead.

    Flows are spread across the same source/destination pairs as the RCP*
    experiment (a: two bottlenecks, b and c: one each), so the ack paths share
    the reproduced topology's characteristics.
    """
    if num_flows < 1:
        raise ValueError("need at least one flow")
    sim = Simulator()
    topo = build_rcp_chain(sim, link_rate_bps=link_rate_bps)
    network = topo.network
    pairs = [("ha", "ha_dst"), ("hb", "hb_dst"), ("hc", "hc_dst")]

    connections = []
    for index in range(num_flows):
        src, dst = pairs[index % len(pairs)]
        connections.append(TcpConnection(sim, network.hosts[src], network.hosts[dst],
                                         total_packets=None, mss=mss,
                                         start_time=0.001 * index))
    sim.run(until=duration_s)
    network.stop_switch_processes()

    payload_bytes = sum(c.stats.data_bytes_sent for c in connections)
    control_bytes = sum(c.stats.ack_bytes_sent for c in connections)
    overhead = control_bytes / payload_bytes if payload_bytes else 0.0
    goodput = sum(c.goodput_bps(duration_s) for c in connections) / len(connections)
    return TcpOverheadResult(num_flows=num_flows, data_payload_bytes=payload_bytes,
                             control_bytes=control_bytes, overhead_fraction=overhead,
                             mean_goodput_bps=goodput)
