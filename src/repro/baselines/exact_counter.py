"""Exact distinct counting — the ground truth the bitmap sketch is compared to.

OpenSketch's (and §2.5's) accuracy claims are relative to exact per-link
distinct counts; :class:`ExactDistinctCounter` keeps a Python set per link so
the benchmark can report the sketch's relative error and memory saving.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.sketches import LinkKey


@dataclass
class ExactDistinctCounter:
    """Per-link exact distinct-element counts (unbounded memory)."""

    per_link: dict[LinkKey, set[str]] = field(default_factory=dict)

    def add(self, key: LinkKey, element: str) -> None:
        self.per_link.setdefault(key, set()).add(element)

    def count(self, key: LinkKey) -> int:
        return len(self.per_link.get(key, ()))

    def counts(self) -> dict[LinkKey, int]:
        return {key: len(elements) for key, elements in self.per_link.items()}

    def memory_bytes(self) -> int:
        """A rough memory footprint: ~64 bytes per stored element key."""
        return sum(len(elements) for elements in self.per_link.values()) * 64

    def relative_error(self, key: LinkKey, estimate: float) -> float:
        truth = self.count(key)
        if truth == 0:
            return 0.0 if estimate == 0 else float("inf")
        return abs(estimate - truth) / truth
