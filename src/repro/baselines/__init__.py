"""Baselines the paper's evaluation compares against."""

from .ecmp import EcmpSplit, expected_figure4_conga, expected_figure4_ecmp, hash_split
from .exact_counter import ExactDistinctCounter
from .polling_monitor import PollingMonitor
from .tcp_baseline import TcpOverheadResult, run_tcp_overhead_experiment

__all__ = [
    "EcmpSplit", "ExactDistinctCounter", "PollingMonitor", "TcpOverheadResult",
    "expected_figure4_conga", "expected_figure4_ecmp", "hash_split",
    "run_tcp_overhead_experiment",
]
