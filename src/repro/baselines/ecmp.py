"""ECMP baseline for the load-balancing comparison (Figure 4).

ECMP is what the CONGA* experiment is compared against: flows are pinned to a
path by a hash (or, for the deterministic variant the experiment uses, by a
round-robin tag assignment), and never move regardless of congestion.  The
actual packet-level behaviour is produced by the group tables in
:mod:`repro.switches.tables`; this module provides the analytic helpers the
benchmarks use to sanity-check the simulated outcome.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.switches.tables import select_by_hash
from repro.net.packet import udp_packet


@dataclass
class EcmpSplit:
    """How a set of flows lands on the available paths under hash-based ECMP."""

    flows_per_path: dict[int, int]
    load_per_path_bps: dict[int, float]

    @property
    def max_load_bps(self) -> float:
        return max(self.load_per_path_bps.values()) if self.load_per_path_bps else 0.0


def hash_split(src: str, dst: str, dports: list[int], num_paths: int,
               flow_rate_bps: float, salt: int = 0) -> EcmpSplit:
    """Predict the ECMP placement of equal-rate flows identified by dport."""
    flows_per_path = {path: 0 for path in range(num_paths)}
    for dport in dports:
        packet = udp_packet(src, dst, 100, dport=dport)
        path = select_by_hash(packet, list(range(num_paths)), salt)
        flows_per_path[path] += 1
    load = {path: count * flow_rate_bps for path, count in flows_per_path.items()}
    return EcmpSplit(flows_per_path=flows_per_path, load_per_path_bps=load)


def expected_figure4_ecmp(link_rate_bps: float, demand_l0_bps: float,
                          demand_l1_bps: float) -> dict[str, float]:
    """The paper's Figure 4 arithmetic for ECMP with an even split of L1's traffic.

    L1's demand splits evenly over two paths; the path shared with L0 is
    oversubscribed, so both aggregates lose traffic proportionally on that
    link while the other path delivers its half untouched.
    """
    l1_per_path = demand_l1_bps / 2.0
    shared_offered = demand_l0_bps + l1_per_path
    if shared_offered <= link_rate_bps:
        return {"L0:L2": demand_l0_bps, "L1:L2": demand_l1_bps,
                "max_utilization": max(shared_offered, l1_per_path) / link_rate_bps}
    scale = link_rate_bps / shared_offered
    return {
        "L0:L2": demand_l0_bps * scale,
        "L1:L2": l1_per_path * scale + l1_per_path,
        "max_utilization": 1.0,
    }


def expected_figure4_conga(link_rate_bps: float, demand_l0_bps: float,
                           demand_l1_bps: float) -> dict[str, float]:
    """The optimum CONGA* approaches: meet both demands, minimise the max utilisation."""
    total = demand_l0_bps + demand_l1_bps
    if total > 2 * link_rate_bps:
        raise ValueError("demands exceed the bisection; the example assumes they fit")
    balanced = total / 2.0
    return {"L0:L2": demand_l0_bps, "L1:L2": demand_l1_bps,
            "max_utilization": max(balanced, demand_l0_bps) / link_rate_bps}
