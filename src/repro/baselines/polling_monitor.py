"""SNMP-style polling monitor — the baseline micro-burst detection is compared to.

The paper's point in §2.1 is that queue occupancy changes at RTT timescales,
so a monitor that polls counters every few seconds (SNMP, embedded web
servers) sees averages and misses bursts; Figure 1b's CDF shows one queue
empty at 80 % of packet arrivals, meaning a sampler will very likely observe
an empty queue even though the queue regularly spikes to 20+ packets.

:class:`PollingMonitor` reads queue occupancies directly from the switch model
at a fixed period (the control-plane path: no TPPs involved), producing the
sampled time series the benchmark contrasts with the per-packet TPP series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.sim import Simulator
from repro.net.topology import Network
from repro.stats import TimeSeries


@dataclass
class PollingMonitor:
    """Periodically samples every switch queue's occupancy."""

    sim: Simulator
    network: Network
    poll_interval_s: float = 1.0
    series: dict[tuple[int, int], TimeSeries] = field(default_factory=dict)
    polls: int = 0

    def __post_init__(self) -> None:
        self._process = self.sim.schedule_periodic(self.poll_interval_s, self._poll)

    def _poll(self) -> None:
        self.polls += 1
        now = self.sim.now
        for switch in self.network.switches.values():
            for port in switch.ports:
                key = (switch.switch_id, port.index)
                self.series.setdefault(key, TimeSeries()).add(
                    now, port.queue.occupancy_packets)

    def stop(self) -> None:
        self._process.stop()

    def max_observed(self, queue: tuple[int, int]) -> float:
        series = self.series.get(queue)
        return series.maximum() if series else 0.0

    def max_observed_any(self) -> float:
        return max((ts.maximum() for ts in self.series.values()), default=0.0)

    def samples_total(self) -> int:
        return sum(len(ts) for ts in self.series.values())
