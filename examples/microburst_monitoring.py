#!/usr/bin/env python3
"""Micro-burst detection (§2.1 / Figure 1): per-packet queue visibility.

Reproduces the Figure 1 experiment through the Scenario session API:
:func:`repro.apps.microburst.microburst_scenario` composes a six-host
dumbbell, the queue-occupancy TPP on every packet, and the 10 kB-message
workload at 30 % offered load; ``.run()`` hands back a
:class:`MicroburstResult` with the merged per-queue distributions.  The
output is the textual version of Figure 1b — a CDF summary and a short time
series excerpt for the busiest queue — plus the contrast with what a
1-second polling monitor would have seen.

Run with:  python examples/microburst_monitoring.py
"""

import os

from repro.apps.microburst import microburst_scenario
from repro.net import mbps
from repro.stats import fractiles

DURATION_SCALE = float(os.environ.get("REPRO_DURATION_SCALE", "1"))


def main() -> None:
    print("running the Figure 1 workload (this takes a few seconds)...\n")
    scenario = microburst_scenario(link_rate_bps=mbps(10), offered_load=0.3,
                                   message_bytes=10_000, seed=1)
    result = scenario.run(duration_s=1.5 * DURATION_SCALE)

    print(f"messages sent:        {result.messages_sent}")
    print(f"instrumented packets: {result.packets_instrumented}")
    print(f"queue samples:        {len(result.samples)} "
          f"(TPP overhead {result.tpp_overhead_bytes_per_packet} bytes/packet)\n")

    print("per-queue occupancy distribution (packets), from per-packet TPP samples:")
    print(f"  {'queue':<16s} {'samples':>8s} {'empty%':>7s} {'p50':>5s} {'p90':>5s} "
          f"{'p99':>5s} {'max':>5s}")
    for queue in result.observed_queues:
        series = result.series[queue]
        if len(series) < 20:
            continue
        quantiles = fractiles(series.values, (0.5, 0.9, 0.99))
        print(f"  switch{queue[0]}.port{queue[1]:<8d} {len(series):>8d} "
              f"{100 * result.fraction_empty(queue):>6.1f}% "
              f"{quantiles[0.5]:>5.0f} {quantiles[0.9]:>5.0f} {quantiles[0.99]:>5.0f} "
              f"{series.maximum():>5.0f}")

    busiest = max(result.observed_queues, key=result.max_occupancy)
    series = result.series[busiest]
    print(f"\ntime-series excerpt for the busiest queue switch{busiest[0]}.port{busiest[1]} "
          f"(time s -> occupancy):")
    step = max(1, len(series) // 20)
    excerpt = [f"{t:.3f}->{int(v)}" for t, v in
               list(zip(series.times, series.values))[::step][:20]]
    print("  " + "  ".join(excerpt))

    print("\nwhy polling misses this: the same queue, sampled once a second, would "
          "almost always read 0-2 packets; the bursts above live for a few "
          "milliseconds and are only visible because every packet reports the "
          "occupancy it actually experienced.")


if __name__ == "__main__":
    main()
