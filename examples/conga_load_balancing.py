#!/usr/bin/env python3
"""Congestion-aware load balancing from the edge (§2.4 / Figure 4).

Leaf L0 sends half a link's worth of traffic to L2 over its single path; leaf
L1 sends 120 % of a link's worth over two paths.  With ECMP the flows are
pinned by a hash and the shared path saturates; with CONGA* the sending hosts
probe both paths with TPPs every couple of milliseconds and steer flowlets to
the less utilised one, meeting both demands at lower peak utilisation.

Run with:  python examples/conga_load_balancing.py
"""

from repro.apps.conga import run_conga_experiment
from repro.baselines.ecmp import expected_figure4_conga, expected_figure4_ecmp
from repro.net import mbps

LINK_RATE = mbps(10)


def report(result, analytic) -> None:
    print(f"  {'aggregate':<8s} {'demand':>8s} {'achieved':>9s} {'analytic':>9s}")
    for flow in ("L0:L2", "L1:L2"):
        print(f"  {flow:<8s} {result.demand_bps[flow] / 1e6:>7.1f}M "
              f"{result.achieved_bps[flow] / 1e6:>8.2f}M {analytic[flow] / 1e6:>8.2f}M")
    print(f"  max fabric-link utilisation: {100 * result.max_core_utilization:.0f}% "
          f"(analytic {100 * analytic['max_utilization']:.0f}%)")
    print("  per-link utilisation: "
          + ", ".join(f"{name} {100 * value:.0f}%"
                      for name, value in sorted(result.core_utilizations.items())))
    print()


def main() -> None:
    demands = dict(demand_l0_fraction=0.5, demand_l1_fraction=1.2)
    print("running ECMP baseline...")
    ecmp = run_conga_experiment("ecmp", duration_s=8.0, link_rate_bps=LINK_RATE, **demands)
    print("=== ECMP ===")
    report(ecmp, expected_figure4_ecmp(LINK_RATE, 0.5 * LINK_RATE, 1.2 * LINK_RATE))

    print("running CONGA* (TPP path probing + flowlet steering)...")
    conga = run_conga_experiment("conga", duration_s=8.0, link_rate_bps=LINK_RATE, **demands)
    print("=== CONGA* ===")
    report(conga, expected_figure4_conga(LINK_RATE, 0.5 * LINK_RATE, 1.2 * LINK_RATE))

    gained = (conga.achieved_bps["L1:L2"] - ecmp.achieved_bps["L1:L2"]) / 1e6
    print(f"CONGA* recovered {gained:.2f} Mb/s of L1's demand that ECMP left on the table, "
          f"while lowering the peak utilisation from "
          f"{100 * ecmp.max_core_utilization:.0f}% to {100 * conga.max_core_utilization:.0f}%.")


if __name__ == "__main__":
    main()
