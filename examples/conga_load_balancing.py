#!/usr/bin/env python3
"""Congestion-aware load balancing from the edge (§2.4 / Figure 4).

Leaf L0 sends half a link's worth of traffic to L2 over its single path; leaf
L1 sends 120 % of a link's worth over two paths.  With ECMP the flows are
pinned by a hash and the shared path saturates; with CONGA* the sending hosts
probe both paths with TPPs every couple of milliseconds and steer flowlets to
the less utilised one, meeting both demands at lower peak utilisation.

Both runs come from the same :func:`repro.apps.conga.conga_scenario` session —
only the ``scheme`` argument changes, which is the paper's point: the network
config is identical, the intelligence lives at the edge.

Run with:  python examples/conga_load_balancing.py
"""

import os

from repro.apps.conga import conga_scenario
from repro.baselines.ecmp import expected_figure4_conga, expected_figure4_ecmp
from repro.net import mbps

LINK_RATE = mbps(10)
DURATION_SCALE = float(os.environ.get("REPRO_DURATION_SCALE", "1"))


def report(result, analytic) -> None:
    print(f"  {'aggregate':<8s} {'demand':>8s} {'achieved':>9s} {'analytic':>9s}")
    for flow in ("L0:L2", "L1:L2"):
        print(f"  {flow:<8s} {result.demand_bps[flow] / 1e6:>7.1f}M "
              f"{result.achieved_bps[flow] / 1e6:>8.2f}M {analytic[flow] / 1e6:>8.2f}M")
    print(f"  max fabric-link utilisation: {100 * result.max_core_utilization:.0f}% "
          f"(analytic {100 * analytic['max_utilization']:.0f}%)")
    print("  per-link utilisation: "
          + ", ".join(f"{name} {100 * value:.0f}%"
                      for name, value in sorted(result.core_utilizations.items())))
    print()


def main() -> None:
    demands = dict(demand_l0_fraction=0.5, demand_l1_fraction=1.2,
                   warmup_s=2.0 * DURATION_SCALE)
    duration = 8.0 * DURATION_SCALE
    print("running ECMP baseline...")
    ecmp = conga_scenario("ecmp", link_rate_bps=LINK_RATE, **demands).run(duration_s=duration)
    print("=== ECMP ===")
    report(ecmp, expected_figure4_ecmp(LINK_RATE, 0.5 * LINK_RATE, 1.2 * LINK_RATE))

    print("running CONGA* (TPP path probing + flowlet steering)...")
    conga = conga_scenario("conga", link_rate_bps=LINK_RATE, **demands).run(duration_s=duration)
    print("=== CONGA* ===")
    report(conga, expected_figure4_conga(LINK_RATE, 0.5 * LINK_RATE, 1.2 * LINK_RATE))

    gained = (conga.achieved_bps["L1:L2"] - ecmp.achieved_bps["L1:L2"]) / 1e6
    print(f"CONGA* recovered {gained:.2f} Mb/s of L1's demand that ECMP left on the table, "
          f"while lowering the peak utilisation from "
          f"{100 * ecmp.max_core_utilization:.0f}% to {100 * conga.max_core_utilization:.0f}%.")


if __name__ == "__main__":
    main()
