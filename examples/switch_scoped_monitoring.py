#!/usr/bin/env python3
"""Executor patterns: targeted, reflective, and scatter-gather TPPs (§4.4).

Most of the paper's applications piggy-back TPPs on existing traffic.  This
example shows the other usage mode: standalone probes crafted by the TPP
executor library to interrogate *specific switches*:

* **targeted** — a ``CEXEC`` on ``[Switch:SwitchID]`` makes the statistics
  load only on the chosen switch;
* **reflective** — the target switch turns the probe around itself, so the
  answer arrives in half a round trip;
* **scatter-gather** — the same statistics TPP fans out to a set of switches
  and the results are collected into one callback.

The fabric, stacks, and background traffic are composed with a Scenario
(``.build()`` keeps the live experiment so the probes can be issued between
two ``sim.run`` phases); the probes use each stack's executor directly.

Run with:  python examples/switch_scoped_monitoring.py
"""

import os

from repro.net import mbps
from repro.session import Scenario

DURATION_SCALE = float(os.environ.get("REPRO_DURATION_SCALE", "1"))

STATISTICS = ["Switch:SwitchID", "Link:TX-Utilization", "Queue:QueueOccupancyBytes"]


def main() -> None:
    # Background traffic so the utilisation numbers are non-trivial.
    experiment = (Scenario("leaf-spine", seed=1, num_leaves=2, num_spines=2,
                           hosts_per_leaf=2, link_rate_bps=mbps(10))
                  .workload("paced-flows", flows=[
                      dict(src="h0_0", dst="h1_0", rate_bps=6e6, dport=7000),
                      dict(src="h0_1", dst="h1_1", rate_bps=4e6, dport=7001)])
                  .build())
    sim, network = experiment.sim, experiment.network
    src, dst = "h0_0", "h1_0"
    executor = experiment.stacks[src].executor
    sim.run(until=0.3 * DURATION_SCALE)

    def show(name, tpp):
        if tpp is None:
            print(f"  {name}: probe lost")
            return
        hops = [hop for hop in tpp.words_by_hop(2 + len(STATISTICS))[:tpp.hop_number]
                if hop[2] != 0]     # keep only the hop where CEXEC matched
        for hop in hops:
            switch_id, util_bp, queue_bytes = hop[2], hop[3], hop[4]
            print(f"  {name}: switch {switch_id}: TX utilisation "
                  f"{util_bp / 100:.1f}%, queue {queue_bytes} bytes")

    # 1. Targeted: ask only the first spine.
    spine0 = network.switches["spine0"].switch_id
    executor.execute_targeted(STATISTICS, spine0, dst,
                              lambda tpp: show("targeted probe (full round trip)", tpp))

    # 2. Reflective: same question, but the leaf switch reflects the probe.
    leaf0 = network.switches["leaf0"].switch_id
    executor.execute_targeted(STATISTICS, leaf0, dst,
                              lambda tpp: show("reflective probe (half round trip)", tpp),
                              reflect=True)

    # 3. Scatter-gather across every switch in the fabric.
    targets = {switch.switch_id: dst for switch in network.switches.values()}

    def gathered(results):
        print(f"  scatter-gather: {sum(t is not None for t in results.values())}"
              f"/{len(results)} switches answered")
        for switch_id, tpp in sorted(results.items()):
            show(f"    switch {switch_id}", tpp)

    executor.scatter_gather(STATISTICS, targets, gathered)

    sim.run(until=0.6 * DURATION_SCALE)
    experiment.finish()
    stats = executor.stats
    print(f"\nexecutor sent {stats.probes_sent} probes "
          f"({stats.retries} retries, {stats.failures} failures).")


if __name__ == "__main__":
    main()
