#!/usr/bin/env python3
"""RCP* congestion control with a pluggable fairness criterion (§2.2 / Figure 2).

Three rate-limited UDP flows share a two-bottleneck chain: flow *a* crosses
both links, flows *b* and *c* one each.  Every flow runs the three-phase RCP*
controller (collect -> compute -> CSTORE-guarded update) and sets its rate to
the α-fair aggregate of the per-link fair rates.  Because the aggregation
happens at the end-host, switching from max-min to proportional fairness is a
one-parameter change — the point of §2.2.

The whole experiment is one :func:`repro.apps.rcp.rcp_scenario` session: the
``rcp-chain`` topology, the end-host stacks, the per-flow controllers, and
the throughput meters all hang off a single Scenario.

Run with:  python examples/rcp_fairness.py
"""

import os

from repro.apps.rcp import (ALPHA_MAXMIN, ALPHA_PROPORTIONAL, expected_fair_shares,
                            rcp_scenario)
from repro.net import mbps

LINK_RATE = mbps(10)   # scaled from the paper's 100 Mb/s; shares are relative
DURATION_SCALE = float(os.environ.get("REPRO_DURATION_SCALE", "1"))


def describe(label: str, alpha: float) -> None:
    print(f"=== {label} (alpha = {alpha}) ===")
    result = rcp_scenario(alpha=alpha, link_rate_bps=LINK_RATE) \
        .run(duration_s=10.0 * DURATION_SCALE)
    expected = expected_fair_shares(alpha, LINK_RATE)
    print(f"  {'flow':<6s} {'expected':>10s} {'achieved':>10s}")
    for flow in ("a", "b", "c"):
        print(f"  {flow:<6s} {expected[flow] / 1e6:>9.2f}M {result.mean_throughput_bps[flow] / 1e6:>9.2f}M")
    print(f"  control-traffic overhead: {100 * result.control_overhead_fraction:.1f}% "
          f"of delivered bytes")

    # Convergence picture: flow a's throughput over time.
    series = result.throughput_series["a"]
    step = max(1, len(series) // 12)
    samples = list(zip(series.times, series.values))[::step]
    print("  flow a convergence (t -> Mb/s): "
          + "  ".join(f"{t:.1f}s->{v / 1e6:.1f}" for t, v in samples))
    print()


def main() -> None:
    print("links are 10 Mb/s; flow a crosses two bottlenecks, b and c one each\n")
    describe("max-min fairness", ALPHA_MAXMIN)
    describe("proportional fairness", ALPHA_PROPORTIONAL)
    print("note how only the end-hosts changed: the network ran the exact same "
          "five-instruction collect TPP and two-instruction update TPP in both runs.")


if __name__ == "__main__":
    main()
