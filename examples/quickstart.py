#!/usr/bin/env python3
"""Quickstart: compose a tiny-packet-program experiment with one Scenario.

The :class:`repro.session.Scenario` API is the library's front door: one
fluent object owns the topology, the §4 end-host stacks, the TPP
applications, the workload, and result collection.  This walks the core
workflow in a dozen lines of real code:

1. pick a registered topology (a six-host dumbbell) and a seed,
2. declare the paper's flagship TPP — switch id, output port, and
   output-queue occupancy at every hop (§2.1) — on every UDP packet,
3. drive it with the registered all-to-all ``messages`` workload,
4. run, then read the per-queue series and instrumentation accounting off
   the structured :class:`~repro.session.ExperimentResult`.

Run with:  python examples/quickstart.py
"""

import os

from repro.endhost import PacketFilter
from repro.net import mbps
from repro.session import Scenario

DURATION_SCALE = float(os.environ.get("REPRO_DURATION_SCALE", "1"))

QUEUE_MONITOR_TPP = """
PUSH [Switch:SwitchID]
PUSH [PacketMetadata:OutputPort]
PUSH [Queue:QueueOccupancy]
"""


def main() -> None:
    print(f"registered topologies: {', '.join(Scenario.topologies())}")
    print(f"registered workloads:  {', '.join(Scenario.workloads())}\n")

    records = []
    result = (
        Scenario(topology="dumbbell", seed=1, hosts_per_side=3,
                 link_rate_bps=mbps(10))
        .tpp("queue-monitor", QUEUE_MONITOR_TPP, num_hops=6,
             filter=PacketFilter(protocol="udp"), sample_frequency=1)
        .collect(on_tpp=lambda tpp, packet: records.append(
            (packet.dst, tpp.words_by_hop(3)[:tpp.hop_number])))
        .workload("messages", offered_load=0.2, message_bytes=3_000)
        .run(duration_s=0.05 * DURATION_SCALE))

    print("per-hop records (switch id, output port, queue occupancy):")
    for dst, hops in records[:5]:
        rendered = "  ->  ".join(f"switch {s} port {p} queue {q} pkts"
                                 for s, p, q in hops)
        print(f"  to {dst}: {rendered}")

    print(f"\nthe structured result, for free with every scenario:")
    print(f"  events executed       : {result.events_executed}")
    print(f"  packets instrumented  : {result.tpps_attached}")
    print(f"  TPPs completed        : {result.tpps_received}")
    print(f"  instrumentation bytes : {result.instrumentation_overhead_bytes}")
    print(f"  per-host summaries    : {result.summaries('queue-monitor')}")


if __name__ == "__main__":
    main()
