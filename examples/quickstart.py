#!/usr/bin/env python3
"""Quickstart: write a tiny packet program, run it through a network, read the results.

This walks through the core workflow of the library in ~40 lines of real code:

1. build a simulated network of TPP-capable switches (a six-host dumbbell),
2. install the end-host stack (§4) on every host,
3. compile the paper's flagship example — a TPP that records the switch id,
   the packet's output port and the output-queue occupancy at every hop
   (§2.1),
4. attach it to a few data packets via the ``add_tpp`` API and look at what
   came back.

Run with:  python examples/quickstart.py
"""

from repro.core import compile_tpp
from repro.endhost import PacketFilter, install_stacks
from repro.net import Simulator, build_dumbbell, mbps, udp_packet


def main() -> None:
    # 1. A six-host dumbbell with 10 Mb/s links and shortest-path routes.
    sim = Simulator()
    topology = build_dumbbell(sim, hosts_per_side=3, link_rate_bps=mbps(10))
    network = topology.network

    # 2. End-host stacks: dataplane shim + TPP control plane + executor.
    stacks = install_stacks(network)
    control_plane = stacks["h0"].control_plane

    # 3. Compile the §2.1 TPP from its pseudo-assembly.
    app = control_plane.register_application("quickstart-monitor")
    program = """
    PUSH [Switch:SwitchID]
    PUSH [PacketMetadata:OutputPort]
    PUSH [Queue:QueueOccupancy]
    """
    compiled = compile_tpp(program, num_hops=6, app_id=app.app_id)
    print("compiled TPP:")
    for instruction in compiled.tpp.instructions:
        print(f"    {instruction}")
    print(f"    wire length: {compiled.tpp.wire_length()} bytes\n")

    # 4. Attach it to every UDP packet h0 sends to h5, and collect the results
    #    that arrive at h5 (fully executed, one record per hop).
    records = []
    stacks["h5"].shim.bind_application(
        app.app_id, on_tpp=lambda tpp, packet: records.append(tpp.words_by_hop(3)))
    stacks["h0"].agent.add_tpp(app.app_id, PacketFilter(dst="h5"), compiled.tpp,
                               sample_frequency=1)

    for i in range(5):
        network.hosts["h0"].send(udp_packet("h0", "h5", payload_bytes=1000,
                                            dport=9000, flow_id=1))
    sim.run(until=0.1)

    print("per-hop records observed at h5 (switch id, output port, queue occupancy):")
    for index, hops in enumerate(records):
        rendered = "  ->  ".join(f"switch {s} port {p} queue {q} pkts" for s, p, q in hops)
        print(f"  packet {index}: {rendered}")

    shim = stacks["h0"].shim
    print(f"\n{shim.tpps_attached} packets were instrumented, adding "
          f"{shim.tpp_bytes_added} bytes of TPP headers in total.")


if __name__ == "__main__":
    main()
