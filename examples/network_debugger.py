#!/usr/bin/env python3
"""A network debugger built on packet histories (§2.3 and §2.6).

This example plays the role of the operator in the paper's introduction:

1. compose a leaf-spine fabric with NetSight-style packet-history collection
   as one Scenario, and keep the live :class:`~repro.session.Experiment`
   (``.build()`` instead of ``.run()``) so the fault can be injected mid-run,
2. install a *deliberately wrong* forwarding entry on one switch,
3. let netwatch catch the policy violation and use the ndb-style query
   interface to pinpoint exactly where the misrouted packets diverged,
4. fail a fabric link and let :func:`run_route_verification_experiment`
   measure how long forwarding takes to converge onto the backup route —
   per-packet path visibility makes this direct to observe.

Run with:  python examples/network_debugger.py
"""

import os

from repro.apps.netsight import (NetSightAggregator, NetWatch,
                                 PACKET_HISTORY_TPP_SOURCE)
from repro.apps.netverify import RouteVerifier, run_route_verification_experiment
from repro.net import mbps, udp_packet
from repro.session import Scenario

DURATION_SCALE = float(os.environ.get("REPRO_DURATION_SCALE", "1"))


def main() -> None:
    # --- 1. fabric + packet-history collection + a waypoint policy ----------
    watch = NetWatch()

    def aggregator(host_name, collector):
        return NetSightAggregator(host_name, collector, netwatch=watch)

    experiment = (Scenario("leaf-spine", seed=1, num_leaves=2, num_spines=2,
                           hosts_per_leaf=2, link_rate_bps=mbps(10))
                  .tpp("netsight", PACKET_HISTORY_TPP_SOURCE, num_hops=10,
                       aggregator=aggregator)
                  .build())
    network, sim = experiment.network, experiment.sim
    src, victim, dst = "h0_0", "h0_1", "h1_1"
    leaf1_id = network.switches["leaf1"].switch_id
    watch.add_waypoint_policy("cross-fabric traffic must reach leaf1", "h0_",
                              waypoint_switch=leaf1_id)

    # --- 2. a misconfiguration: leaf0 bounces dst-bound packets to a local host
    wrong_port = network.ports_towards("leaf0", victim)[0]
    network.switches["leaf0"].install_route(dst, wrong_port, priority=99)

    for i in range(5):
        network.hosts[src].send(udp_packet(src, dst, 600, dport=5000 + i))
    sim.run(until=0.1)

    # --- 3. netwatch + ndb ---------------------------------------------------
    print(f"netwatch violations: {len(watch.violations)}")
    for violation in watch.violations[:2]:
        history = violation.history
        print(f"  [{violation.policy}] {history.src}->{history.dst} took switch path "
              f"{history.switch_path} ({violation.detail})")

    verifier = RouteVerifier(network)
    store = experiment.apps["netsight"].aggregators[victim].store
    misrouted = store.query(lambda h: h.dst == dst)
    expected = verifier.expected_switch_path(src, dst)
    print(f"\nndb: {len(misrouted)} packets destined to {dst} were delivered to {victim}")
    if misrouted:
        check = verifier.verify(expected, misrouted[0].switch_path)
        if check.divergence_hop is not None and check.divergence_hop < len(check.observed):
            culprit = check.observed[check.divergence_hop]
        else:
            # The observed path ended early: the last switch it did reach
            # forwarded it off the expected route.
            culprit = check.observed[-1] if check.observed else "?"
        print(f"  expected switch path {check.expected}, observed {check.observed}; "
              f"first divergence at hop {check.divergence_hop} -> the bad entry is on "
              f"switch {culprit}")
    experiment.finish()

    # --- 4. route-convergence measurement after a link failure ---------------
    # A fresh scenario: probe the path every 2 ms, fail the active spine
    # uplink at t=0.2s, reroute 30 ms later, and report the convergence time.
    print("\nfailing the active spine uplink at t=0.2s and probing the path every 2 ms...")
    result = run_route_verification_experiment(
        duration_s=max(0.5 * DURATION_SCALE, 0.3), src=src, dst=dst,
        failure_time=0.2, reroute_delay_s=0.03, probe_interval_s=2e-3,
        link_rate_bps=mbps(10))
    convergence = result.convergence
    print(f"  pre-failure path verified against control-plane intent: "
          f"{result.pre_failure.matches} (path {result.pre_failure.observed})")
    print(f"  probes sent: {result.probes_sent}, path observations collected: "
          f"{len(convergence.observations)}")
    if convergence.converged_time is not None:
        print(f"  first probe over the backup path at "
              f"t={convergence.converged_time * 1e3:.1f} ms -> convergence took "
              f"{convergence.convergence_seconds * 1e3:.1f} ms")
    else:
        print("  no probe made it over the backup path (unexpected)")


if __name__ == "__main__":
    main()
