#!/usr/bin/env python3
"""A network debugger built on packet histories (§2.3 and §2.6).

This example plays the role of the operator in the paper's introduction:

1. deploy NetSight-style packet-history collection on every host,
2. install a *deliberately wrong* forwarding entry on one switch,
3. let netwatch catch the policy violation and use the ndb-style query
   interface to pinpoint exactly where the misrouted packets diverged,
4. fail a fabric link and use path probes to measure how long forwarding
   takes to converge onto the backup route — per-packet path visibility makes
   this direct to observe.

Run with:  python examples/network_debugger.py
"""

from repro.apps.netsight import NetWatch, deploy_netsight
from repro.apps.netverify import PATH_TPP_SOURCE, RouteVerifier, observation_from_tpp
from repro.core import compile_tpp
from repro.endhost import Collector, install_stacks
from repro.net import Simulator, build_leaf_spine, mbps, udp_packet


def main() -> None:
    sim = Simulator()
    topo = build_leaf_spine(sim, num_leaves=2, num_spines=2, hosts_per_leaf=2,
                            link_rate_bps=mbps(10))
    network = topo.network
    stacks = install_stacks(network)
    src, victim, dst = "h0_0", "h0_1", "h1_1"

    # --- 1. packet-history collection + a waypoint policy -------------------
    watch = NetWatch()
    leaf1_id = network.switches["leaf1"].switch_id
    watch.add_waypoint_policy("cross-fabric traffic must reach leaf1", "h0_",
                              waypoint_switch=leaf1_id)
    deployed = deploy_netsight(stacks, Collector(), netwatch=watch)

    # --- 2. a misconfiguration: leaf0 bounces dst-bound packets to a local host
    wrong_port = network.ports_towards("leaf0", victim)[0]
    network.switches["leaf0"].install_route(dst, wrong_port, priority=99)

    for i in range(5):
        network.hosts[src].send(udp_packet(src, dst, 600, dport=5000 + i))
    sim.run(until=0.1)

    # --- 3. netwatch + ndb -----------------------------------------------
    print(f"netwatch violations: {len(watch.violations)}")
    for violation in watch.violations[:2]:
        history = violation.history
        print(f"  [{violation.policy}] {history.src}->{history.dst} took switch path "
              f"{history.switch_path} ({violation.detail})")

    verifier = RouteVerifier(network)
    store = deployed.aggregators[victim].store
    misrouted = store.query(lambda h: h.dst == dst)
    expected = verifier.expected_switch_path(src, dst)
    print(f"\nndb: {len(misrouted)} packets destined to {dst} were delivered to {victim}")
    if misrouted:
        check = verifier.verify(expected, misrouted[0].switch_path)
        if check.divergence_hop is not None and check.divergence_hop < len(check.observed):
            culprit = check.observed[check.divergence_hop]
        else:
            # The observed path ended early: the last switch it did reach
            # forwarded it off the expected route.
            culprit = check.observed[-1] if check.observed else "?"
        print(f"  expected switch path {check.expected}, observed {check.observed}; "
              f"first divergence at hop {check.divergence_hop} -> the bad entry is on "
              f"switch {culprit}")

    # Fix the bad entry before the next act.
    bad_entry = network.switches["leaf0"].pipeline.forwarding_table.lookup(
        udp_packet(src, dst, 64))
    network.switches["leaf0"].pipeline.forwarding_table.remove(bad_entry.entry_id)

    # --- 4. route-convergence measurement after a link failure --------------
    print("\nfailing the active spine uplink at t=0.2s and probing the path every 2 ms...")
    observations = []
    template = compile_tpp(PATH_TPP_SOURCE, num_hops=8,
                           app_id=stacks[src].executor_app_id).tpp

    def probe() -> None:
        sent_at = sim.now
        stacks[src].executor.execute(
            template.clone(), dst,
            lambda tpp: observations.append(observation_from_tpp(tpp, sent_at))
            if tpp is not None else None,
            retries=0, timeout_s=0.02)

    process = sim.schedule_periodic(2e-3, probe)

    failure_time = 0.2

    reroute_delay = 0.03   # the control plane takes ~30 ms to react to the failure

    def fail_link() -> None:
        # Fail whichever spine the probes show is currently carrying the
        # traffic; the control plane repoints both leaves a little later.
        spine_ids = {name: network.switches[name].switch_id for name in ("spine0", "spine1")}
        current_path = observations[-1].switch_ids if observations else []
        active = next((name for name, sid in spine_ids.items() if sid in current_path),
                      "spine0")
        backup = "spine1" if active == "spine0" else "spine0"
        print(f"  active spine at failure time: {active}; failing leaf0<->{active}; "
              f"control plane reroutes via {backup} after {reroute_delay * 1e3:.0f} ms")
        network.link_between("leaf0", active).set_down()

        def reroute() -> None:
            network.switches["leaf0"].install_route(
                dst, network.ports_towards("leaf0", backup)[0], priority=100)
            network.switches["leaf1"].install_route(
                src, network.ports_towards("leaf1", backup)[0], priority=100)

        sim.schedule(reroute_delay, reroute)

    sim.schedule_at(failure_time, fail_link)
    sim.run(until=0.5)
    process.stop()
    network.stop_switch_processes()

    old_paths = {tuple(o.switch_ids) for o in observations if o.time < failure_time}
    converged = next((o for o in observations
                      if o.time >= failure_time
                      and tuple(o.switch_ids) not in old_paths), None)
    print(f"  paths observed before the failure: {sorted(old_paths)}")
    if converged is not None:
        print(f"  first probe over the backup path at t={converged.time * 1e3:.1f} ms -> "
              f"convergence took {(converged.time - failure_time) * 1e3:.1f} ms "
              f"(path {converged.switch_ids})")
    else:
        print("  no probe made it over the backup path (unexpected)")


if __name__ == "__main__":
    main()
