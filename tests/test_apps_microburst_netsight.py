"""Tests for the micro-burst monitor (§2.1) and NetSight troubleshooting (§2.3)."""

import pytest

from repro.apps.microburst import (MicroburstAggregator, QueueSample, microburst_tpp,
                                   run_microburst_experiment)
from repro.apps.netsight import (HistoryStore, HopRecord, NetWatch, PacketHistory,
                                 deploy_netsight, history_bandwidth_overhead,
                                 history_from_tpp, history_overhead_bytes,
                                 packet_history_tpp)
from repro.endhost import Collector, install_stacks, match_all
from repro.net import Simulator, build_dumbbell, mbps, udp_packet


class TestMicroburstTpp:
    def test_program_matches_paper(self):
        compiled = microburst_tpp()
        assert len(compiled.tpp.instructions) == 3
        assert compiled.values_per_hop == 3

    def test_overhead_is_54_bytes_for_5_hops(self):
        # §2.1: 12 B header + 12 B instructions + 6 B/hop over 5 hops.
        assert microburst_tpp(num_hops=5).tpp.wire_length() == 54

    def test_aggregator_groups_samples_per_queue(self):
        aggregator = MicroburstAggregator("h0")
        tpp = microburst_tpp(num_hops=4).clone_tpp()
        for switch_id, port, occupancy in ((1, 2, 5), (2, 0, 0)):
            tpp.push(switch_id)
            tpp.push(port)
            tpp.push(occupancy)
            tpp.advance_hop()
        packet = udp_packet("h0", "h5", 100)
        packet.delivered_at = 1.25
        aggregator.on_tpp(tpp, packet)
        assert len(aggregator.samples) == 2
        assert set(aggregator.series) == {(1, 2), (2, 0)}
        assert aggregator.series[(1, 2)].values == [5]


class TestMicroburstExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_microburst_experiment(duration_s=0.6, link_rate_bps=mbps(10),
                                         offered_load=0.4, seed=2)

    def test_samples_collected_from_instrumented_packets(self, result):
        assert result.packets_instrumented > 100
        assert len(result.samples) > 100

    def test_queues_on_both_switches_observed(self, result):
        switch_ids = {switch for switch, _ in result.observed_queues}
        assert {1, 2} <= switch_ids

    def test_bursts_visible_at_packet_granularity(self, result):
        # The all-to-all incast workload must produce at least one queue that
        # is often empty yet spikes to several packets (the Figure 1b shape).
        bursty = [q for q in result.observed_queues if result.max_occupancy(q) >= 3]
        assert bursty
        mostly_empty = [q for q in bursty if result.fraction_empty(q) > 0.3]
        assert mostly_empty

    def test_cdf_is_monotone(self, result):
        queue = result.observed_queues[0]
        points = result.queue_cdf(queue)
        fractions = [fraction for _, fraction in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)


def _history(src="h0", dst="h1", hops=((1, 10, 0), (2, 20, 1))):
    return PacketHistory(src=src, dst=dst, protocol="udp", sport=1, dport=2, flow_id=3,
                         delivered_at=0.0,
                         hops=[HopRecord(*hop) for hop in hops])


class TestPacketHistories:
    def test_history_from_tpp(self):
        compiled = packet_history_tpp(num_hops=4)
        tpp = compiled.clone_tpp()
        for values in ((1, 17, 0), (2, 33, 3)):
            for value in values:
                tpp.push(value)
            tpp.advance_hop()
        packet = udp_packet("h0", "h5", 100, dport=80)
        packet.delivered_at = 0.5
        history = history_from_tpp(tpp, packet)
        assert history.switch_path == [1, 2]
        assert history.hops[1].matched_entry_id == 33
        assert history.matched_entry_at(1) == 17
        assert history.matched_entry_at(9) is None

    def test_overhead_matches_paper(self):
        # §2.3: 12 B instructions + 6 B/hop * 10 hops + 12 B header = 84 B,
        # i.e. 8.4 % of a 1000 B packet.
        assert history_overhead_bytes(num_hops=10) == 84
        assert history_bandwidth_overhead(1000, 10) == pytest.approx(0.084)
        assert history_bandwidth_overhead(1000, 10, sample_frequency=10) == pytest.approx(0.0084)

    def test_store_queries(self):
        store = HistoryStore()
        store.add(_history(hops=((1, 5, 0), (2, 6, 1))))
        store.add(_history(src="h9", hops=((1, 5, 0), (3, 7, 1))))
        assert len(store.packets_through_switch(1)) == 2
        assert len(store.packets_through_switch(3)) == 1
        assert len(store.packets_between("h0", "h1")) == 1
        assert store.path_counts()[(1, 2)] == 1
        assert store.entry_usage()[(1, 5)] == 2

    def test_ndb_style_predicate(self):
        store = HistoryStore()
        store.add(_history(hops=((1, 5, 0), (2, 6, 1))))
        matches = store.query(lambda h: h.traversed(2) and h.src == "h0")
        assert len(matches) == 1


class TestNetWatch:
    def test_isolation_policy(self):
        watch = NetWatch()
        watch.add_isolation_policy("tenantA-vs-B", "tenantA_", "tenantB_")
        ok = _history(src="tenantA_1", dst="tenantA_2")
        bad = _history(src="tenantA_1", dst="tenantB_9")
        assert watch.check(ok) == []
        assert len(watch.check(bad)) == 1
        assert watch.violations[0].policy == "tenantA-vs-B"

    def test_waypoint_policy(self):
        watch = NetWatch()
        watch.add_waypoint_policy("through-firewall", "h", waypoint_switch=7)
        assert watch.check(_history(hops=((7, 1, 0), (2, 1, 1)))) == []
        assert len(watch.check(_history(hops=((1, 1, 0), (2, 1, 1))))) == 1

    def test_loop_freedom_policy(self):
        watch = NetWatch()
        watch.add_loop_freedom_policy()
        assert watch.check(_history(hops=((1, 0, 0), (2, 0, 0)))) == []
        assert len(watch.check(_history(hops=((1, 0, 0), (2, 0, 0), (1, 0, 0))))) == 1


class TestNetSightDeployment:
    def test_end_to_end_history_collection(self):
        sim = Simulator()
        topo = build_dumbbell(sim, link_rate_bps=mbps(10))
        stacks = install_stacks(topo.network)
        watch = NetWatch()
        watch.add_loop_freedom_policy()
        deployed = deploy_netsight(stacks, Collector(), netwatch=watch)
        topo.network.hosts["h0"].send(udp_packet("h0", "h5", 500, dport=80))
        topo.network.hosts["h1"].send(udp_packet("h1", "h2", 500, dport=80))
        sim.run(until=0.05)
        histories = deployed.aggregators["h5"].store
        assert len(histories) == 1
        assert histories.histories[0].switch_path == [1, 2]   # both switches crossed
        assert deployed.aggregators["h2"].store.histories[0].switch_path == [1]
        assert watch.violations == []
