"""Tests for the §6 hardware models and the remaining baselines."""

import pytest

from repro.baselines import PollingMonitor, run_tcp_overhead_experiment
from repro.baselines.ecmp import hash_split
from repro.baselines.exact_counter import ExactDistinctCounter
from repro.apps.sketches import LinkKey
from repro.core.assembler import parse_program
from repro.hardware import (ASIC, NETFPGA, NETFPGA_TABLE4_PAPER_PERCENT, TABLE5_PAPER_GBPS,
                            EndHostCostModel, asic_tcpu_area_percent, build_area_report,
                            build_latency_report, buffering_for_stall_bytes,
                            netfpga_percent_extra, packetization_latency_ns,
                            relative_latency_increase, worst_case_tpp)
from repro.net import MessageWorkload, Simulator, build_dumbbell, mbps


class TestLatencyModel:
    def test_worst_case_asic_latency_is_50ns(self):
        report = build_latency_report(ASIC)
        assert report.worst_case_added_ns == pytest.approx(50.0)

    def test_buffering_matches_paper(self):
        assert buffering_for_stall_bytes(50.0, 1e12) == pytest.approx(6250)

    def test_relative_increase_band(self):
        low, high = relative_latency_increase(50.0)
        assert low == pytest.approx(0.10)
        assert high == pytest.approx(0.25)

    def test_packetization_latency(self):
        assert packetization_latency_ns(64, 10e9) == pytest.approx(51.2)

    def test_netfpga_per_stage_cost_small(self):
        report = build_latency_report(NETFPGA)
        assert report.added_per_stage_cycles <= 3.5
        assert report.worst_case_added_ns < 100

    def test_read_only_tpp_costs_less_than_worst_case(self):
        reads = parse_program("PUSH [Switch:SwitchID]\nPUSH [Queue:QueueOccupancy]\n"
                              "PUSH [Link:TX-Utilization]")
        added = ASIC.tpp_added_latency_ns(reads)
        assert added < ASIC.tpp_added_latency_ns(worst_case_tpp())
        assert added == pytest.approx(3 * 5, rel=0.01)   # three 5-cycle reads at 1 GHz

    def test_asic_baseline_per_stage_dominates_tpp_cost(self):
        # The TPP's added per-stage cost is small next to the switch's own
        # 50-100 cycle per-stage latency (the paper's argument).
        report = build_latency_report(ASIC)
        assert report.added_per_stage_cycles < report.baseline_per_stage_cycles


class TestAreaModel:
    def test_netfpga_percentages_match_paper(self):
        computed = netfpga_percent_extra()
        for name, expected in NETFPGA_TABLE4_PAPER_PERCENT.items():
            assert computed[name] == pytest.approx(expected, abs=0.1)

    def test_asic_area_fraction(self):
        assert asic_tcpu_area_percent() == pytest.approx(0.32)
        assert asic_tcpu_area_percent(instructions_per_packet=10) == pytest.approx(0.64)
        with pytest.raises(ValueError):
            asic_tcpu_area_percent(rmt_processing_units=0)

    def test_area_report(self):
        report = build_area_report()
        assert report.asic_tcpu_units == 320
        assert report.max_netfpga_percent_extra < 31


class TestEndHostModel:
    def test_table5_shape_reproduced(self):
        model = EndHostCostModel()
        for scenario, rows in TABLE5_PAPER_GBPS.items():
            for rules, paper_gbps in rows.items():
                modeled = model.filter_chain_throughput_bps(rules, scenario) / 1e9
                assert modeled == pytest.approx(paper_gbps, rel=0.25), (scenario, rules)

    def test_first_and_last_scenarios_identical(self):
        model = EndHostCostModel()
        for rules in (0, 1, 10, 100, 1000):
            assert model.filter_chain_throughput_bps(rules, "first") == \
                model.filter_chain_throughput_bps(rules, "last")

    def test_all_scenario_is_never_faster(self):
        model = EndHostCostModel()
        for rules in (10, 100, 1000):
            assert model.filter_chain_throughput_bps(rules, "all") <= \
                model.filter_chain_throughput_bps(rules, "first")

    def test_invalid_scenario_rejected(self):
        with pytest.raises(ValueError):
            EndHostCostModel().filter_chain_throughput_bps(10, "middle")

    def test_figure10_goodput_falls_with_sampling_rate(self):
        model = EndHostCostModel()
        goodputs = [model.application_goodput_bps(1, s) for s in (1, 10, 20, float("inf"))]
        assert goodputs == sorted(goodputs)
        assert goodputs[-1] == pytest.approx(4.0e9, rel=0.01)
        # Stamping every packet costs roughly the TPP header fraction (~15 %).
        assert goodputs[0] / goodputs[-1] == pytest.approx(1500 / 1760, rel=0.1)

    def test_figure10_network_throughput_nearly_flat(self):
        model = EndHostCostModel()
        with_tpps = model.network_throughput_bps(20, 1)
        without = model.network_throughput_bps(20, float("inf"))
        assert abs(with_tpps - without) / without < 0.1

    def test_more_flows_more_throughput(self):
        model = EndHostCostModel()
        assert model.application_goodput_bps(20, float("inf")) > \
            model.application_goodput_bps(1, float("inf"))


class TestEcmpBaseline:
    def test_hash_split_covers_all_paths_and_flows(self):
        split = hash_split("L1", "L2", list(range(20000, 20024)), num_paths=2,
                           flow_rate_bps=10e6)
        assert sum(split.flows_per_path.values()) == 24
        assert set(split.flows_per_path) == {0, 1}
        assert split.max_load_bps >= 12 * 10e6 * 0.5


class TestPollingMonitorBaseline:
    def test_polling_misses_bursts_that_tpps_catch(self):
        sim = Simulator()
        topo = build_dumbbell(sim, link_rate_bps=mbps(10))
        network = topo.network
        hosts = [network.hosts[name] for name in topo.host_names]
        monitor = PollingMonitor(sim, network, poll_interval_s=0.5)
        MessageWorkload(sim, hosts, link_rate_bps=mbps(10), offered_load=0.4,
                        message_bytes=10_000, seed=2)
        sim.run(until=1.5)
        monitor.stop()
        network.stop_switch_processes()
        # The workload certainly built queues (thousands of packets were
        # forwarded), but a 0.5 s poller collects only a handful of samples —
        # orders of magnitude less coverage than per-packet TPP sampling —
        # and most of what it sees is an empty or near-empty queue.
        assert monitor.polls >= 2
        assert monitor.samples_total() > 0
        packets_forwarded = sum(s.packets_forwarded for s in network.switches.values())
        assert packets_forwarded > 50 * monitor.samples_total()
        all_samples = [value for series in monitor.series.values() for value in series.values]
        near_empty = sum(1 for value in all_samples if value <= 2)
        assert near_empty / len(all_samples) >= 0.5


class TestExactCounter:
    def test_counts_and_errors(self):
        counter = ExactDistinctCounter()
        key = LinkKey(1, 0)
        for element in ("a", "b", "b", "c"):
            counter.add(key, element)
        assert counter.count(key) == 3
        assert counter.counts() == {key: 3}
        assert counter.relative_error(key, 3.3) == pytest.approx(0.1)
        assert counter.relative_error(LinkKey(9, 9), 0) == 0.0
        assert counter.memory_bytes() == 3 * 64


class TestTcpOverheadBaseline:
    def test_overhead_in_paper_band(self):
        result = run_tcp_overhead_experiment(num_flows=3, duration_s=2.0,
                                             link_rate_bps=mbps(10))
        assert 0.005 < result.overhead_fraction < 0.035
        assert result.mean_goodput_bps > 0
        with pytest.raises(ValueError):
            run_tcp_overhead_experiment(num_flows=0)
