"""Tests for the TPP pseudo-assembly parser."""

import pytest

from repro.core import addressing
from repro.core.assembler import (disassemble, parse_packet_operand, parse_program,
                                  parse_statement)
from repro.core.exceptions import AssemblyError
from repro.core.isa import Opcode


class TestStatementParsing:
    def test_push(self):
        instruction = parse_statement("PUSH [Queue:QueueOccupancy]")
        assert instruction.opcode is Opcode.PUSH
        assert instruction.address == addressing.resolve("[Queue:QueueOccupancy]")

    def test_pop(self):
        instruction = parse_statement("POP [Link:AppSpecific_0]")
        assert instruction.opcode is Opcode.POP

    def test_load_with_packet_operand(self):
        instruction = parse_statement("LOAD [Switch:SwitchID], [Packet:Hop[1]]")
        assert instruction.opcode is Opcode.LOAD
        assert instruction.packet_offset == 1

    def test_store(self):
        instruction = parse_statement("STORE [Link:AppSpecific_1], [Packet:Hop[2]]")
        assert instruction.opcode is Opcode.STORE
        assert instruction.packet_offset == 2

    def test_cstore_with_adjacent_operands(self):
        instruction = parse_statement(
            "CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[1]]")
        assert instruction.opcode is Opcode.CSTORE
        assert instruction.packet_offset == 0

    def test_cstore_rejects_non_adjacent_operands(self):
        with pytest.raises(AssemblyError):
            parse_statement("CSTORE [Link:AppSpecific_0], [Packet:Hop[0]], [Packet:Hop[3]]")

    def test_cexec(self):
        instruction = parse_statement("CEXEC [Switch:SwitchID], [Packet:Hop[0]]")
        assert instruction.opcode is Opcode.CEXEC

    def test_lowercase_hop_accepted(self):
        instruction = parse_statement("LOAD [Switch:SwitchID], [Packet:hop[4]]")
        assert instruction.packet_offset == 4

    def test_raw_hex_address_accepted(self):
        instruction = parse_statement("PUSH 0xb000")
        assert instruction.address == 0xB000

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblyError):
            parse_statement("JUMP [Switch:SwitchID]")

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(AssemblyError):
            parse_statement("PUSH [Switch:SwitchID], [Packet:Hop[0]]")
        with pytest.raises(AssemblyError):
            parse_statement("LOAD [Switch:SwitchID]")

    def test_load_requires_packet_second_operand(self):
        with pytest.raises(AssemblyError):
            parse_statement("LOAD [Switch:SwitchID], [Switch:Clock]")


class TestProgramParsing:
    def test_paper_rcp_collect_program(self):
        source = """
        PUSH [Switch:SwitchID]
        PUSH [Link:QueueSize]
        PUSH [Link:RX-Utilization]
        PUSH [Link:AppSpecific_0] # Version number
        PUSH [Link:AppSpecific_1] # Rfair
        """
        program = parse_program(source)
        assert len(program) == 5
        assert all(i.opcode is Opcode.PUSH for i in program)

    def test_comments_and_blank_lines_ignored(self):
        program = parse_program("# a comment\n\nPUSH [Switch:SwitchID]\n   \n")
        assert len(program) == 1

    def test_line_continuation(self):
        source = "CSTORE [Link:AppSpecific_0], \\\n  [Packet:Hop[0]], [Packet:Hop[1]]"
        program = parse_program(source)
        assert len(program) == 1
        assert program[0].opcode is Opcode.CSTORE

    def test_empty_program(self):
        assert parse_program("# only a comment") == []

    def test_disassemble_roundtrip(self):
        source = """
        PUSH [Switch:SwitchID]
        LOAD [Link:TX-Bytes], [Packet:Hop[1]]
        CSTORE [Link:AppSpecific_0], [Packet:Hop[2]], [Packet:Hop[3]]
        """
        program = parse_program(source)
        assert parse_program(disassemble(program)) == program


class TestPacketOperand:
    def test_valid_forms(self):
        assert parse_packet_operand("[Packet:Hop[3]]") == 3
        assert parse_packet_operand("Packet:hop[0]") == 0

    def test_invalid_forms(self):
        assert parse_packet_operand("[Switch:SwitchID]") is None
        assert parse_packet_operand("[Packet:Hop[x]]") is None
