"""Tests for the measurement sketches (§2.5) and network verification (§2.6)."""

import pytest

from repro.apps.netverify import (RouteVerifier, build_fast_update_tpp, fast_update_registers,
                                  observation_from_tpp)
from repro.apps.sketches import (BitmapSketch, LinkKey, LinkMonitoringService,
                                 SketchAggregator, deploy_sketch_application,
                                 sketch_memory_projection, sketch_tpp)
from repro.baselines.exact_counter import ExactDistinctCounter
from repro.core import addressing
from repro.endhost import install_stacks
from repro.net import Simulator, build_dumbbell, mbps, udp_packet


class TestBitmapSketch:
    def test_estimate_improves_with_bitmap_size(self):
        elements = [f"10.0.{i // 256}.{i % 256}" for i in range(400)]
        small, large = BitmapSketch(bits=256), BitmapSketch(bits=4096)
        for element in elements:
            small.add(element)
            large.add(element)
        small_error = abs(small.estimate() - 400) / 400
        large_error = abs(large.estimate() - 400) / 400
        assert large_error < 0.1
        assert large_error <= small_error + 0.05

    def test_duplicates_do_not_inflate_estimate(self):
        sketch = BitmapSketch(bits=1024)
        for _ in range(50):
            for element in ("a", "b", "c"):
                sketch.add(element)
        assert sketch.estimate() == pytest.approx(3, abs=2)

    def test_merge_is_union(self):
        left, right = BitmapSketch(bits=1024), BitmapSketch(bits=1024)
        for i in range(100):
            (left if i % 2 else right).add(f"host{i}")
        left.merge(right)
        assert left.estimate() == pytest.approx(100, rel=0.15)

    def test_merge_requires_same_geometry(self):
        with pytest.raises(ValueError):
            BitmapSketch(bits=64).merge(BitmapSketch(bits=128))

    def test_saturated_bitmap_returns_finite_estimate(self):
        sketch = BitmapSketch(bits=8)
        for i in range(1000):
            sketch.add(str(i))
        assert sketch.zero_bits() == 0
        assert sketch.estimate() < float("inf")

    def test_memory_footprint(self):
        assert BitmapSketch(bits=1024).memory_bytes() == 128
        assert sketch_memory_projection()["total_megabytes_per_server"] == pytest.approx(8.39, rel=0.01)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            BitmapSketch(bits=0)


class TestSketchAggregation:
    def test_aggregator_keys_by_link(self):
        aggregator = SketchAggregator("h0", bits=512, key_field="dst")
        tpp = sketch_tpp(num_hops=4).clone_tpp()
        for switch_id, port in ((1, 2), (2, 0)):
            tpp.push(switch_id)
            tpp.push(port)
            tpp.advance_hop()
        aggregator.on_tpp(tpp, udp_packet("h0", "h9", 100))
        assert set(aggregator.bitmaps) == {LinkKey(1, 2), LinkKey(2, 0)}

    def test_service_merges_host_summaries(self):
        service = LinkMonitoringService(bits=512)
        key = LinkKey(1, 1)
        for host in ("h0", "h1"):
            aggregator = SketchAggregator(host, collector=service, bits=512)
            sketch = BitmapSketch(512)
            for i in range(20):
                sketch.add(f"{host}-{i}")
            aggregator.bitmaps[key] = sketch
            aggregator.push_summary()
        assert service.estimate(key) == pytest.approx(40, rel=0.2)
        assert service.total_memory_bytes() == 64

    def test_end_to_end_distinct_count_matches_exact_baseline(self):
        sim = Simulator()
        topo = build_dumbbell(sim, link_rate_bps=mbps(10))
        network = topo.network
        stacks = install_stacks(network)
        service = LinkMonitoringService(bits=2048)
        deployed = deploy_sketch_application(stacks, service, bits=2048, key_field="src")
        exact = ExactDistinctCounter()
        # Every host sends to every other host once.
        for src in topo.host_names:
            for dst in topo.host_names:
                if src != dst:
                    network.hosts[src].send(udp_packet(src, dst, 200, dport=1234))
        sim.run(until=0.2)
        deployed.push_all_summaries()
        core_key = None
        for aggregator in deployed.aggregators.values():
            for key, sketch in aggregator.bitmaps.items():
                exact_set = exact.per_link.setdefault(key, set())
        # Rebuild the exact counts from first principles: the s0->s1 link sees
        # sources h0..h2, the s1->s0 link sees h3..h5.
        s0_port = network.ports_towards("s0", "s1")[0]
        key_s0 = LinkKey(network.switches["s0"].switch_id, s0_port)
        estimate = service.estimate(key_s0)
        assert estimate == pytest.approx(3, abs=1)

    def test_sampling_reduces_overhead_below_one_percent(self):
        # §2.5: sampling 1-in-10 packets keeps the bandwidth overhead < 1 %.
        compiled = sketch_tpp(num_hops=10)
        overhead = compiled.tpp.wire_length() / 10 / 1000
        assert overhead < 0.01


class TestRouteVerification:
    def _network(self):
        sim = Simulator()
        topo = build_dumbbell(sim, link_rate_bps=mbps(10))
        return sim, topo.network, install_stacks(topo.network)

    def test_expected_path_and_verify(self):
        _, network, _ = self._network()
        verifier = RouteVerifier(network)
        expected = verifier.expected_switch_path("h0", "h5")
        assert expected == [1, 2]
        ok = verifier.verify(expected, [1, 2])
        assert ok.matches and ok.divergence_hop is None
        bad = verifier.verify(expected, [1, 3])
        assert not bad.matches and bad.divergence_hop == 1
        short = verifier.verify(expected, [1])
        assert not short.matches and short.divergence_hop == 1

    def test_observation_from_tpp(self):
        from repro.apps.netverify import PATH_TPP_SOURCE
        from repro.core.compiler import compile_tpp
        tpp = compile_tpp(PATH_TPP_SOURCE, num_hops=4).clone_tpp()
        for values in ((1, 0, 3), (2, 1, 5)):
            for value in values:
                tpp.push(value)
            tpp.advance_hop()
        observation = observation_from_tpp(tpp, time=0.5)
        assert observation.switch_ids == [1, 2]
        assert observation.entry_versions == [3, 5]

    def test_fast_update_installs_values_along_path(self):
        sim, network, stacks = self._network()
        fast_update_registers(stacks["h0"], "h5", stage=1, register=2,
                              per_hop_values=[111, 222])
        sim.run(until=0.1)
        assert network.switches["s0"].pipeline.stage(1).read_register(2) == 111
        assert network.switches["s1"].pipeline.stage(1).read_register(2) == 222

    def test_fast_update_tpp_structure(self):
        tpp = build_fast_update_tpp(stage=2, register=0, per_hop_values=[5, 6, 7])
        assert len(tpp.instructions) == 1
        assert tpp.instructions[0].address == addressing.stage_address(2, "Reg0")
        assert tpp.read_hop_word(0, hop=2) == 7
