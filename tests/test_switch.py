"""Tests for the TPP-capable switch: forwarding, memory map, TPP execution."""

import pytest

from repro.core import addressing
from repro.core.compiler import compile_tpp
from repro.core.isa import Instruction, Opcode
from repro.core.packet_format import AddressingMode, make_tpp
from repro.core.tcpu import PacketContext
from repro.net.link import Link, mbps
from repro.net.node import Host
from repro.net.packet import udp_packet
from repro.net.sim import Simulator
from repro.net.topology import Network
from repro.switches.counters import StatsBlock, utilization_basis_points
from repro.switches.parser import TPPParser, parse_graph_edges
from repro.switches.switch import TPPSwitch


def small_network(**switch_kwargs):
    """h0 - s1 - h1 with 10 Mb/s links."""
    sim = Simulator()
    net = Network(sim)
    net.add_host("h0")
    net.add_host("h1")
    net.add_switch("s1", **switch_kwargs)
    net.connect("h0", "s1", rate_bps=mbps(10))
    net.connect("h1", "s1", rate_bps=mbps(10))
    net.install_shortest_path_routes()
    return sim, net


class TestForwarding:
    def test_forwards_by_destination(self):
        sim, net = small_network()
        net.hosts["h1"].keep_received_log = True
        net.hosts["h0"].send(udp_packet("h0", "h1", 100))
        sim.run(until=0.01)
        assert net.hosts["h1"].packets_received == 1
        assert net.hosts["h1"].received_log[0].path == ["h0", "s1", "h1"]

    def test_unknown_destination_dropped(self):
        sim, net = small_network()
        net.hosts["h0"].send(udp_packet("h0", "nowhere", 100))
        sim.run(until=0.01)
        assert net.switches["s1"].packets_dropped == 1
        assert net.switches["s1"].packets_forwarded == 0

    def test_drop_callback_invoked(self):
        sim, net = small_network()
        dropped = []
        net.switches["s1"].drop_callback = lambda packet, switch: dropped.append(packet)
        net.hosts["h0"].send(udp_packet("h0", "nowhere", 100))
        sim.run(until=0.01)
        assert len(dropped) == 1

    def test_forwarding_latency_delays_packets(self):
        sim, net = small_network(forwarding_latency_s=1e-3)
        net.hosts["h0"].send(udp_packet("h0", "h1", 100))
        sim.run(until=0.1)
        packet_time = net.hosts["h1"].bytes_received and sim.now
        assert net.hosts["h1"].packets_received == 1


class TestTppExecutionAtSwitch:
    def test_tpp_collects_switch_id_and_metadata(self):
        sim, net = small_network()
        net.hosts["h1"].keep_received_log = True
        compiled = compile_tpp("PUSH [Switch:SwitchID]\nPUSH [PacketMetadata:InputPort]\n"
                               "PUSH [PacketMetadata:OutputPort]", num_hops=3)
        packet = udp_packet("h0", "h1", 100)
        packet.attach_tpp(compiled.clone_tpp())
        net.hosts["h0"].send(packet)
        sim.run(until=0.01)
        received = net.hosts["h1"].received_log[0]
        switch = net.switches["s1"]
        in_port = net.ports_towards("s1", "h0")[0]
        out_port = net.ports_towards("s1", "h1")[0]
        assert received.tpp.hop_number == 1
        assert received.tpp.words_by_hop(3) == [[switch.switch_id, in_port, out_port]]

    def test_tpp_disabled_switch_does_not_execute(self):
        sim, net = small_network(tpp_enabled=False)
        net.hosts["h1"].keep_received_log = True
        packet = udp_packet("h0", "h1", 100)
        packet.attach_tpp(compile_tpp("PUSH [Switch:SwitchID]").clone_tpp())
        net.hosts["h0"].send(packet)
        sim.run(until=0.01)
        assert net.hosts["h1"].received_log[0].tpp.hop_number == 0

    def test_write_disabled_switch_skips_stores(self):
        sim, net = small_network(write_enabled=False)
        switch = net.switches["s1"]
        tpp = make_tpp([Instruction(Opcode.STORE,
                                    addressing.resolve("[Link:AppSpecific_0]"),
                                    packet_offset=0)],
                       num_hops=1, mode=AddressingMode.HOP, initial_values=[42])
        packet = udp_packet("h0", "h1", 100)
        packet.attach_tpp(tpp)
        net.hosts["h0"].send(packet)
        sim.run(until=0.01)
        assert switch.memory.app_registers == {}

    def test_store_then_push_roundtrip_through_switch_memory(self):
        sim, net = small_network()
        switch = net.switches["s1"]
        net.hosts["h1"].keep_received_log = True
        # First packet writes 77 into the output link's AppSpecific_0 register.
        writer = make_tpp([Instruction(Opcode.STORE,
                                       addressing.resolve("[Link:AppSpecific_0]"),
                                       packet_offset=0)],
                          num_hops=1, mode=AddressingMode.HOP, initial_values=[77])
        first = udp_packet("h0", "h1", 100)
        first.attach_tpp(writer)
        net.hosts["h0"].send(first)
        sim.run(until=0.005)
        out_port = net.ports_towards("s1", "h1")[0]
        assert switch.memory.app_registers[(out_port, 0)] == 77
        # Second packet reads it back.
        reader = compile_tpp("PUSH [Link:AppSpecific_0]").clone_tpp()
        second = udp_packet("h0", "h1", 100)
        second.attach_tpp(reader)
        net.hosts["h0"].send(second)
        sim.run(until=0.01)
        assert net.hosts["h1"].received_log[-1].tpp.pushed_words() == [77]

    def test_output_port_rewrite_redirects_packet(self):
        # Three hosts on one switch; a TPP rewrites the output port so the
        # packet addressed to h1 is delivered to h2 instead (Table 2 allows it).
        sim = Simulator()
        net = Network(sim)
        for name in ("h0", "h1", "h2"):
            net.add_host(name)
        net.add_switch("s1")
        for name in ("h0", "h1", "h2"):
            net.connect(name, "s1", rate_bps=mbps(10))
        net.install_shortest_path_routes()
        port_to_h2 = net.ports_towards("s1", "h2")[0]
        tpp = make_tpp([Instruction(Opcode.STORE,
                                    addressing.resolve("[PacketMetadata:OutputPort]"),
                                    packet_offset=0)],
                       num_hops=1, mode=AddressingMode.HOP,
                       initial_values=[port_to_h2])
        packet = udp_packet("h0", "h1", 100)
        packet.attach_tpp(tpp)
        net.hosts["h0"].send(packet)
        sim.run(until=0.01)
        assert net.hosts["h2"].packets_received == 1
        assert net.hosts["h1"].packets_received == 0

    def test_queue_occupancy_read_is_packet_consistent(self):
        # A fast ingress link feeding a slow egress link builds a queue; each
        # packet's TPP must observe the occupancy at the moment it is enqueued
        # (monotonically increasing for a back-to-back burst).
        sim = Simulator()
        net = Network(sim)
        net.add_host("h0")
        net.add_host("h1")
        net.add_switch("s1")
        net.connect("h0", "s1", rate_bps=mbps(100))
        net.connect("h1", "s1", rate_bps=mbps(10))
        net.install_shortest_path_routes()
        net.hosts["h1"].keep_received_log = True
        compiled = compile_tpp("PUSH [Queue:QueueOccupancy]", num_hops=2)
        for _ in range(5):
            packet = udp_packet("h0", "h1", 958)
            packet.attach_tpp(compiled.clone_tpp())
            net.hosts["h0"].send(packet)
        sim.run(until=0.1)
        occupancies = [p.tpp.pushed_words()[0] for p in net.hosts["h1"].received_log]
        assert occupancies[0] == 0
        assert max(occupancies) >= 3
        assert occupancies == sorted(occupancies)


class TestSwitchMemoryMap:
    def test_switch_namespace_reads(self):
        sim, net = small_network()
        switch = net.switches["s1"]
        context = PacketContext(input_port=0, output_port=1)
        read = lambda m: switch.memory.read(addressing.resolve(m), context)
        assert read("[Switch:SwitchID]") == switch.switch_id
        assert read("[Switch:NumPorts]") == 2
        assert read("[Switch:VendorID]") == switch.vendor_id
        assert read("[Switch:VersionNumber]") == switch.forwarding_version

    def test_link_namespace_reads(self):
        sim, net = small_network()
        switch = net.switches["s1"]
        context = PacketContext(input_port=0, output_port=1)
        read = lambda m: switch.memory.read(addressing.resolve(m), context)
        assert read("[Link$1:Capacity]") == 10
        assert read("[Link$1:PortStatus]") == 1
        assert read("[Link:QueueSizeBytes]") == 0
        assert read("[Link$0:ID]") == switch.link_id(0)

    def test_dynamic_rx_fields_resolve_to_input_port(self):
        sim, net = small_network()
        switch = net.switches["s1"]
        switch.ports[0].rx_bytes = 111
        switch.ports[1].rx_bytes = 222
        context = PacketContext(input_port=0, output_port=1)
        value = switch.memory.read(addressing.resolve("[Link:RX-Bytes]"), context)
        assert value == 111
        tx_context_value = switch.memory.read(addressing.resolve("[Link:TX-Bytes]"), context)
        assert tx_context_value == switch.ports[1].tx_bytes

    def test_nonexistent_addresses_return_none(self):
        sim, net = small_network()
        switch = net.switches["s1"]
        context = PacketContext()
        assert switch.memory.read(addressing.resolve("[Link$50:ID]"), context) is None
        assert switch.memory.read(addressing.resolve("[Stage$30:Reg0]"), context) is None
        assert switch.memory.read(addressing.resolve("[Queue$0$3:QueueOccupancy]"),
                                  context) is None

    def test_counters_are_read_only(self):
        sim, net = small_network()
        switch = net.switches["s1"]
        context = PacketContext(output_port=1)
        assert not switch.memory.write(addressing.resolve("[Switch:SwitchID]"), 9, context)
        assert not switch.memory.write(addressing.resolve("[Link:TX-Bytes]"), 9, context)
        assert not switch.memory.write(addressing.resolve("[Queue:QueueOccupancy]"), 9, context)

    def test_stage_register_write(self):
        sim, net = small_network()
        switch = net.switches["s1"]
        context = PacketContext()
        address = addressing.resolve("[Stage$1:Reg2]")
        assert switch.memory.write(address, 314, context)
        assert switch.memory.read(address, context) == 314

    def test_utilization_updates_with_traffic(self):
        sim, net = small_network()
        switch = net.switches["s1"]
        # Saturate the h1-facing link for 50 ms.
        for _ in range(100):
            net.hosts["h0"].send(udp_packet("h0", "h1", 958))
        sim.run(until=0.05)
        out_port = net.ports_towards("s1", "h1")[0]
        utilization = switch.port_stats[out_port].tx_utilization_bp
        assert utilization > 9000   # essentially saturated


class TestCountersHelpers:
    def test_stats_block_rates(self):
        block = StatsBlock()
        block.count(1000, packets=2)
        block.update_rates(0.5)
        assert block.byte_rate == pytest.approx(2000)
        assert block.packet_rate == pytest.approx(4)
        block.count(500)
        block.update_rates(0.5, ewma_alpha=0.5)
        assert block.byte_rate == pytest.approx(0.5 * 1000 + 0.5 * 2000)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            StatsBlock().update_rates(0)

    def test_utilization_basis_points_clamped(self):
        assert utilization_basis_points(0, 1e6) == 0
        assert utilization_basis_points(1e9, 1e6) == 10000
        assert utilization_basis_points(125_000 / 2, 1e6) == 5000


class TestParser:
    def test_parse_modes(self):
        parser = TPPParser()
        plain = udp_packet("a", "b", 10)
        assert parser.parse(plain).mode == "none"
        piggy = udp_packet("a", "b", 10)
        piggy.attach_tpp(compile_tpp("PUSH [Switch:SwitchID]").clone_tpp())
        assert parser.parse(piggy).mode == "piggybacked"
        from repro.net.packet import tpp_probe_packet
        probe = tpp_probe_packet("a", "b", compile_tpp("PUSH [Switch:SwitchID]").clone_tpp())
        assert parser.parse(probe).mode == "standalone"
        assert parser.tpps_identified == 2

    def test_parse_graph_has_both_tpp_entry_points(self):
        edges = parse_graph_edges()
        tpp_edges = [edge for edge in edges if edge[1] == "TPP"]
        assert len(tpp_edges) == 2
        sources = {edge[0] for edge in tpp_edges}
        assert sources == {"Ethernet", "UDP"}
