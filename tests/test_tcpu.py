"""Tests for the TCPU execution engine semantics (§3.2, §3.3)."""

from typing import Optional

import pytest

from repro.core.compiler import compile_tpp
from repro.core.isa import Instruction, Opcode
from repro.core.packet_format import AddressingMode, make_tpp
from repro.core.tcpu import InstructionStatus, PacketContext, TCPU


class DictMemory:
    """A simple MemoryInterface backed by a dict (plus read-only addresses)."""

    def __init__(self, values: Optional[dict] = None, read_only: Optional[set] = None):
        self.values = dict(values or {})
        self.read_only = set(read_only or ())
        self.reads = []
        self.writes = []

    def read(self, address, context):
        self.reads.append(address)
        return self.values.get(address)

    def write(self, address, value, context):
        self.writes.append((address, value))
        if address in self.read_only or address not in self.values:
            return False
        self.values[address] = value
        return True


def run(source_or_instructions, memory, context=None, write_enabled=True, **kwargs):
    if isinstance(source_or_instructions, str):
        tpp = compile_tpp(source_or_instructions, **kwargs).tpp
    else:
        tpp = make_tpp(source_or_instructions, **kwargs)
    result = TCPU(write_enabled=write_enabled).execute(tpp, memory,
                                                       context or PacketContext())
    return tpp, result


class TestPushPop:
    def test_push_copies_switch_value_into_packet(self):
        from repro.core import addressing
        address = addressing.resolve("[Switch:SwitchID]")
        tpp, result = run("PUSH [Switch:SwitchID]", DictMemory({address: 7}))
        assert tpp.pushed_words() == [7]
        assert result.statuses == [InstructionStatus.EXECUTED]

    def test_push_missing_memory_fails_gracefully(self):
        tpp, result = run("PUSH [Switch:SwitchID]", DictMemory({}))
        assert tpp.pushed_words() == []
        assert result.statuses == [InstructionStatus.SKIPPED_NO_MEMORY]
        assert not result.halted    # the TPP keeps being forwarded

    def test_push_order_preserved_in_packet_memory(self):
        from repro.core import addressing
        a = addressing.resolve("[Switch:SwitchID]")
        b = addressing.resolve("[Switch:VersionNumber]")
        tpp, _ = run("PUSH [Switch:SwitchID]\nPUSH [Switch:VersionNumber]",
                     DictMemory({a: 1, b: 2}))
        assert tpp.pushed_words() == [1, 2]

    def test_pop_writes_packet_value_to_switch(self):
        from repro.core import addressing
        address = addressing.resolve("[Link:AppSpecific_0]")
        memory = DictMemory({address: 0})
        tpp = compile_tpp("POP [Link:AppSpecific_0]", initial_values=[55], num_hops=1).tpp
        TCPU().execute(tpp, memory, PacketContext())
        assert memory.values[address] == 55

    def test_pop_with_exhausted_memory_skips(self):
        tpp = make_tpp([Instruction(Opcode.POP, 0x1010)], num_hops=1)
        tpp.stack_pointer = len(tpp.memory)
        result = TCPU().execute(tpp, DictMemory({0x1010: 0}), PacketContext())
        assert result.statuses == [InstructionStatus.SKIPPED_PACKET_FULL]
        assert result.packet_full


class TestLoadStore:
    def test_load_into_hop_slot(self):
        memory = DictMemory({0x0000: 99})
        instructions = [Instruction(Opcode.LOAD, 0x0000, packet_offset=1)]
        tpp, _ = run(instructions, memory, num_hops=2, mode=AddressingMode.HOP,
                     values_per_hop=2)
        assert tpp.read_hop_word(1, hop=0) == 99

    def test_load_uses_current_hop_slice(self):
        memory = DictMemory({0x0000: 5})
        instructions = [Instruction(Opcode.LOAD, 0x0000, packet_offset=0)]
        tpp = make_tpp(instructions, num_hops=3, mode=AddressingMode.HOP)
        tpp.hop_number = 2
        TCPU().execute(tpp, memory, PacketContext())
        assert tpp.read_hop_word(0, hop=2) == 5
        assert tpp.read_hop_word(0, hop=0) == 0

    def test_store_reads_packet_word(self):
        memory = DictMemory({0x1010: 0})
        tpp = make_tpp([Instruction(Opcode.STORE, 0x1010, packet_offset=0)],
                       num_hops=1, mode=AddressingMode.HOP, initial_values=[123])
        TCPU().execute(tpp, memory, PacketContext())
        assert memory.values[0x1010] == 123

    def test_store_to_read_only_address_fails_gracefully(self):
        memory = DictMemory({0x0000: 1}, read_only={0x0000})
        tpp = make_tpp([Instruction(Opcode.STORE, 0x0000, packet_offset=0)],
                       num_hops=1, mode=AddressingMode.HOP, initial_values=[9])
        result = TCPU().execute(tpp, memory, PacketContext())
        assert result.statuses == [InstructionStatus.SKIPPED_NO_MEMORY]
        assert memory.values[0x0000] == 1


class TestWriteDisable:
    def test_writes_skipped_when_disabled(self):
        memory = DictMemory({0x1010: 1})
        tpp = make_tpp([Instruction(Opcode.STORE, 0x1010, packet_offset=0)],
                       num_hops=1, mode=AddressingMode.HOP, initial_values=[9])
        result = TCPU(write_enabled=False).execute(tpp, memory, PacketContext())
        assert result.statuses == [InstructionStatus.SKIPPED_WRITE_DISABLED]
        assert memory.values[0x1010] == 1

    def test_reads_still_execute_when_writes_disabled(self):
        from repro.core import addressing
        address = addressing.resolve("[Switch:SwitchID]")
        tpp, result = run("PUSH [Switch:SwitchID]", DictMemory({address: 3}),
                          write_enabled=False)
        assert tpp.pushed_words() == [3]


class TestCStore:
    def _cstore_tpp(self, old, new):
        return make_tpp([Instruction(Opcode.CSTORE, 0x1010, packet_offset=0),
                         Instruction(Opcode.STORE, 0x1011, packet_offset=2)],
                        num_hops=1, mode=AddressingMode.HOP, values_per_hop=3,
                        initial_values=[old, new, 777])

    def test_successful_compare_and_swap(self):
        memory = DictMemory({0x1010: 10, 0x1011: 0})
        tpp = self._cstore_tpp(old=10, new=11)
        result = TCPU().execute(tpp, memory, PacketContext())
        assert memory.values[0x1010] == 11
        assert memory.values[0x1011] == 777          # subsequent STORE executed
        assert not result.halted
        assert tpp.read_hop_word(0) == 11             # observed value written back

    def test_failed_compare_halts_subsequent_instructions(self):
        memory = DictMemory({0x1010: 99, 0x1011: 0})
        tpp = self._cstore_tpp(old=10, new=11)
        result = TCPU().execute(tpp, memory, PacketContext())
        assert memory.values[0x1010] == 99            # unchanged
        assert memory.values[0x1011] == 0             # STORE never ran
        assert result.halted
        assert result.statuses[1] is InstructionStatus.SKIPPED_HALTED
        assert tpp.read_hop_word(0) == 99             # end-host can see the failure

    def test_missing_address_fails_condition(self):
        memory = DictMemory({})
        tpp = self._cstore_tpp(old=0, new=1)
        result = TCPU().execute(tpp, memory, PacketContext())
        assert result.halted


class TestCExec:
    def _cexec_tpp(self, mask, value):
        return make_tpp([Instruction(Opcode.CEXEC, 0x0000, packet_offset=0),
                         Instruction(Opcode.LOAD, 0x0004, packet_offset=2)],
                        num_hops=1, mode=AddressingMode.HOP, values_per_hop=3,
                        initial_values=[mask, value, 0])

    def test_matching_predicate_lets_execution_continue(self):
        memory = DictMemory({0x0000: 0x0042, 0x0004: 1234})
        tpp = self._cexec_tpp(mask=0xFFFF, value=0x0042)
        result = TCPU().execute(tpp, memory, PacketContext())
        assert not result.halted
        assert tpp.read_hop_word(2) == 1234

    def test_non_matching_predicate_halts(self):
        memory = DictMemory({0x0000: 0x0042, 0x0004: 1234})
        tpp = self._cexec_tpp(mask=0xFFFF, value=0x0041)
        result = TCPU().execute(tpp, memory, PacketContext())
        assert result.halted
        assert tpp.read_hop_word(2) == 0

    def test_mask_is_applied(self):
        memory = DictMemory({0x0000: 0x1242, 0x0004: 1})
        tpp = self._cexec_tpp(mask=0x00FF, value=0x0042)
        result = TCPU().execute(tpp, memory, PacketContext())
        assert not result.halted


class TestPacketFullStatus:
    """§3.3 graceful failure: 'packet ran out of room' is distinct from
    'switch lacks the address'."""

    def test_push_onto_full_stack_reports_packet_full(self):
        from repro.core import addressing
        address = addressing.resolve("[Switch:SwitchID]")
        tpp = make_tpp([Instruction(Opcode.PUSH, address)], num_hops=1)
        tpp.stack_pointer = len(tpp.memory)     # no room left
        result = TCPU().execute(tpp, DictMemory({address: 7}), PacketContext())
        assert result.statuses == [InstructionStatus.SKIPPED_PACKET_FULL]
        assert result.packet_full
        assert not result.halted                # still forwarded gracefully

    def test_push_missing_address_still_reports_no_memory(self):
        tpp, result = run("PUSH [Switch:SwitchID]", DictMemory({}))
        assert result.statuses == [InstructionStatus.SKIPPED_NO_MEMORY]
        assert not result.packet_full

    def test_load_past_per_hop_memory_reports_packet_full(self):
        memory = DictMemory({0x0000: 9})
        instructions = [Instruction(Opcode.LOAD, 0x0000, packet_offset=0)]
        tpp = make_tpp(instructions, num_hops=2, mode=AddressingMode.HOP)
        tpp.hop_number = 5                       # past the 2 preallocated hops
        result = TCPU().execute(tpp, memory, PacketContext())
        assert result.statuses == [InstructionStatus.SKIPPED_PACKET_FULL]

    def test_store_past_per_hop_memory_reports_packet_full(self):
        memory = DictMemory({0x1010: 0})
        tpp = make_tpp([Instruction(Opcode.STORE, 0x1010, packet_offset=0)],
                       num_hops=1, mode=AddressingMode.HOP, initial_values=[5])
        tpp.hop_number = 3
        result = TCPU().execute(tpp, memory, PacketContext())
        assert result.statuses == [InstructionStatus.SKIPPED_PACKET_FULL]
        assert memory.values[0x1010] == 0        # nothing written


class TestWriteDisabledConditionals:
    """§3.3.3: even a suppressed CSTORE must leave the observed value in the
    packet; CEXEC has no store half and keeps gating."""

    def _cstore_tpp(self, old, new):
        return make_tpp([Instruction(Opcode.CSTORE, 0x1010, packet_offset=0),
                         Instruction(Opcode.STORE, 0x1011, packet_offset=2)],
                        num_hops=1, mode=AddressingMode.HOP, values_per_hop=3,
                        initial_values=[old, new, 777])

    def test_cstore_suppressed_but_observed_value_written_back(self):
        memory = DictMemory({0x1010: 10, 0x1011: 0})
        tpp = self._cstore_tpp(old=10, new=11)
        result = TCPU(write_enabled=False).execute(tpp, memory, PacketContext())
        assert result.statuses[0] is InstructionStatus.SKIPPED_WRITE_DISABLED
        assert memory.values[0x1010] == 10       # swap suppressed
        assert tpp.read_hop_word(0) == 10        # observed value written back
        assert not result.wrote_switch_memory

    def test_cstore_mismatch_with_writes_disabled_still_halts(self):
        memory = DictMemory({0x1010: 99, 0x1011: 0})
        tpp = self._cstore_tpp(old=10, new=11)
        result = TCPU(write_enabled=False).execute(tpp, memory, PacketContext())
        assert result.halted
        assert tpp.read_hop_word(0) == 99        # observed value written back
        assert result.statuses[1] is InstructionStatus.SKIPPED_HALTED

    def test_cexec_still_gates_when_writes_disabled(self):
        cexec = [Instruction(Opcode.CEXEC, 0x0000, packet_offset=0),
                 Instruction(Opcode.LOAD, 0x0004, packet_offset=2)]
        # Matching predicate: execution continues to the LOAD.
        memory = DictMemory({0x0000: 0x42, 0x0004: 1234})
        tpp = make_tpp(cexec, num_hops=1, mode=AddressingMode.HOP,
                       values_per_hop=3, initial_values=[0xFFFF, 0x42, 0])
        result = TCPU(write_enabled=False).execute(tpp, memory, PacketContext())
        assert not result.halted
        assert tpp.read_hop_word(2) == 1234
        # Non-matching predicate: halts exactly as with writes enabled.
        tpp2 = make_tpp(cexec, num_hops=1, mode=AddressingMode.HOP,
                        values_per_hop=3, initial_values=[0xFFFF, 0x41, 0])
        result2 = TCPU(write_enabled=False).execute(tpp2, memory, PacketContext())
        assert result2.halted


class MetadataMemory:
    """MemoryInterface over PacketMetadata only (for word-size tests)."""

    def read(self, address, context):
        from repro.core import addressing
        decoded = addressing.decode(address)
        if decoded.region == "packet_metadata":
            return context.metadata_word(decoded.field_offset)
        return None

    def write(self, address, value, context):
        return False


class TestMetadataWordMask:
    def test_timestamp_masked_to_tpp_word_size(self):
        from repro.core import addressing
        address = addressing.resolve("[PacketMetadata:ArrivalTimestamp]")
        context = PacketContext(arrival_time=1.0)        # 1e6 us = 0xF4240
        for word_bytes, expected in ((2, 0xF4240 & 0xFFFF), (4, 0xF4240)):
            tpp = make_tpp([Instruction(Opcode.PUSH, address)],
                           num_hops=1, word_bytes=word_bytes)
            TCPU().execute(tpp, MetadataMemory(), context)
            assert tpp.pushed_words() == [expected]

    def test_load_masks_to_word_size_too(self):
        from repro.core import addressing
        address = addressing.resolve("[PacketMetadata:ArrivalTimestamp]")
        context = PacketContext(arrival_time=1.0)
        tpp = make_tpp([Instruction(Opcode.LOAD, address, packet_offset=0)],
                       num_hops=1, mode=AddressingMode.HOP, word_bytes=2)
        TCPU().execute(tpp, MetadataMemory(), context)
        assert tpp.read_hop_word(0) == 0xF4240 & 0xFFFF


class TestExecuteProgramFastPath:
    def test_results_identical_to_execute(self):
        from repro.core import addressing
        a = addressing.resolve("[Switch:SwitchID]")
        b = addressing.resolve("[Switch:VersionNumber]")
        source = "PUSH [Switch:SwitchID]\nPUSH [Switch:VersionNumber]"
        slow_tpp = compile_tpp(source).tpp
        fast_tpp = compile_tpp(source).tpp
        tcpu = TCPU()
        slow = tcpu.execute(slow_tpp, DictMemory({a: 5, b: 9}), PacketContext())
        fast = tcpu.execute_program(fast_tpp, DictMemory({a: 5, b: 9}), PacketContext())
        assert slow.statuses == fast.statuses
        assert slow_tpp.pushed_words() == fast_tpp.pushed_words()

    def test_clones_share_one_cached_plan(self):
        from repro.core import addressing
        a = addressing.resolve("[Switch:SwitchID]")
        tcpu = TCPU()
        template = compile_tpp("PUSH [Switch:SwitchID]").tpp
        for _ in range(5):
            tcpu.execute_program(template.clone(), DictMemory({a: 1}), PacketContext())
        assert len(tcpu._plan_cache) == 1
        assert tcpu.tpps_executed == 5


class TestPacketContext:
    def test_metadata_words(self):
        context = PacketContext(input_port=2, output_port=5, output_queue=1,
                                matched_entry_id=77, matched_entry_version=3,
                                matched_stage=1, hop_number=4, path_id=9,
                                packet_length=1500, arrival_time=1.5)
        assert context.metadata_word(0) == 2
        assert context.metadata_word(1) == 5
        assert context.metadata_word(3) == 77
        assert context.metadata_word(7) == 9
        assert context.metadata_word(8) == 1500
        assert context.metadata_word(42) is None


class TestAccounting:
    def test_executed_counts(self):
        from repro.core import addressing
        address = addressing.resolve("[Switch:SwitchID]")
        tcpu = TCPU()
        tpp = compile_tpp("PUSH [Switch:SwitchID]\nPUSH [Switch:VersionNumber]").tpp
        tcpu.execute(tpp, DictMemory({address: 1}), PacketContext())
        assert tcpu.tpps_executed == 1
        assert tcpu.instructions_executed == 1   # the second PUSH found no memory
