"""Tests for the sharded collection plane (repro.collect, §4.5).

Covers the mergeable-summary monoids, shard batching/epoch/backpressure
behaviour, load-shedding policies and their accounting identity, the
delta-channel wire format (gap detection, resync, bytes-on-wire
regression), the aggregation tree, virtual-IP routing and the
order-independent merge, the Scenario integration, the end-to-end
truncation accounting chain, and the differential guarantees: a
single-shard inline plane is byte-identical to the legacy in-memory
collector on every app scenario, and merged views are byte-identical
across {cumulative, delta} x {flat, tree} configurations.
"""

import json
import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.collect import (CollectPlane, CollectorShard, CounterSummary,
                           DeltaChannel, DeltaDecoder, HistogramSummary,
                           SHED_POLICIES, SeriesSummary, ShedSpec, Submission,
                           SummaryBundle, SummaryDelta, TopKSummary, TreeSpec,
                           build_tree, merge_summaries, shard_index,
                           summary_jsonable)
from repro.endhost import Collector, PacketFilter
from repro.net import mbps
from repro.session import Scenario

settings.register_profile("quick", max_examples=15)
settings.register_profile("default", max_examples=60)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "default"))


def counter(**counts):
    return CounterSummary(dict(counts))


class TestSummaryMonoids:
    def test_counter_merge_adds(self):
        a = counter(x=2, y=1)
        a.merge(counter(x=3, z=5))
        assert a.counts == {"x": 5, "y": 1, "z": 5}
        assert a["x"] == 5 and a.get("missing", 7) == 7 and "z" in a

    def test_histogram_buckets_and_merge(self):
        h = HistogramSummary((0, 2, 4))
        for value in (0, 1, 2, 3, 4, 5):
            h.observe(value)
        assert h.bins == [1, 2, 2, 1]          # <=0, (0,2], (2,4], >4
        other = HistogramSummary((0, 2, 4))
        other.observe(10, n=3)
        h.merge(other)
        assert h.bins == [1, 2, 2, 4] and h.count == 9
        with pytest.raises(ValueError):
            h.merge(HistogramSummary((0, 1)))

    def test_topk_is_exact_underneath(self):
        t = TopKSummary(k=2)
        for key, n in (("a", 5), ("b", 3), ("c", 9), ("d", 1)):
            t.observe(key, n)
        assert t.top() == [("c", 9), ("a", 5)]
        assert t.top(4) == [("c", 9), ("a", 5), ("b", 3), ("d", 1)]
        t.merge(TopKSummary(k=2, counts={"d": 100}))
        assert t.top(1) == [("d", 101)]        # merge never lost the tail

    def test_topk_tie_break_is_deterministic(self):
        t = TopKSummary(k=3, counts={"b": 2, "a": 2, "c": 2})
        assert t.top() == [("a", 2), ("b", 2), ("c", 2)]

    def test_series_merge_is_canonical(self):
        a = SeriesSummary([(0.2, "q", 1), (0.1, "q", 2)])
        b = SeriesSummary([(0.15, "r", 3)])
        a.merge(b)
        assert a.samples == [(0.1, "q", 2), (0.15, "r", 3), (0.2, "q", 1)]
        assert a.series("q") == [(0.1, 2), (0.2, 1)]
        assert a.keys() == ["q", "r"]

    def test_bundle_merges_keywise_and_clones_missing(self):
        a = SummaryBundle({"c": counter(n=1)})
        b = SummaryBundle({"c": counter(n=2), "h": HistogramSummary((1,))})
        a.merge(b)
        assert a["c"].counts == {"n": 3}
        assert "h" in a
        b["h"].observe(0)                       # mutating b must not leak into a
        assert a["h"].count == 0

    @pytest.mark.parametrize("make", [
        lambda rng: counter(**{f"k{rng.randrange(4)}": rng.randrange(10)}),
        lambda rng: TopKSummary(k=3, counts={f"k{rng.randrange(6)}": rng.randrange(9) + 1}),
        lambda rng: SeriesSummary([(rng.random(), f"q{rng.randrange(3)}", rng.randrange(5))]),
    ])
    def test_merge_is_commutative_and_associative(self, make):
        rng = random.Random(7)
        for _ in range(20):
            a, b, c = make(rng), make(rng), make(rng)
            assert merge_summaries(a, b) == merge_summaries(b, a)
            assert merge_summaries(merge_summaries(a, b), c) == \
                merge_summaries(a, merge_summaries(b, c))

    def test_merge_summaries_leaves_inputs_alone(self):
        a, b = counter(x=1), counter(x=2)
        merged = merge_summaries(a, b)
        assert merged.counts == {"x": 3}
        assert a.counts == {"x": 1} and b.counts == {"x": 2}

    def test_jsonable_views_are_canonical(self):
        bundle = SummaryBundle({"z": counter(b=1, a=2), "a": TopKSummary(k=1)})
        rendered = summary_jsonable(bundle)
        assert list(rendered["parts"]) == ["a", "z"]
        assert list(rendered["parts"]["z"]["counts"]) == ["a", "b"]


#: One fixed histogram geometry so every generated histogram is mergeable.
_HIST_EDGES = (0, 4, 16, 64)

_keys = st.sampled_from(["a", "b", "c", "d", "e"])
_counters = st.dictionaries(_keys, st.integers(0, 1_000), max_size=5) \
    .map(CounterSummary)
_histograms = st.lists(st.integers(0, 128), max_size=12).map(
    lambda values: _observe_all(HistogramSummary(_HIST_EDGES), values))
_topks = st.dictionaries(_keys, st.integers(1, 500), max_size=5) \
    .map(lambda counts: TopKSummary(k=3, counts=dict(counts)))
_series = st.lists(st.tuples(st.integers(0, 50), _keys, st.integers(0, 99)),
                   max_size=10) \
    .map(lambda rows: SeriesSummary([(t / 10.0, key, v) for t, key, v in rows]))
_summaries = st.one_of(_counters, _histograms, _topks, _series)

#: Bundles type their parts by name (as real apps do: one part key, one
#: summary kind), so cross-bundle merges always pair like with like.
_bundles = st.fixed_dictionaries(
    {}, optional={"counters": _counters, "occupancy": _histograms,
                  "busiest": _topks, "series": _series}).map(SummaryBundle)


def _observe_all(histogram, values):
    for value in values:
        histogram.observe(value)
    return histogram


def _view(summary):
    return json.dumps(summary_jsonable(summary), sort_keys=True)


class TestMergeCommutativityProperties:
    """Hypothesis: the monoid laws hold for *arbitrary* summaries.

    The example-based monoid tests above pin specific behaviours; these
    properties are what the sharded collect plane and the sweep layer's
    order-invariant artifacts actually rely on — ``merge`` must commute,
    associate, and be partition-invariant for every value the generators
    can produce, integer-exact (canonical views compare byte-equal).
    """

    @given(a=_summaries, b=_summaries)
    def test_merge_commutes(self, a, b):
        if type(a) is not type(b):
            return                              # only like merges with like
        assert _view(merge_summaries(a, b)) == _view(merge_summaries(b, a))

    @given(a=_summaries, b=_summaries, c=_summaries)
    def test_merge_associates(self, a, b, c):
        if not (type(a) is type(b) is type(c)):
            return
        left = merge_summaries(merge_summaries(a, b), c)
        right = merge_summaries(a, merge_summaries(b, c))
        assert _view(left) == _view(right)

    @given(a=_summaries)
    def test_empty_is_identity(self, a):
        if isinstance(a, HistogramSummary):
            empty = HistogramSummary(_HIST_EDGES)   # same bucket geometry
        elif isinstance(a, TopKSummary):
            empty = TopKSummary(k=a.k)              # same k
        else:
            empty = type(a)()
        assert _view(merge_summaries(a, empty)) == _view(a)
        assert _view(merge_summaries(empty, a)) == _view(a)

    @given(bundles=st.lists(_bundles, min_size=1, max_size=8),
           shards=st.integers(1, 4), rotate=st.integers(0, 7))
    def test_sharded_fold_matches_serial_fold(self, bundles, shards, rotate):
        """Partitioning across shards and re-ordering never changes the fold."""
        serial = SummaryBundle()
        for bundle in bundles:
            serial.merge(bundle)

        rotated = bundles[rotate % len(bundles):] + bundles[:rotate % len(bundles)]
        per_shard = [SummaryBundle() for _ in range(shards)]
        for index, bundle in enumerate(rotated):
            per_shard[index % shards].merge(bundle)
        sharded = SummaryBundle()
        for shard in per_shard:
            sharded.merge(shard)

        assert _view(sharded) == _view(serial)


def submission(seq, host="h0", key="", app="app", time=0.0, summary=None):
    return Submission(time=time, seq=seq, app=app, host=host, key=key,
                      summary=summary if summary is not None else counter(n=1))


class TestCollectorShard:
    def test_batch_fill_triggers_a_flush(self):
        shard = CollectorShard(0, batch=3)
        for seq in range(5):
            shard.ingest(submission(seq, host=f"h{seq}"))
        assert shard.batch_flushes == 1
        assert len(shard.pending) == 2          # the partial next batch
        assert len(shard.state) == 3

    def test_capacity_drops_are_accounted(self):
        shard = CollectorShard(0, batch=100, capacity=2)
        accepted = [shard.ingest(submission(seq, host=f"h{seq}")) for seq in range(5)]
        assert accepted == [True, True, False, False, False]
        assert shard.dropped == 3 and shard.received == 2

    def test_last_writer_wins_per_source(self):
        shard = CollectorShard(0, batch=100)
        shard.ingest(submission(0, time=1.0, summary=counter(n=5)))
        shard.ingest(submission(1, time=2.0, summary=counter(n=9)))
        shard.ingest(submission(2, host="h1", time=1.5, summary=counter(n=2)))
        shard.flush()
        view = shard.merged_view()
        # h0's newest snapshot (n=9) replaces its older one; h1 merges in.
        assert view[("app", "")] == counter(n=11)
        assert shard.stale_replaced == 1

    def test_late_stale_snapshot_does_not_regress(self):
        shard = CollectorShard(0, batch=100)
        shard.ingest(submission(1, time=2.0, summary=counter(n=9)))
        shard.flush()
        shard.ingest(submission(0, time=1.0, summary=counter(n=5)))
        shard.flush()
        assert shard.merged_view()[("app", "")] == counter(n=9)

    def test_merged_view_copies_state(self):
        shard = CollectorShard(0, batch=100)
        shard.ingest(submission(0, summary=counter(n=1)))
        shard.flush()
        view = shard.merged_view()
        view[("app", "")].add("n", 100)
        assert shard.merged_view()[("app", "")] == counter(n=1)


class TestVirtualCollector:
    def test_routing_is_stable_and_total(self):
        for count in (1, 2, 4, 8):
            for host in ("h0", "h1", "h2"):
                index = shard_index("app", host, "key", count)
                assert 0 <= index < count
                assert index == shard_index("app", host, "key", count)

    def test_front_door_matches_legacy_collector_surface(self):
        plane = CollectPlane(1)
        door = plane.front_door("app", name="c")
        legacy = Collector("c")
        for target in (door, legacy):
            target.submit("h1", counter(n=1), time=0.25)
            target.submit("h0", counter(n=2), time=0.50)
        assert door.summaries == legacy.summaries
        assert door.submission_times == legacy.submission_times
        assert len(door) == len(legacy) == 2

    def test_duplicate_front_door_rejected(self):
        plane = CollectPlane(1)
        plane.front_door("app")
        with pytest.raises(ValueError):
            plane.front_door("app")

    def test_downstream_sees_every_submission(self):
        sink = Collector("sink")
        plane = CollectPlane(2)
        door = plane.front_door("app", downstream=sink)
        door.submit("h0", counter(n=1), time=0.5)
        assert sink.summaries == [("h0", counter(n=1))]
        assert sink.submission_times == [0.5]

    @staticmethod
    def _workload(rng):
        """A deterministic batch of keyed bundle submissions."""
        out = []
        for host in (f"h{i}" for i in range(6)):
            bundle = SummaryBundle({
                "counters": counter(tpps=rng.randrange(50), tpps_truncated=rng.randrange(3)),
                "top": TopKSummary(k=4, counts={f"q{rng.randrange(5)}": rng.randrange(9) + 1}),
            })
            out.append((host, bundle, rng.random()))
        return out

    def test_merge_is_invariant_across_shard_counts_and_orders(self):
        reference = None
        for shards in (1, 2, 4, 8):
            for order_seed in (0, 1):
                plane = CollectPlane(shards, batch=2)
                door = plane.front_door("app")
                work = self._workload(random.Random(42))
                random.Random(order_seed).shuffle(work)
                for host, bundle, when in work:
                    door.submit(host, bundle, time=when)
                merged = {f"{app}/{key}": summary_jsonable(s)
                          for (app, key), s in plane.merge().items()}
                if reference is None:
                    reference = merged
                assert merged == reference, (shards, order_seed)
        assert set(reference) == {"app/counters", "app/top"}

    def test_merged_summary_unkeyed_vs_bundle(self):
        plane = CollectPlane(2)
        door = plane.front_door("plain")
        door.submit("h0", counter(n=1))
        door.submit("h1", counter(n=2))
        assert door.merged_summary() == counter(n=3)

        keyed = plane.front_door("keyed")
        keyed.submit("h0", SummaryBundle({"a": counter(n=1)}))
        view = keyed.merged_summary()
        assert isinstance(view, SummaryBundle) and view["a"] == counter(n=1)

    def test_network_transport_requires_attach(self):
        plane = CollectPlane(1, transport="network")
        door = plane.front_door("app")
        with pytest.raises(RuntimeError):
            door.submit("h0", counter(n=1))


def monitored_scenario(shards=None, seed=3, **collector_kwargs):
    """A dumbbell scenario whose app produces real mergeable summaries."""
    from repro.apps.microburst import MICROBURST_TPP_SOURCE, MicroburstAggregator
    scenario = (Scenario("dumbbell", seed=seed, hosts_per_side=2,
                         link_rate_bps=mbps(10))
                .tpp("monitor", MICROBURST_TPP_SOURCE, num_hops=6,
                     filter=PacketFilter(protocol="udp"),
                     aggregator=MicroburstAggregator)
                .workload("messages", offered_load=0.3, message_bytes=2000))
    if shards is not None:
        scenario.collector(shards=shards, **collector_kwargs)
    return scenario


class TestScenarioIntegration:
    def test_collector_spec_validation_is_eager(self):
        with pytest.raises(ValueError):
            Scenario("dumbbell").collector(shards=0)
        with pytest.raises(ValueError):
            Scenario("dumbbell").collector(transport="carrier-pigeon")
        with pytest.raises(ValueError):
            Scenario("dumbbell").collector(epoch_s=0)
        with pytest.raises(ValueError):
            Scenario("dumbbell").collector(batch=0)
        with pytest.raises(ValueError):
            Scenario("dumbbell").collector(tree=1)       # fan-in must be >= 2
        with pytest.raises(ValueError):
            Scenario("dumbbell").collector(shed="coin-flip")
        with pytest.raises(ValueError):
            Scenario("dumbbell").collector(delta_resync_every=-1)

    def test_collector_spec_normalises_streaming_knobs(self):
        spec = (Scenario("dumbbell")
                .collector(shards=4, tree=2, shed="drop-oldest", delta=True)
                .collector_spec)
        assert spec.tree == TreeSpec(fanin=2)
        assert spec.shed == ShedSpec(policy="drop-oldest")
        assert spec.delta is True

    def test_plane_telemetry_lands_on_the_result(self):
        result = monitored_scenario(shards=2).run(duration_s=0.1)
        assert result.collect_shards == 2
        # One finish-time push per host, four bundle parts per summary.
        hosts = len(result.stacks)
        assert result.summaries_submitted == hosts
        assert result.summary_parts_delivered == 4 * hosts
        assert result.summary_parts_dropped == 0
        assert result.summary_flushes >= 1
        assert result.experiment.collect_plane is not None

    def test_merged_summary_requires_a_plane(self):
        result = monitored_scenario().run(duration_s=0.05)
        with pytest.raises(TypeError):
            result.merged_summary("monitor")

    def test_merged_view_matches_unsharded_totals(self):
        plain = monitored_scenario().run(duration_s=0.2)
        for shards in (1, 3):
            sharded = monitored_scenario(shards=shards).run(duration_s=0.2)
            assert sharded.events_executed == plain.events_executed
            merged = sharded.merged_summary("monitor")
            assert merged["counters"]["tpps"] == plain.tpps_received
            assert merged["counters"]["samples"] == \
                sum(len(a.samples) for a in plain.aggregators("monitor").values())
            # The merged series is the canonical interleave of every host's.
            assert len(merged["queue_series"]) == len(plain.merged_samples("monitor"))

    def test_epoch_pushes_stamp_simulation_time(self):
        result = monitored_scenario(shards=2, epoch_s=0.05).run(duration_s=0.2)
        door = result.collectors["monitor"]
        assert len(door) >= 3 * len(result.stacks)      # several epoch rounds
        assert any(t > 0 for t in door.submission_times)
        stats = result.experiment.collect_plane.stats()
        assert stats.epoch_flushes >= 1
        # Per-source snapshots are cumulative: the merged view reflects the
        # final state, not the sum of every epoch's submission.
        merged = result.merged_summary("monitor")
        assert merged["counters"]["tpps"] == result.tpps_received

    def test_network_transport_ships_summary_packets(self):
        result = monitored_scenario(shards=2, transport="network",
                                    epoch_s=0.05).run(duration_s=0.2,
                                                      run_until_idle=True)
        plane = result.experiment.collect_plane
        assert plane.packets_sent > 0
        delivered = sum(shard.received for shard in plane.shards)
        assert delivered > 0
        merged = result.merged_summary("monitor")
        assert merged["counters"]["tpps"] > 0

    def test_backpressure_drops_are_surfaced(self):
        # batch=None defers folding to epoch boundaries — the configuration
        # where the capacity bound actually engages between flushes.
        result = monitored_scenario(shards=1, epoch_s=0.02, batch=None,
                                    capacity=3).run(duration_s=0.2)
        assert result.summary_parts_dropped > 0
        assert result.summary_parts_delivered <= 3 * result.summary_flushes + 3

    def test_empty_flush_ticks_are_not_counted(self):
        shard = CollectorShard(0, batch=None)
        assert shard.flush(kind="epoch") == 0
        assert shard.flushes == 0 and shard.epoch_flushes == 0
        shard.ingest(submission(0))
        assert shard.flush(kind="epoch") == 1
        assert shard.flushes == 1 and shard.epoch_flushes == 1

    def test_retain_false_bounds_the_front_door_log(self):
        result = monitored_scenario(shards=2, epoch_s=0.05,
                                    retain=False).run(duration_s=0.2)
        door = result.collectors["monitor"]
        assert len(door) == 0                   # no snapshot log retained
        assert door.submitted >= 2 * len(result.stacks)
        # The shard tier still has the complete, current view.
        merged = result.merged_summary("monitor")
        assert merged["counters"]["tpps"] == result.tpps_received


class TestTruncationAccounting:
    """Satellite: packet-memory overrun is visible at every layer."""

    @pytest.mark.parametrize("compile_traces", [False, True])
    def test_switch_shim_and_collector_agree(self, compile_traces):
        # One hop of room, two-switch cross-side paths: the second switch
        # must skip with SKIPPED_PACKET_FULL.
        result = (Scenario("dumbbell", seed=5, hosts_per_side=2,
                           link_rate_bps=mbps(10), compile_traces=compile_traces)
                  .tpp("trunc", "PUSH [Switch:SwitchID]", num_hops=1,
                       filter=PacketFilter(protocol="udp"))
                  .collector(shards=2)
                  .workload("messages", offered_load=0.3, message_bytes=2000)
                  .run(duration_s=0.2))

        # Switch layer: SKIPPED_PACKET_FULL hops were counted where they
        # happened (any switch that was a second hop).
        full_hops = {name: switch.tpps_packet_full
                     for name, switch in result.network.switches.items()}
        assert sum(full_hops.values()) > 0
        assert sum(full_hops.values()) >= result.tpps_truncated

        # Shim/aggregator layer: TPP.out_of_room rolled up per host.
        assert result.tpps_truncated > 0
        assert result.tpps_truncated == sum(
            a.tpps_truncated for a in result.aggregators("trunc").values())

        # Collector tier: per shard, and after the global merge.
        plane = result.experiment.collect_plane
        per_shard_total = 0
        for shard in plane.shards:
            view = shard.merged_view()
            per_shard_total += sum(summary["tpps_truncated"]
                                   for summary in view.values())
        assert per_shard_total == result.tpps_truncated
        merged = result.merged_summary("trunc")
        assert merged["tpps_truncated"] == result.tpps_truncated


class TestSingleShardDifferential:
    """A shards=1 inline plane is byte-identical to the legacy Collector."""

    @staticmethod
    def _with_plane(scenario):
        return scenario.collector(shards=1, transport="inline")

    def test_microburst(self):
        from repro.apps.microburst import microburst_scenario
        kwargs = dict(link_rate_bps=mbps(10), offered_load=0.4, seed=3)
        legacy = microburst_scenario(**kwargs).run(duration_s=0.25)
        sharded = self._with_plane(microburst_scenario(**kwargs)).run(duration_s=0.25)
        assert legacy == sharded                 # full dataclass equality

    def test_netsight(self):
        from repro.apps.netsight import netsight_scenario
        kwargs = dict(link_rate_bps=mbps(10), seed=2)
        legacy = netsight_scenario(**kwargs).run(duration_s=0.2)
        sharded = self._with_plane(netsight_scenario(**kwargs)).run(duration_s=0.2)

        def fingerprint(history):
            # flow_id and matched_entry_id are allocated from process-global
            # counters, so they shift between *any* two runs in one process;
            # everything semantically tied to the run must match exactly.
            return (history.src, history.dst, history.protocol, history.sport,
                    history.dport, history.delivered_at,
                    [(hop.switch_id, hop.input_port) for hop in history.hops])

        assert [fingerprint(h) for h in legacy.store.histories] == \
            [fingerprint(h) for h in sharded.store.histories]
        assert legacy.packets_instrumented == sharded.packets_instrumented
        assert legacy.histories_collected == sharded.histories_collected

    def test_sketches(self):
        from repro.apps.sketches import sketch_scenario
        kwargs = dict(num_leaves=2, num_spines=1, hosts_per_leaf=2, seed=2)
        legacy = sketch_scenario(**kwargs).run(duration_s=0.4)
        sharded = self._with_plane(sketch_scenario(**kwargs)).run(duration_s=0.4)
        assert legacy.estimates == sharded.estimates
        assert legacy.host_memory_bytes == sharded.host_memory_bytes
        assert legacy.packets_instrumented == sharded.packets_instrumented
        # The user-supplied service saw the identical submissions.
        assert len(legacy.service.summaries) == len(sharded.service.summaries)
        assert legacy.service.submission_times == sharded.service.submission_times
        assert {key: bytes(sketch.bitmap) for key, sketch in legacy.service.per_link.items()} \
            == {key: bytes(sketch.bitmap) for key, sketch in sharded.service.per_link.items()}

    def test_rcp(self):
        from repro.apps.rcp import ALPHA_MAXMIN, rcp_scenario
        kwargs = dict(alpha=ALPHA_MAXMIN, link_rate_bps=mbps(10))
        legacy = rcp_scenario(**kwargs).run(duration_s=1.0)
        sharded = self._with_plane(rcp_scenario(**kwargs)).run(duration_s=1.0)
        assert legacy.mean_throughput_bps == sharded.mean_throughput_bps
        assert legacy.control_overhead_fraction == sharded.control_overhead_fraction
        for flow in legacy.throughput_series:
            assert legacy.throughput_series[flow].values == \
                sharded.throughput_series[flow].values

    def test_conga(self):
        from repro.apps.conga import conga_scenario
        legacy = conga_scenario("conga", link_rate_bps=mbps(10)).run(duration_s=1.0)
        sharded = self._with_plane(conga_scenario("conga", link_rate_bps=mbps(10))) \
            .run(duration_s=1.0)
        assert legacy == sharded                 # full dataclass equality

    def test_netverify(self):
        from repro.apps.netverify import verification_scenario
        legacy = verification_scenario().run(duration_s=0.35)
        sharded = self._with_plane(verification_scenario()).run(duration_s=0.35)
        assert legacy.pre_failure.matches == sharded.pre_failure.matches
        assert legacy.convergence.convergence_seconds == \
            sharded.convergence.convergence_seconds
        assert legacy.probes_sent == sharded.probes_sent
        assert [o.time for o in legacy.observations] == \
            [o.time for o in sharded.observations]


class TestShedPolicies:
    """Backpressure policies: example behaviour plus per-policy accounting."""

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ShedSpec(policy="coin-flip")
        with pytest.raises(ValueError):
            ShedSpec(policy="sample", sample_stride=0)

    def test_drop_newest_is_the_default_tail_drop(self):
        shard = CollectorShard(0, batch=None, capacity=2)
        accepted = [shard.ingest(submission(seq, host=f"h{seq}"))
                    for seq in range(5)]
        assert accepted == [True, True, False, False, False]
        assert shard.drops_by_policy == {"drop-newest": 3}

    def test_drop_oldest_keeps_the_freshest(self):
        shard = CollectorShard(0, batch=None, capacity=2,
                               shed="drop-oldest")
        for seq in range(5):
            assert shard.ingest(submission(seq, host=f"h{seq}"))
        assert [s.seq for s in shard.pending] == [3, 4]
        assert shard.dropped == 3
        assert shard.drops_by_policy == {"drop-oldest": 3}

    def test_sample_admits_by_stride_deterministically(self):
        shard = CollectorShard(0, batch=None, capacity=1,
                               shed=ShedSpec("sample", sample_stride=3))
        admitted = [shard.ingest(submission(seq)) for seq in range(1, 10)]
        # Buffer fills at seq 1; afterwards only seq % 3 == 0 gets in.
        assert admitted == [True, False, True, False, False, True,
                            False, False, True]
        assert shard.pending[-1].seq == 9

    def test_priority_keys_survive_eviction(self):
        shard = CollectorShard(0, batch=None, capacity=2,
                               shed=ShedSpec("priority-keys", priority=("hot",)))
        shard.ingest(submission(0, key="hot"))
        shard.ingest(submission(1, key="cold"))
        shard.ingest(submission(2, key="cold"))     # evicts the first cold
        assert [s.key for s in shard.pending] == ["hot", "cold"]
        # All-priority buffer: cold arrivals bounce, hot arrivals rotate.
        shard.ingest(submission(3, key="hot"))
        assert not shard.ingest(submission(4, key="cold"))
        assert shard.ingest(submission(5, key="hot"))
        assert all(s.key == "hot" for s in shard.pending)
        assert shard.drops_by_policy == {"priority-keys": 4}

    def test_drops_by_policy_mirrors_totals(self):
        # drops_by_policy plays the role Port.drops_by_reason plays on the
        # network layer: the breakdown always sums to the scalar total.
        shard = CollectorShard(0, batch=None, capacity=1, shed="drop-oldest")
        for seq in range(7):
            shard.ingest(submission(seq, host=f"h{seq % 2}"))
        assert sum(shard.drops_by_policy.values()) == shard.dropped == 6
        assert shard.metrics()["dropped"] == 6

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           policy=st.sampled_from(SHED_POLICIES),
           capacity=st.integers(min_value=1, max_value=6))
    def test_accounting_identity_per_shard(self, seed, policy, capacity):
        # submitted == delivered + dropped + pending at every instant, and
        # == delivered + dropped after the final flush, under any arrival
        # sequence and any policy.
        rng = random.Random(seed)
        shard = CollectorShard(0, batch=None, capacity=capacity,
                               shed=ShedSpec(policy, sample_stride=2,
                                             priority=("hot",)))
        for seq in range(rng.randrange(1, 40)):
            shard.ingest(submission(
                seq, host=f"h{rng.randrange(3)}",
                key=rng.choice(("hot", "cold", "warm")),
                time=rng.random()))
            assert shard.submitted == (shard.delivered + shard.dropped
                                       + len(shard.pending))
            if rng.random() < 0.2:
                shard.flush(kind="epoch")
        shard.flush()
        assert shard.submitted == shard.delivered + shard.dropped
        assert sum(shard.drops_by_policy.values()) == shard.dropped
        assert shard.delivered <= shard.received <= shard.submitted

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           policy=st.sampled_from(SHED_POLICIES),
           fanin=st.integers(min_value=2, max_value=4))
    def test_accounting_identity_across_plane_and_tree(self, seed, policy,
                                                       fanin):
        # The identity also holds summed across shards, and the tree merge
        # neither loses nor duplicates anything the shards delivered.
        rng = random.Random(seed)
        plane = CollectPlane(4, batch=None, capacity=2, tree=fanin,
                             shed=ShedSpec(policy, priority=("hot",)))
        door = plane.front_door("app")
        for push in range(rng.randrange(1, 15)):
            host = f"h{rng.randrange(4)}"
            door.submit(host, SummaryBundle({
                "hot": counter(n=push + 1),
                "cold": counter(n=1),
            }), time=float(push))
        merged = plane.merge()                      # flushes first
        stats = plane.stats()
        assert stats.parts_routed == (stats.parts_delivered
                                      + stats.parts_dropped)
        assert sum(stats.drops_by_policy.values()) == stats.parts_dropped
        for entry in stats.per_shard:
            assert entry["submitted"] == entry["delivered"] + entry["dropped"]
        # Same arrivals through a flat plane with the same policy: the tree
        # must reconstruct the identical view from whatever survived.
        flat = CollectPlane(4, batch=None, capacity=2,
                            shed=ShedSpec(policy, priority=("hot",)))
        flat_door = flat.front_door("app")
        rng2 = random.Random(seed)
        for push in range(rng2.randrange(1, 15)):
            host = f"h{rng2.randrange(4)}"
            flat_door.submit(host, SummaryBundle({
                "hot": counter(n=push + 1),
                "cold": counter(n=1),
            }), time=float(push))
        assert {k: summary_jsonable(v) for k, v in merged.items()} \
            == {k: summary_jsonable(v) for k, v in flat.merge().items()}


class TestDeltaChannel:
    """Sender/decoder unit behaviour: sequencing, gaps, resync."""

    def test_first_send_is_a_keyframe_then_deltas(self):
        channel = DeltaChannel()
        u1 = channel.encode(counter(n=1))
        u2 = channel.encode(counter(n=2))
        assert (u1.kind, u2.kind) == ("full", "delta")
        assert (u1.seq, u1.base_seq) == (1, -1)
        assert (u2.seq, u2.base_seq) == (2, 1)
        assert channel.fulls_sent == 1 and channel.deltas_sent == 1

    def test_keyframe_interval_backstop(self):
        channel = DeltaChannel(resync_every=3)
        kinds = [channel.encode(counter(n=i)).kind for i in range(1, 8)]
        assert kinds == ["full", "delta", "full", "delta", "delta",
                         "full", "delta"]

    def test_decoder_replays_stream_exactly(self):
        channel, decoder = DeltaChannel(), DeltaDecoder()
        state = counter()
        for i in range(5):
            state.add("n", i + 1)
            decoded = decoder.decode(("g",), channel.encode(state))
            assert decoded == state
        assert decoder.applied == 4 and decoder.resyncs == 1

    def test_gap_discards_and_requests_resync(self):
        channel, decoder = DeltaChannel(), DeltaDecoder()
        u1 = channel.encode(counter(n=1))
        u2 = channel.encode(counter(n=2))
        u3 = channel.encode(counter(n=3))
        assert decoder.decode(("g",), u1) == counter(n=1)
        # u2 lost in transit: u3's base_seq no longer matches.
        assert decoder.decode(("g",), u3) is None
        assert decoder.gaps == 1
        assert decoder.take_resyncs() == [("g",)]
        # The plane flags the channel; the next encode is a keyframe and
        # the stream recovers exactly.
        channel.needs_full = True
        u4 = channel.encode(counter(n=9))
        assert u4.kind == "full"
        assert decoder.decode(("g",), u4) == counter(n=9)
        assert decoder.take_resyncs() == []

    def test_delta_to_unknown_channel_is_a_gap(self):
        channel, decoder = DeltaChannel(), DeltaDecoder()
        channel.encode(counter(n=1))
        orphan = channel.encode(counter(n=2))
        assert decoder.decode(("new",), orphan) is None
        assert decoder.gaps == 1 and decoder.take_resyncs() == [("new",)]

    def test_shard_counts_gap_drops_by_reason(self):
        channel = DeltaChannel()
        channel.encode(counter(n=1))
        orphan = channel.encode(counter(n=2))   # delta with no base delivered
        shard = CollectorShard(0, batch=None)
        shard.ingest(submission(0, summary=orphan))
        assert shard.flush() == 0
        assert shard.dropped == 1
        assert shard.drops_by_policy == {"delta-gap": 1}
        assert shard.take_resync_requests() == [("app", "h0", "")]
        # submitted == delivered + dropped still holds with gap drops.
        assert shard.submitted == shard.delivered + shard.dropped


class TestAggregationTree:
    def test_fanin_validation(self):
        with pytest.raises(ValueError):
            TreeSpec(fanin=1)
        with pytest.raises(ValueError):
            build_tree([], 2)

    def test_tree_shape_and_levels(self):
        shards = [CollectorShard(i, batch=None) for i in range(7)]
        root, nodes = build_tree(shards, fanin=3)
        assert root.level == 2
        assert [n.level for n in nodes] == [1, 1, 1, 2]
        assert sum(len(n.children) for n in nodes if n.level == 1) == 7

    def test_single_leaf_still_gets_a_root(self):
        shard = CollectorShard(0, batch=None)
        root, nodes = build_tree([shard], fanin=4)
        assert nodes == [root] and root.children == [shard]

    def test_tree_merge_matches_flat_merge(self):
        for fanin in (2, 3, 5):
            flat = CollectPlane(6)
            tree = CollectPlane(6, tree=fanin)
            for plane in (flat, tree):
                door = plane.front_door("app")
                rng = random.Random(7)
                for push in range(20):
                    door.submit(f"h{rng.randrange(5)}",
                                SummaryBundle({
                                    "c": counter(n=rng.randrange(10)),
                                    "t": TopKSummary(3, {f"k{rng.randrange(4)}": 1}),
                                }), time=float(push))
            assert {k: summary_jsonable(v) for k, v in flat.merge().items()} \
                == {k: summary_jsonable(v) for k, v in tree.merge().items()}
            stats = tree.stats()
            assert stats.tree_levels >= 1
            assert stats.tree_node_merges > 0


class TestDeltaBytesRegression:
    """Delta mode must send strictly fewer bytes on steady-state workloads."""

    def test_inline_plane_bytes_and_identity(self):
        # Standalone plane: cumulative snapshots that change little per
        # epoch.  Delta mode must (a) reconstruct the identical view and
        # (b) route strictly fewer bytes.
        def drive(plane):
            door = plane.front_door("app")
            states = {f"h{i}": counter(**{f"k{j}": j + 1 for j in range(20)})
                      for i in range(3)}
            for epoch in range(10):
                for host, state in states.items():
                    if epoch < 2:
                        state.add("hot", 1)     # burst, then steady state
                    door.submit(host, state, time=float(epoch))
            return json.dumps({f"{a}|{k}": summary_jsonable(s)
                               for (a, k), s in plane.merge().items()},
                              sort_keys=True)

        cumulative, delta = CollectPlane(2), CollectPlane(2, delta=True)
        assert drive(cumulative) == drive(delta)
        assert delta.bytes_routed < cumulative.bytes_routed
        stats = delta.stats()
        assert stats.delta_applied > 0 and stats.delta_gaps == 0

    def test_network_transport_bytes_on_wire(self):
        # The satellite regression: over the simulated fabric, the delta
        # encoding strictly undercuts cumulative re-sends, and the result
        # surfaces the byte count and replay totals.
        kwargs = dict(shards=2, transport="network", epoch_s=0.05)
        cumulative = monitored_scenario(**kwargs) \
            .run(duration_s=0.3, run_until_idle=True)
        delta = monitored_scenario(**kwargs, delta=True) \
            .run(duration_s=0.3, run_until_idle=True)
        assert cumulative.summary_bytes_on_wire > 0
        assert delta.summary_bytes_on_wire < cumulative.summary_bytes_on_wire
        assert delta.summary_delta_applied > 0
        assert delta.summary_delta_gaps == 0
        # The reconstructed view is a delivered prefix of the cumulative
        # truth (the finish-time push is never delivered over the network
        # transport — packets submitted after the clock stops are lost, in
        # either encoding).
        merged_tpps = delta.merged_summary("monitor")["counters"]["tpps"]
        assert 0 < merged_tpps <= delta.tpps_received


class TestDeltaTreeDifferential:
    """Six-app acceptance: merged views byte-identical across
    {cumulative, delta} x {flat, 2-level tree}, shedding off."""

    CONFIGS = (
        ("cumulative-flat", {}),
        ("delta-flat", dict(delta=True)),
        ("cumulative-tree", dict(tree=2)),
        ("delta-tree", dict(tree=2, delta=True, delta_resync_every=4)),
    )

    @classmethod
    def _canonical_run(cls, build, duration, **collector_kwargs):
        scenario = build()
        scenario.collector(shards=4, epoch_s=0.05, **collector_kwargs)
        scenario._result_mapper = None          # raw ExperimentResult
        result = scenario.run(duration_s=duration)
        plane = result.experiment.collect_plane
        view = json.dumps({f"{app}|{key}": summary_jsonable(s)
                           for (app, key), s in plane.merge().items()},
                          sort_keys=True, default=repr)
        return result.events_executed, view

    def _differential(self, build, duration):
        reference = None
        for label, collector_kwargs in self.CONFIGS:
            outcome = self._canonical_run(build, duration, **collector_kwargs)
            if reference is None:
                reference = outcome
            assert outcome == reference, label

    def test_microburst(self):
        from repro.apps.microburst import microburst_scenario
        self._differential(
            lambda: microburst_scenario(link_rate_bps=mbps(10),
                                        offered_load=0.4, seed=3), 0.25)

    def test_netsight(self):
        from repro.apps.netsight import netsight_scenario
        self._differential(
            lambda: netsight_scenario(link_rate_bps=mbps(10), seed=2), 0.2)

    def test_sketches(self):
        from repro.apps.sketches import sketch_scenario
        self._differential(
            lambda: sketch_scenario(num_leaves=2, num_spines=1,
                                    hosts_per_leaf=2, seed=2), 0.3)

    def test_rcp(self):
        from repro.apps.rcp import ALPHA_MAXMIN, rcp_scenario
        self._differential(
            lambda: rcp_scenario(alpha=ALPHA_MAXMIN,
                                 link_rate_bps=mbps(10)), 0.5)

    def test_conga(self):
        from repro.apps.conga import conga_scenario
        self._differential(
            lambda: conga_scenario("conga", link_rate_bps=mbps(10)), 0.5)

    def test_netverify(self):
        from repro.apps.netverify import verification_scenario
        self._differential(lambda: verification_scenario(), 0.35)
