"""Tests for the statistics helpers and experiment summaries."""

import pytest

from repro.stats import ComparisonRow, Ewma, ExperimentSummary, TimeSeries, cdf, fractiles
from repro.stats.series import fraction_at_or_below


class TestTimeSeries:
    def test_append_and_basic_stats(self):
        series = TimeSeries()
        for t, v in ((0.0, 1.0), (1.0, 3.0), (2.0, 2.0)):
            series.add(t, v)
        assert len(series) == 3
        assert series.mean() == pytest.approx(2.0)
        assert series.maximum() == 3.0

    def test_out_of_order_rejected(self):
        series = TimeSeries()
        series.add(1.0, 5.0)
        with pytest.raises(ValueError):
            series.add(0.5, 1.0)

    def test_between(self):
        series = TimeSeries()
        for t in range(10):
            series.add(float(t), float(t))
        window = series.between(2.0, 5.0)
        assert window.times == [2.0, 3.0, 4.0]

    def test_resample_modes(self):
        series = TimeSeries()
        for t, v in ((0.1, 1), (0.2, 3), (1.1, 10), (1.9, 2)):
            series.add(t, v)
        mean = series.resample(1.0, start=0.0, end=2.0, how="mean")
        assert mean.values == [2.0, 6.0]
        maximum = series.resample(1.0, start=0.0, end=2.0, how="max")
        assert maximum.values == [3.0, 10.0]
        last = series.resample(1.0, start=0.0, end=2.0, how="last")
        assert last.values == [3.0, 2.0]
        with pytest.raises(ValueError):
            series.resample(1.0, how="median")

    def test_empty_series(self):
        series = TimeSeries()
        assert series.mean() == 0.0
        assert series.maximum() == 0.0
        assert len(series.resample(1.0)) == 0


class TestDistributions:
    def test_cdf_empty_and_basic(self):
        assert cdf([]) == []
        points = cdf([3.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)),
                          (3.0, pytest.approx(1.0))]

    def test_fractiles(self):
        samples = list(range(101))
        result = fractiles(samples, (0.0, 0.5, 1.0))
        assert result[0.0] == 0
        assert result[0.5] == 50
        assert result[1.0] == 100
        assert fractiles([], (0.5,)) == {0.5: 0.0}
        with pytest.raises(ValueError):
            fractiles([1.0], (1.5,))

    def test_fraction_at_or_below(self):
        assert fraction_at_or_below([], 1) == 0.0
        assert fraction_at_or_below([0, 0, 5, 10], 0) == 0.5


class TestEwma:
    def test_smoothing(self):
        ewma = Ewma(alpha=0.5)
        assert ewma.update(10) == 10
        assert ewma.update(0) == 5
        assert ewma.update(0) == 2.5

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)


class TestExperimentSummary:
    def test_rows_and_rendering(self):
        summary = ExperimentSummary("E0", "A test experiment")
        summary.add("some metric", 10.0, 9.5, unit="Mb/s", note="close enough")
        summary.add("unmeasured", None, 3.0)
        text = summary.render()
        assert "E0" in text and "some metric" in text and "close enough" in text
        assert "paper=-" in text

    def test_ratio(self):
        row = ComparisonRow("x", paper_value=10.0, measured_value=5.0)
        assert row.ratio() == 0.5
        assert ComparisonRow("x", None, 5.0).ratio() is None
        assert ComparisonRow("x", 0.0, 5.0).ratio() is None
