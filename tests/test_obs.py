"""Tests for the observability plane (repro.obs).

Covers the :class:`Telemetry` span recorder (nesting, intervals,
self-times), the typed metrics registry (counters, pull gauges,
histograms), the zero-overhead-off contract (a disabled telemetry hands
out one shared no-op span), the Perfetto trace-event exporter (validated
against ``tools/check_trace_schema.py``), provenance stamping, and the
two load-bearing invariants end to end:

* **No perturbation** — every app scenario in the repo runs with
  telemetry off, on, and exporting, and all three land on the identical
  simulator event total and identical canonical
  :class:`~repro.session.ResultSummary` JSON.
* **Side channels only** — telemetry snapshots ride on
  ``ExperimentResult.telemetry`` / ``ResultSummary.telemetry`` and the
  sweep manifest, never inside a canonical rendering.
"""

import importlib.util
import json
import re
from pathlib import Path

import pytest

from repro import obs
from repro.net import mbps
from repro.obs import (MetricsRegistry, NULL_TELEMETRY, Telemetry,
                       config_fingerprint, provenance, stamp, trace_events,
                       write_trace)
from repro.obs.perfetto import MAIN_TRACK_TID
from repro.obs.telemetry import _NULL_SPAN
from repro.session import ResultSummary
from repro.sweep import SweepRunner


def _load_trace_checker():
    path = Path(__file__).resolve().parent.parent / "tools" / "check_trace_schema.py"
    spec = importlib.util.spec_from_file_location("check_trace_schema", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_trace_schema = _load_trace_checker()


class FakeClock:
    """A deterministic clock: each read advances by one second."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------
class TestSpans:
    def test_nested_spans_record_parent_links(self):
        telemetry = Telemetry(clock=FakeClock())
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        outer, inner = telemetry.spans
        assert outer.name == "outer" and outer.parent is None
        assert inner.name == "inner" and inner.parent == outer.index
        assert outer.duration > inner.duration > 0

    def test_span_args_and_set(self):
        telemetry = Telemetry(clock=FakeClock())
        with telemetry.span("phase", kind="build") as span:
            span.set(items=3)
        assert telemetry.spans[0].args == {"kind": "build", "items": 3}

    def test_interval_spans_overlap_freely(self):
        telemetry = Telemetry(clock=FakeClock())
        first = telemetry.interval("task", track="a")
        second = telemetry.interval("task", track="b")
        first.finish()
        second.finish()
        assert [span.track for span in telemetry.spans] == ["a", "b"]
        assert all(span.duration > 0 for span in telemetry.spans)

    def test_interval_parent_is_enclosing_span(self):
        telemetry = Telemetry(clock=FakeClock())
        with telemetry.span("outer"):
            handle = telemetry.interval("task")
        handle.finish()
        assert telemetry.spans[-1].parent == telemetry.spans[0].index

    def test_finish_is_idempotent(self):
        telemetry = Telemetry(clock=FakeClock())
        handle = telemetry.interval("task")
        end = handle.finish().end
        assert handle.finish().end == end
        assert len(telemetry.spans) == 1

    def test_elapsed_reads_clock_while_open(self):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock)
        handle = telemetry.interval("task")
        assert handle.elapsed > 0          # open: reads the clock
        first = handle.finish().elapsed
        assert handle.elapsed == first     # closed: frozen

    def test_self_times_subtract_children(self):
        telemetry = Telemetry(clock=FakeClock())
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        self_times = telemetry.self_times()
        outer, inner = telemetry.spans
        assert self_times["inner"] == pytest.approx(inner.duration)
        assert self_times["outer"] == pytest.approx(
            outer.duration - inner.duration)

    def test_span_summary_aggregates_by_name(self):
        telemetry = Telemetry(clock=FakeClock())
        for _ in range(3):
            with telemetry.span("phase"):
                pass
        summary = telemetry.span_summary()
        assert summary["phase"]["count"] == 3
        assert summary["phase"]["total_s"] == pytest.approx(
            sum(span.duration for span in telemetry.spans))


class TestZeroOverheadOff:
    def test_disabled_span_is_one_shared_singleton(self):
        telemetry = Telemetry(enabled=False)
        assert telemetry.span("a") is _NULL_SPAN
        assert telemetry.span("b", key="value") is _NULL_SPAN
        assert telemetry.interval("c", track="t") is _NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_TELEMETRY.span("anything") as span:
            span.set(key="value")
        assert span.finish() is span
        assert span.duration == 0.0 and span.elapsed == 0.0
        assert NULL_TELEMETRY.spans == []

    def test_ambient_default_is_disabled(self):
        assert obs.get_telemetry() is NULL_TELEMETRY
        assert not NULL_TELEMETRY.enabled

    def test_use_installs_and_restores(self):
        telemetry = Telemetry()
        with obs.use(telemetry) as installed:
            assert installed is telemetry
            assert obs.get_telemetry() is telemetry
        assert obs.get_telemetry() is NULL_TELEMETRY


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.read() == 5
        assert registry.counter("hits") is counter     # same instance

    def test_gauge_reads_at_snapshot_time_only(self):
        registry = MetricsRegistry()
        calls = []
        registry.gauge("depth", lambda: calls.append(1) or len(calls))
        assert calls == []                             # registration is free
        assert registry.snapshot()["gauges"]["depth"] == 1
        assert registry.snapshot()["gauges"]["depth"] == 2

    def test_gauge_failure_reports_none(self):
        registry = MetricsRegistry()
        registry.gauge("gone", lambda: 1 / 0)
        assert registry.snapshot()["gauges"]["gone"] is None

    def test_histogram_statistics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("wall")
        for value in (1.0, 2.0, 4.0):
            histogram.observe(value)
        snapshot = registry.snapshot()["histograms"]["wall"]
        assert snapshot["count"] == 3
        assert snapshot["sum"] == pytest.approx(7.0)
        assert snapshot["min"] == 1.0 and snapshot["max"] == 4.0
        assert snapshot["mean"] == pytest.approx(7.0 / 3)
        # 1.0 -> exponent 1, 2.0 -> 2, 4.0 -> 3 (frexp convention).
        assert snapshot["log2_bins"] == {"1": 1, "2": 1, "3": 1}

    def test_cross_type_name_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError, match="different type"):
            registry.gauge("name", lambda: 0)
        with pytest.raises(ValueError, match="different type"):
            registry.histogram("name")

    def test_gauge_reregistration_replaces_reader(self):
        registry = MetricsRegistry()
        registry.gauge("depth", lambda: 1)
        registry.gauge("depth", lambda: 2)             # component rebuilt
        assert registry.snapshot()["gauges"]["depth"] == 2

    def test_snapshot_is_sorted_and_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        json.dumps(snapshot)                           # must not raise


# ---------------------------------------------------------------------------
# Perfetto export
# ---------------------------------------------------------------------------
class TestPerfettoExport:
    def _telemetry(self):
        telemetry = Telemetry(clock=FakeClock())
        with telemetry.span("outer", phase="x"):
            with telemetry.span("inner"):
                pass
        first = telemetry.interval("task", track="task:a")
        second = telemetry.interval("task", track="task:b")
        first.finish()
        second.finish()
        return telemetry

    def test_trace_event_structure(self):
        events = trace_events(self._telemetry())
        assert events[0] == {"name": "process_name", "ph": "M", "pid": 1,
                             "tid": MAIN_TRACK_TID, "args": {"name": "repro"}}
        complete = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in complete] == ["outer", "inner",
                                                 "task", "task"]
        # Stacked spans on the main track; each interval track its own tid.
        assert complete[0]["tid"] == complete[1]["tid"] == MAIN_TRACK_TID
        assert complete[2]["tid"] != complete[3]["tid"] != MAIN_TRACK_TID
        # Timestamps are µs relative to the earliest start.
        assert complete[0]["ts"] == 0.0
        assert all(e["dur"] > 0 for e in complete)
        thread_names = [e for e in events if e["ph"] == "M"
                        and e["name"] == "thread_name"]
        assert {e["args"]["name"] for e in thread_names} == \
            {"task:a", "task:b"}

    def test_exotic_args_fall_back_to_repr(self):
        telemetry = Telemetry(clock=FakeClock())
        with telemetry.span("phase", obj={1, 2}):
            pass
        [event] = [e for e in trace_events(telemetry) if e["ph"] == "X"]
        assert event["args"]["obj"] == repr({1, 2})

    def test_write_trace_validates_against_schema_checker(self, tmp_path):
        path = tmp_path / "trace.json"
        write_trace(self._telemetry(), path)
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert check_trace_schema.validate_trace(loaded) == []
        assert loaded["displayTimeUnit"] == "ms"

    def test_schema_checker_rejects_malformed_traces(self):
        validate = check_trace_schema.validate_trace
        assert validate([]) != []                       # not an object
        assert validate({}) != []                       # no traceEvents
        assert validate({"traceEvents": [{"ph": "B", "name": "x",
                                          "pid": 1, "tid": 0}]}) != []
        assert validate({"traceEvents": [{"ph": "X", "name": "x", "pid": 1,
                                          "tid": 0, "ts": 0.0,
                                          "dur": -1.0}]}) != []
        assert validate({"traceEvents": [{"ph": "M", "name": "bogus",
                                          "pid": 1, "tid": 0,
                                          "args": {"name": "x"}}]}) != []


# ---------------------------------------------------------------------------
# Provenance
# ---------------------------------------------------------------------------
class TestProvenance:
    def test_block_has_uniform_keys(self):
        block = provenance()
        assert set(block) == {"git_commit", "python", "implementation",
                              "platform", "machine", "hostname", "cpu_count"}
        assert block["python"] and block["cpu_count"] >= 1

    def test_config_fingerprint_is_order_insensitive(self):
        assert config_fingerprint({"a": 1, "b": 2}) == \
            config_fingerprint({"b": 2, "a": 1})
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})

    def test_stamp_fingerprints_the_workload_section(self):
        artifact = {"workload": {"duration_s": 0.01}, "result": 42}
        stamp(artifact)
        assert artifact["provenance"]["config_fingerprint"] == \
            config_fingerprint({"duration_s": 0.01})

    def test_stamp_without_config_omits_fingerprint(self):
        artifact = {"result": 42}
        stamp(artifact)
        assert "config_fingerprint" not in artifact["provenance"]


# ---------------------------------------------------------------------------
# Experiment integration
# ---------------------------------------------------------------------------
def _microburst():
    from repro.apps.microburst import microburst_scenario
    return microburst_scenario(link_rate_bps=mbps(10), offered_load=0.4,
                               seed=3)


class TestExperimentTelemetry:
    def test_run_records_phases_and_metrics(self):
        telemetry = Telemetry(slices=4)
        result = _microburst().build(0.1, telemetry=telemetry).run(0.1)
        names = {span.name for span in telemetry.spans}
        assert {"experiment.build", "experiment.run", "engine.slice",
                "experiment.finish"} <= names
        assert sum(s.name == "engine.slice" for s in telemetry.spans) == 4
        snapshot = result.telemetry
        assert snapshot["metrics"]["gauges"]["sim.events_executed"] == \
            result.events_executed
        slices = snapshot["metrics"]["histograms"]["sim.events_per_slice"]
        assert slices["count"] == 4
        assert slices["sum"] == result.events_executed
        assert snapshot["metrics"]["gauges"]["tcpu.tpps_executed"] > 0

    def test_ambient_telemetry_via_use(self):
        telemetry = Telemetry()
        with obs.use(telemetry):
            result = _microburst().build(0.05).run(0.05)
        assert result.telemetry is not None
        assert any(s.name == "experiment.run" for s in telemetry.spans)

    def test_disabled_run_carries_no_telemetry(self):
        result = _microburst().build(0.05).run(0.05)
        assert result.telemetry is None

    def test_summary_side_channel_excluded_from_canonical_json(self):
        telemetry = Telemetry()
        result = _microburst().build(0.05, telemetry=telemetry).run(0.05)
        summary = ResultSummary.from_result(result)
        assert summary.telemetry == result.telemetry
        assert "telemetry" not in summary.as_jsonable()


# ---------------------------------------------------------------------------
# The no-perturbation differential: every app, off vs on vs exporting
# ---------------------------------------------------------------------------
def _app_rows():
    """(name, scenario factory, duration) for every app in the repo."""
    from repro.apps.conga import conga_scenario
    from repro.apps.microburst import microburst_scenario
    from repro.apps.netsight import netsight_scenario
    from repro.apps.netverify import verification_scenario
    from repro.apps.rcp import ALPHA_MAXMIN, rcp_scenario
    from repro.apps.sketches import sketch_scenario

    return [
        ("microburst",
         lambda: microburst_scenario(link_rate_bps=mbps(10),
                                     offered_load=0.4, seed=3), 0.125),
        ("netsight",
         lambda: netsight_scenario(link_rate_bps=mbps(10), seed=2), 0.1),
        ("sketches",
         lambda: sketch_scenario(num_leaves=2, num_spines=1,
                                 hosts_per_leaf=2, seed=2), 0.2),
        ("rcp",
         lambda: rcp_scenario(alpha=ALPHA_MAXMIN, link_rate_bps=mbps(10)),
         0.5),
        ("conga",
         lambda: conga_scenario("conga", link_rate_bps=mbps(10)), 0.5),
        ("netverify", verification_scenario, 0.175),
    ]


def _canonical_view(summary: ResultSummary) -> str:
    """Sorted canonical JSON with object addresses masked (as in the
    fault-localization benchmark: some sketch parts repr-render)."""
    view = json.dumps(summary.as_jsonable(), sort_keys=True)
    return re.sub(r"0x[0-9a-f]+", "0x-", view)


class TestNoPerturbationDifferential:
    @pytest.mark.parametrize("name,factory,duration",
                             _app_rows(),
                             ids=[row[0] for row in _app_rows()])
    def test_off_on_exporting_identical(self, tmp_path, name, factory,
                                        duration):
        def run(telemetry=None):
            result = factory().build(duration, telemetry=telemetry) \
                .run(duration)
            return result, ResultSummary.from_result(result)

        off_result, off_summary = run()
        on_result, on_summary = run(Telemetry())
        exporting = Telemetry(slices=4)
        export_result, export_summary = run(exporting)
        trace_path = tmp_path / f"{name}.json"
        write_trace(exporting, trace_path)

        assert off_result.events_executed == on_result.events_executed \
            == export_result.events_executed
        assert _canonical_view(off_summary) == _canonical_view(on_summary) \
            == _canonical_view(export_summary)
        assert off_result.telemetry is None
        assert on_result.telemetry is not None
        loaded = json.loads(trace_path.read_text(encoding="utf-8"))
        assert check_trace_schema.validate_trace(loaded) == []


# ---------------------------------------------------------------------------
# Sweep runner integration
# ---------------------------------------------------------------------------
class TestSweepTelemetry:
    def test_runner_records_spans_and_task_timing(self):
        runner = SweepRunner(workers=1, duration_s=0.05)
        result = runner.run([_microburst().to_spec()])
        assert result.wall_s > 0
        names = [span.name for span in runner.telemetry.spans]
        assert names.count("sweep.task") == 1
        [sweep_span] = [s for s in runner.telemetry.spans
                        if s.name == "sweep.run"]
        assert result.wall_s == pytest.approx(sweep_span.duration)
        histogram = runner.telemetry.metrics.histogram("sweep.task_wall_s")
        assert histogram.count == 1
        assert histogram.total == pytest.approx(result.outcomes[0].wall_s)

    def test_worker_telemetry_rides_summary_and_manifest(self, tmp_path):
        runner = SweepRunner(workers=1, duration_s=0.05,
                             manifest_dir=tmp_path / "sweep",
                             worker_telemetry=True, worker_slices=2)
        result = runner.run([_microburst().to_spec()])
        summary = result.completed[0].summary
        assert summary.telemetry is not None
        assert summary.telemetry["metrics"]["histograms"][
            "sim.events_per_slice"]["count"] == 2
        manifest = json.loads(
            (tmp_path / "sweep" / "manifest.json").read_text(encoding="utf-8"))
        entry = next(iter(manifest["tasks"].values()))
        assert entry["telemetry"] == summary.telemetry
        assert "telemetry" not in entry["summary"]

    def test_canonical_artifact_invariant_in_worker_telemetry(self):
        plain = SweepRunner(workers=1, duration_s=0.05) \
            .run([_microburst().to_spec()])
        observed = SweepRunner(workers=1, duration_s=0.05,
                               worker_telemetry=True, worker_slices=4) \
            .run([_microburst().to_spec()])
        assert plain.canonical_json() == observed.canonical_json()
