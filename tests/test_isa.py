"""Tests for the TPP instruction set and its wire encoding."""

import pytest

from repro.core.exceptions import EncodingError
from repro.core.isa import (INSTRUCTION_BYTES, Instruction, MAX_INSTRUCTIONS, Opcode,
                            decode_program, encode_program)


class TestInstructionProperties:
    def test_paper_limit_is_five_instructions(self):
        assert MAX_INSTRUCTIONS == 5

    def test_write_opcodes(self):
        assert Instruction(Opcode.STORE, 0x1010).writes_switch
        assert Instruction(Opcode.POP, 0x1010).writes_switch
        assert Instruction(Opcode.CSTORE, 0x1010).writes_switch
        assert not Instruction(Opcode.PUSH, 0x1010).writes_switch
        assert not Instruction(Opcode.LOAD, 0x1010).writes_switch

    def test_read_opcodes(self):
        assert Instruction(Opcode.PUSH, 0x1010).reads_switch
        assert Instruction(Opcode.LOAD, 0x1010).reads_switch
        assert Instruction(Opcode.CEXEC, 0x1010).reads_switch
        assert not Instruction(Opcode.STORE, 0x1010).reads_switch

    def test_packet_write_opcodes(self):
        assert Instruction(Opcode.PUSH, 0x1010).writes_packet
        assert Instruction(Opcode.LOAD, 0x1010).writes_packet
        assert not Instruction(Opcode.STORE, 0x1010).writes_packet

    def test_conditional_opcodes(self):
        assert Instruction(Opcode.CSTORE, 0x1010).is_conditional
        assert Instruction(Opcode.CEXEC, 0x1010).is_conditional
        assert not Instruction(Opcode.LOAD, 0x1010).is_conditional

    def test_address_must_fit_16_bits(self):
        with pytest.raises(EncodingError):
            Instruction(Opcode.LOAD, address=0x10000)

    def test_packet_offset_must_fit_8_bits(self):
        with pytest.raises(EncodingError):
            Instruction(Opcode.LOAD, address=0, packet_offset=256)


class TestEncoding:
    def test_instruction_is_four_bytes(self):
        assert len(Instruction(Opcode.PUSH, 0x1234).encode()) == INSTRUCTION_BYTES

    def test_roundtrip_all_opcodes(self):
        for opcode in Opcode:
            original = Instruction(opcode, address=0xBEEF, packet_offset=7)
            assert Instruction.decode(original.encode()) == original

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(EncodingError):
            Instruction.decode(b"\x00\x00\x00")

    def test_decode_rejects_unknown_opcode(self):
        with pytest.raises(EncodingError):
            Instruction.decode(bytes((0xF0, 0, 0, 0)))

    def test_program_roundtrip(self):
        program = [Instruction(Opcode.PUSH, 0x0000),
                   Instruction(Opcode.LOAD, 0x1001, packet_offset=2),
                   Instruction(Opcode.CSTORE, 0xB010, packet_offset=0)]
        assert decode_program(encode_program(program)) == program

    def test_program_length_must_be_multiple_of_four(self):
        with pytest.raises(EncodingError):
            decode_program(b"\x10\x00\x00\x00\x01")

    def test_three_instruction_program_is_12_bytes(self):
        # §2.1/§2.3: "the instruction overhead is 12 bytes/packet".
        program = [Instruction(Opcode.PUSH, 0x0000)] * 3
        assert len(encode_program(program)) == 12


class TestRendering:
    def test_push_renders_mnemonic(self):
        from repro.core import addressing
        text = str(Instruction(Opcode.PUSH, addressing.resolve("[Switch:SwitchID]")))
        assert text.startswith("PUSH") and "Switch" in text

    def test_cstore_renders_adjacent_operands(self):
        text = str(Instruction(Opcode.CSTORE, 0xB010, packet_offset=3))
        assert "Hop[3]" in text and "Hop[4]" in text
