"""Tests for the packet model."""

import pytest

from repro.core.compiler import compile_tpp
from repro.net.packet import (ETHERNET_HEADER_BYTES, IPV4_HEADER_BYTES, TCP_HEADER_BYTES,
                              TPP_UDP_PORT, UDP_HEADER_BYTES, Packet, tcp_packet,
                              tpp_probe_packet, udp_packet)


def _tpp():
    return compile_tpp("PUSH [Switch:SwitchID]", num_hops=4).tpp


class TestPacketBasics:
    def test_udp_packet_size_includes_headers(self):
        packet = udp_packet("a", "b", payload_bytes=1000)
        expected = ETHERNET_HEADER_BYTES + IPV4_HEADER_BYTES + UDP_HEADER_BYTES + 1000
        assert packet.size == expected

    def test_tcp_packet_size_includes_headers(self):
        packet = tcp_packet("a", "b", payload_bytes=500)
        expected = ETHERNET_HEADER_BYTES + IPV4_HEADER_BYTES + TCP_HEADER_BYTES + 500
        assert packet.size == expected

    def test_zero_or_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(src="a", dst="b", size=0)

    def test_packet_ids_are_unique(self):
        first = udp_packet("a", "b", 10)
        second = udp_packet("a", "b", 10)
        assert first.packet_id != second.packet_id

    def test_transmission_time(self):
        packet = Packet(src="a", dst="b", size=1250)
        assert packet.transmission_time(10e6) == pytest.approx(1e-3)

    def test_record_hop_builds_path(self):
        packet = udp_packet("a", "b", 10)
        packet.record_hop("a")
        packet.record_hop("s1")
        assert packet.path == ["a", "s1"]

    def test_copy_headers_resets_dynamic_state(self):
        packet = udp_packet("a", "b", 10, dport=99, flow_id=7)
        packet.record_hop("a")
        clone = packet.copy_headers()
        assert clone.dst == "b" and clone.dport == 99 and clone.flow_id == 7
        assert clone.path == []
        assert clone.packet_id != packet.packet_id


class TestTppAttachment:
    def test_attach_grows_size_by_wire_length(self):
        packet = udp_packet("a", "b", 100)
        base = packet.size
        tpp = _tpp()
        packet.attach_tpp(tpp)
        assert packet.size == base + tpp.wire_length()
        assert packet.is_tpp

    def test_detach_restores_size(self):
        packet = udp_packet("a", "b", 100)
        base = packet.size
        packet.attach_tpp(_tpp())
        packet.detach_tpp()
        assert packet.size == base
        assert not packet.is_tpp

    def test_double_attach_rejected(self):
        packet = udp_packet("a", "b", 100)
        packet.attach_tpp(_tpp())
        with pytest.raises(ValueError):
            packet.attach_tpp(_tpp())

    def test_detach_without_tpp_rejected(self):
        with pytest.raises(ValueError):
            udp_packet("a", "b", 100).detach_tpp()

    def test_probe_packet_is_standalone_and_uses_reserved_port(self):
        probe = tpp_probe_packet("a", "b", _tpp())
        assert probe.tpp_standalone
        assert probe.sport == TPP_UDP_PORT
        assert probe.is_tpp
