"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.apps.rcp import RcpParameters, alpha_fair_rate, rcp_update
from repro.apps.sketches import BitmapSketch
from repro.core.isa import Instruction, Opcode, decode_program, encode_program
from repro.core.packet_format import AddressingMode, TPP, checksum16, make_tpp
from repro.net.port import EgressQueue
from repro.net.packet import udp_packet
from repro.net.sim import Simulator
from repro.stats.series import TimeSeries, cdf, fractiles, fraction_at_or_below

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
opcodes = st.sampled_from(list(Opcode))
addresses = st.integers(min_value=0, max_value=0xFFFF)
offsets = st.integers(min_value=0, max_value=0xFF)

instructions = st.builds(Instruction, opcode=opcodes, address=addresses,
                         packet_offset=offsets)


# ---------------------------------------------------------------------------
# ISA / wire format
# ---------------------------------------------------------------------------
class TestIsaProperties:
    @given(instructions)
    def test_instruction_roundtrip(self, instruction):
        assert Instruction.decode(instruction.encode()) == instruction

    @given(st.lists(instructions, max_size=12))
    def test_program_roundtrip(self, program):
        assert decode_program(encode_program(program)) == program

    @given(st.binary(max_size=64))
    def test_checksum_is_16_bits_and_deterministic(self, data):
        value = checksum16(data)
        assert 0 <= value <= 0xFFFF
        assert checksum16(data) == value


class TestTppFormatProperties:
    # num_hops is capped at 10: make_tpp preallocates up to 5 packet-writing
    # instructions x word_bytes x num_hops bytes, and 5 * 4 * 10 = 200 is
    # exactly the MAX_PACKET_MEMORY_BYTES limit (11+ hops would make the
    # strategy generate invalid TPPs and fail spuriously).
    @given(st.lists(instructions, min_size=1, max_size=5),
           st.integers(min_value=1, max_value=10),
           st.sampled_from([2, 4]),
           st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=60)
    def test_encode_decode_roundtrip(self, program, num_hops, word_bytes, app_id):
        tpp = make_tpp(program, num_hops=num_hops, word_bytes=word_bytes, app_id=app_id)
        decoded = TPP.decode(tpp.encode())
        assert decoded.instructions == tpp.instructions
        assert decoded.memory == tpp.memory
        assert decoded.app_id == app_id
        assert decoded.word_bytes == word_bytes

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=20))
    def test_pushed_words_read_back_in_order(self, values):
        tpp = make_tpp([Instruction(Opcode.PUSH, 0)], num_hops=len(values),
                       values_per_hop=1)
        for value in values:
            assert tpp.push(value)
        assert tpp.pushed_words() == values

    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=0xFFFF))
    def test_hop_addressing_isolation(self, num_hops, values_per_hop, value):
        # Writing one hop's slice never disturbs any other hop's slice.
        tpp = make_tpp([Instruction(Opcode.LOAD, 0)], num_hops=num_hops,
                       mode=AddressingMode.HOP, values_per_hop=values_per_hop)
        target_hop = num_hops - 1
        tpp.write_hop_word(0, value, hop=target_hop)
        for hop in range(num_hops - 1):
            for offset in range(values_per_hop):
                assert tpp.read_hop_word(offset, hop=hop) == 0
        assert tpp.read_hop_word(0, hop=target_hop) == value

    @given(st.lists(instructions, min_size=1, max_size=5),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=40)
    def test_wire_length_structure(self, program, num_hops):
        tpp = make_tpp(program, num_hops=num_hops)
        assert tpp.wire_length() == 12 + 4 * len(program) + len(tpp.memory)


# ---------------------------------------------------------------------------
# Queues
# ---------------------------------------------------------------------------
class TestQueueProperties:
    @given(st.lists(st.integers(min_value=64, max_value=1500), max_size=60),
           st.integers(min_value=1000, max_value=20000))
    @settings(max_examples=50)
    def test_conservation_and_capacity(self, sizes, capacity):
        queue = EgressQueue(capacity_bytes=capacity)
        accepted = 0
        for size in sizes:
            if queue.enqueue(udp_packet("a", "b", size)):
                accepted += 1
        assert queue.occupancy_bytes <= capacity
        assert queue.occupancy_packets == accepted
        assert accepted + queue.packets_dropped_total == len(sizes)
        drained = 0
        while queue.dequeue() is not None:
            drained += 1
        assert drained == accepted
        assert queue.occupancy_bytes == 0


# ---------------------------------------------------------------------------
# Simulator
# ---------------------------------------------------------------------------
class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                    min_size=1, max_size=40))
    @settings(max_examples=50)
    def test_events_observe_nondecreasing_time(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run_until_idle()
        assert observed == sorted(observed)
        assert len(observed) == len(delays)


# ---------------------------------------------------------------------------
# RCP math
# ---------------------------------------------------------------------------
class TestRcpProperties:
    @given(st.floats(min_value=1e5, max_value=1e9),
           st.floats(min_value=0, max_value=2e9),
           st.floats(min_value=0, max_value=1e6),
           st.floats(min_value=1e6, max_value=1e9))
    @settings(max_examples=80)
    def test_rcp_update_stays_in_bounds(self, rate, traffic, queue, capacity):
        params = RcpParameters()
        new_rate = rcp_update(rate, traffic, queue, capacity, params)
        assert params.min_rate_bps <= new_rate <= capacity

    @given(st.lists(st.floats(min_value=1e3, max_value=1e9), min_size=1, max_size=8),
           st.floats(min_value=0.5, max_value=8.0))
    @settings(max_examples=80)
    def test_alpha_fair_rate_bounded_by_min_and_positive(self, rates, alpha):
        value = alpha_fair_rate(rates, alpha)
        assert 0 < value <= min(rates) + 1e-6

    @given(st.lists(st.floats(min_value=1e3, max_value=1e9), min_size=2, max_size=8))
    @settings(max_examples=50)
    def test_alpha_ordering(self, rates):
        # Higher α is more egalitarian: the aggregate rate is non-decreasing in α
        # (approaches the min from below).
        low = alpha_fair_rate(rates, 1.0)
        high = alpha_fair_rate(rates, 4.0)
        maxmin = alpha_fair_rate(rates, math.inf)
        assert low <= high + 1e-6
        assert high <= maxmin + 1e-6


# ---------------------------------------------------------------------------
# Sketches
# ---------------------------------------------------------------------------
class TestSketchProperties:
    @given(st.sets(st.text(min_size=1, max_size=12), min_size=1, max_size=120))
    @settings(max_examples=40)
    def test_estimate_tracks_cardinality(self, elements):
        sketch = BitmapSketch(bits=4096)
        for element in elements:
            sketch.add(element)
        estimate = sketch.estimate()
        assert estimate >= 0
        assert abs(estimate - len(elements)) <= max(5, 0.2 * len(elements))

    @given(st.sets(st.text(min_size=1, max_size=8), max_size=60),
           st.sets(st.text(min_size=1, max_size=8), max_size=60))
    @settings(max_examples=40)
    def test_merge_commutes(self, left_elements, right_elements):
        a1, b1 = BitmapSketch(512), BitmapSketch(512)
        a2, b2 = BitmapSketch(512), BitmapSketch(512)
        for element in left_elements:
            a1.add(element)
            a2.add(element)
        for element in right_elements:
            b1.add(element)
            b2.add(element)
        a1.merge(b1)
        b2.merge(a2)
        assert a1.bitmap == b2.bitmap


# ---------------------------------------------------------------------------
# Statistics helpers
# ---------------------------------------------------------------------------
class TestStatsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_cdf_monotone_and_ends_at_one(self, samples):
        points = cdf(samples)
        fractions = [fraction for _, fraction in points]
        values = [value for value, _ in points]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200),
           st.floats(min_value=0, max_value=1))
    def test_fractiles_within_sample_range(self, samples, point):
        value = fractiles(samples, [point])[point]
        assert min(samples) <= value <= max(samples)

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=100),
           st.floats(min_value=-100, max_value=100))
    def test_fraction_at_or_below_is_probability(self, samples, threshold):
        fraction = fraction_at_or_below(samples, threshold)
        assert 0.0 <= fraction <= 1.0

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e3),
                              st.floats(min_value=-1e3, max_value=1e3)),
                    min_size=1, max_size=100))
    @settings(max_examples=40)
    def test_time_series_resample_preserves_bounds(self, points):
        series = TimeSeries()
        for time, value in sorted(points, key=lambda p: p[0]):
            series.add(time, value)
        resampled = series.resample(interval=10.0, how="max")
        if resampled.values:
            assert max(resampled.values) <= max(series.values) + 1e-9
