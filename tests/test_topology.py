"""Tests for the Network container, route computation and topology builders."""

import pytest

from repro.net.link import mbps
from repro.net.packet import udp_packet
from repro.net.sim import Simulator
from repro.net.topology import (Network, build_conga_topology, build_dumbbell,
                                build_fat_tree, build_leaf_spine, build_rcp_chain)


class TestNetworkBasics:
    def test_duplicate_names_rejected(self):
        net = Network(Simulator())
        net.add_host("x")
        with pytest.raises(ValueError):
            net.add_host("x")
        with pytest.raises(ValueError):
            net.add_switch("x")

    def test_node_lookup(self):
        net = Network(Simulator())
        net.add_host("h")
        net.add_switch("s")
        assert net.node("h") is net.hosts["h"]
        assert net.node("s") is net.switches["s"]
        with pytest.raises(KeyError):
            net.node("missing")
        assert set(net.nodes) == {"h", "s"}

    def test_connect_creates_ports_and_link(self):
        net = Network(Simulator())
        net.add_host("a")
        net.add_host("b")
        link = net.connect("a", "b", rate_bps=mbps(50), delay_s=2e-6)
        assert link.rate_bps == mbps(50)
        assert net.ports_towards("a", "b") == [0]
        assert net.neighbors("a") == [("b", 0)]
        assert net.link_between("a", "b") is link
        assert net.link_between("a", "zzz") is None

    def test_switch_ids_are_sequential_and_unique(self):
        net = Network(Simulator())
        ids = [net.add_switch(f"s{i}").switch_id for i in range(4)]
        assert len(set(ids)) == 4


class TestRouting:
    def _line(self):
        net = Network(Simulator())
        for name in ("h0", "h1"):
            net.add_host(name)
        for name in ("s0", "s1"):
            net.add_switch(name)
        net.connect("h0", "s0")
        net.connect("s0", "s1")
        net.connect("s1", "h1")
        return net

    def test_hop_distances(self):
        net = self._line()
        distances = net.hop_distances_to("h1")
        assert distances["h1"] == 0
        assert distances["s1"] == 1
        assert distances["s0"] == 2
        assert distances["h0"] == 3

    def test_compute_path(self):
        net = self._line()
        assert net.compute_path("h0", "h1") == ["h0", "s0", "s1", "h1"]
        with pytest.raises(ValueError):
            Network(Simulator()).compute_path("a", "b")

    def test_installed_routes_deliver_traffic_both_ways(self):
        net = self._line()
        net.install_shortest_path_routes()
        sim = net.sim
        net.hosts["h0"].send(udp_packet("h0", "h1", 100))
        net.hosts["h1"].send(udp_packet("h1", "h0", 100))
        sim.run(until=0.05)
        assert net.hosts["h1"].packets_received == 1
        assert net.hosts["h0"].packets_received == 1

    def test_ecmp_groups_installed_for_equal_cost_paths(self):
        net = Network(Simulator())
        net.add_host("src")
        net.add_host("dst")
        for name in ("left", "spine_a", "spine_b", "right"):
            net.add_switch(name)
        net.connect("src", "left")
        net.connect("left", "spine_a")
        net.connect("left", "spine_b")
        net.connect("spine_a", "right")
        net.connect("spine_b", "right")
        net.connect("right", "dst")
        net.install_shortest_path_routes(ecmp=True)
        left = net.switches["left"]
        entry = left.pipeline.forwarding_table.lookup(udp_packet("src", "dst", 10))
        assert entry.action == "group"
        group = left.group_table.groups[entry.group_id]
        assert sorted(group.ports) == sorted(net.ports_towards("left", "spine_a")
                                             + net.ports_towards("left", "spine_b"))

    def test_ecmp_disabled_picks_single_port(self):
        net = Network(Simulator())
        net.add_host("src")
        net.add_host("dst")
        for name in ("left", "a", "b", "right"):
            net.add_switch(name)
        net.connect("src", "left")
        net.connect("left", "a")
        net.connect("left", "b")
        net.connect("a", "right")
        net.connect("b", "right")
        net.connect("right", "dst")
        net.install_shortest_path_routes(ecmp=False)
        entry = net.switches["left"].pipeline.forwarding_table.lookup(udp_packet("src", "dst", 10))
        assert entry.action == "forward"


class TestBuilders:
    def test_dumbbell_shape(self):
        topo = build_dumbbell(Simulator(), hosts_per_side=3)
        assert len(topo.host_names) == 6
        assert len(topo.network.switches) == 2
        assert topo.network.link_between("s0", "s1") is not None

    def test_dumbbell_end_to_end(self):
        sim = Simulator()
        topo = build_dumbbell(sim)
        net = topo.network
        net.hosts["h0"].send(udp_packet("h0", "h5", 100))
        sim.run(until=0.05)
        assert net.hosts["h5"].packets_received == 1

    def test_rcp_chain_paths(self):
        topo = build_rcp_chain(Simulator())
        net = topo.network
        assert net.compute_path("ha", "ha_dst") == ["ha", "s0", "s1", "s2", "ha_dst"]
        assert net.compute_path("hb", "hb_dst") == ["hb", "s0", "s1", "hb_dst"]
        assert net.compute_path("hc", "hc_dst") == ["hc", "s1", "s2", "hc_dst"]

    def test_rcp_chain_bottlenecks_are_core_links(self):
        topo = build_rcp_chain(Simulator(), link_rate_bps=mbps(10))
        net = topo.network
        assert net.link_between("s0", "s1").rate_bps == mbps(10)
        assert net.link_between("ha", "s0").rate_bps == mbps(100)

    def test_conga_topology_has_two_paths_from_l1(self):
        topo = build_conga_topology(Simulator())
        net = topo.network
        entry = net.switches["L1"].pipeline.forwarding_table.lookup(
            udp_packet("hl1", "hl2", 10))
        assert entry.action == "group"
        assert net.switches["L0"].pipeline.forwarding_table.lookup(
            udp_packet("hl0", "hl2", 10)).action == "forward"

    def test_leaf_spine_counts(self):
        topo = build_leaf_spine(Simulator(), num_leaves=3, num_spines=2, hosts_per_leaf=2)
        assert len(topo.host_names) == 6
        assert len(topo.network.switches) == 5

    def test_fat_tree_counts(self):
        topo = build_fat_tree(Simulator(), k=4)
        assert len(topo.host_names) == 16          # k^3 / 4
        assert len(topo.network.switches) == 20    # 4 core + 8 agg + 8 edge
        with pytest.raises(ValueError):
            build_fat_tree(Simulator(), k=3)

    def test_fat_tree_connectivity(self):
        sim = Simulator()
        topo = build_fat_tree(sim, k=4)
        net = topo.network
        src, dst = topo.host_names[0], topo.host_names[-1]
        net.hosts[src].send(udp_packet(src, dst, 100))
        sim.run(until=0.1)
        assert net.hosts[dst].packets_received == 1
