"""Tests for the unified Scenario/Experiment session layer (repro.session)."""

import pytest

from repro.apps.microburst import microburst_scenario, run_microburst_experiment
from repro.apps.rcp import ALPHA_MAXMIN, rcp_scenario, run_rcp_fairness_experiment
from repro.endhost import Aggregator, PacketFilter
from repro.net import mbps
from repro.session import (DuplicateRegistration, Registry, Scenario, TOPOLOGIES,
                           UnknownRegistration, WORKLOADS, register_topology,
                           register_workload)


class TestRegistry:
    def test_builtin_topologies_registered(self):
        assert {"dumbbell", "rcp-chain", "conga", "leaf-spine", "fat-tree"} \
            <= set(TOPOLOGIES.names())

    def test_builtin_workloads_registered(self):
        assert {"messages", "paced-flows", "all-to-all-once", "cross-pod-bursts"} \
            <= set(WORKLOADS.names())

    def test_unknown_lookup_lists_the_menu(self):
        with pytest.raises(UnknownRegistration) as excinfo:
            TOPOLOGIES.get("moebius-strip")
        assert "moebius-strip" in str(excinfo.value)
        assert "dumbbell" in str(excinfo.value)

    def test_duplicate_registration_rejected(self):
        registry = Registry("thing")
        registry.register("one")(lambda: None)
        with pytest.raises(DuplicateRegistration):
            registry.register("one")(lambda: None)
        # ... unless explicitly overwritten.
        replacement = lambda: 42                               # noqa: E731
        registry.register("one", overwrite=True)(replacement)
        assert registry.get("one") is replacement

    def test_bare_decorator_uses_function_name(self):
        registry = Registry("thing")

        @registry.register
        def build_ring():
            return "ring"

        assert registry.get("build_ring") is build_ring

    def test_scenario_rejects_unknown_names_eagerly(self):
        with pytest.raises(UnknownRegistration):
            Scenario("not-a-topology")
        with pytest.raises(UnknownRegistration):
            Scenario("dumbbell").workload("not-a-workload")

    def test_custom_registrations_compose_into_scenarios(self):
        from repro.net.topology import build_dumbbell

        @register_topology("tiny-dumbbell")
        def tiny(sim, **kwargs):
            kwargs.setdefault("hosts_per_side", 1)
            return build_dumbbell(sim, **kwargs)

        @register_workload("one-packet")
        def one_packet(experiment):
            from repro.net import udp_packet
            experiment.host("h0").send(udp_packet("h0", "h1", 100, dport=9))
            return 1

        try:
            result = (Scenario("tiny-dumbbell", link_rate_bps=mbps(10))
                      .workload("one-packet")
                      .run(duration_s=0.05))
            assert result.workloads["one-packet"] == 1
            assert result.network.hosts["h1"].packets_received == 1
        finally:
            TOPOLOGIES._entries.pop("tiny-dumbbell")
            WORKLOADS._entries.pop("one-packet")


class TestScenarioBuilder:
    def test_fluent_chain_returns_self(self):
        scenario = Scenario("dumbbell")
        assert scenario.tpp("t", "PUSH [Switch:SwitchID]") is scenario
        assert scenario.workload("messages") is scenario
        assert scenario.collect(on_tpp=lambda tpp, packet: None) is scenario
        assert scenario.setup(lambda experiment: None) is scenario

    def test_duplicate_tpp_and_workload_names_rejected(self):
        scenario = Scenario("dumbbell").tpp("t", "PUSH [Switch:SwitchID]")
        with pytest.raises(ValueError):
            scenario.tpp("t", "PUSH [Switch:SwitchID]")
        scenario.workload("messages")
        with pytest.raises(ValueError):
            scenario.workload("messages")
        # Same workload twice is fine with distinct names.
        scenario.workload("messages", name="messages-2")

    def test_collect_requires_a_declared_tpp(self):
        with pytest.raises(ValueError):
            Scenario("dumbbell").collect(on_tpp=lambda tpp, packet: None)
        with pytest.raises(KeyError):
            Scenario("dumbbell").tpp("t", "PUSH [Switch:SwitchID]") \
                .collect(on_tpp=lambda t, p: None, app="other")

    def test_tpp_program_type_validated_at_build(self):
        scenario = Scenario("dumbbell").tpp("bad", 12345)
        with pytest.raises(TypeError):
            scenario.build()

    def test_deploy_without_stacks_is_an_error(self):
        scenario = Scenario("dumbbell", stacks=False).tpp("t", "PUSH [Switch:SwitchID]")
        with pytest.raises(RuntimeError):
            scenario.build()

    def test_collect_callback_sees_completed_tpps(self):
        seen = []
        result = (Scenario("dumbbell", link_rate_bps=mbps(10))
                  .tpp("monitor", "PUSH [Switch:SwitchID]", num_hops=6,
                       filter=PacketFilter(protocol="udp"))
                  .collect(on_tpp=lambda tpp, packet: seen.append(packet.dst))
                  .workload("messages", offered_load=0.2, message_bytes=2000)
                  .run(duration_s=0.05))
        assert seen
        assert len(seen) == result.tpps_received
        assert result.tpps_attached >= result.tpps_received

    def test_build_gives_interactive_experiment(self):
        experiment = (Scenario("dumbbell", link_rate_bps=mbps(10))
                      .workload("messages", offered_load=0.2)).build()
        experiment.sim.run(until=0.02)
        mid_events = experiment.sim.events_executed
        assert mid_events > 0
        experiment.sim.run(until=0.04)
        result = experiment.finish()
        assert result.events_executed >= mid_events
        # finish() is idempotent.
        assert experiment.finish() is result

    def test_copy_is_independent(self):
        base = Scenario("dumbbell").workload("messages")
        variant = base.copy().tpp("t", "PUSH [Switch:SwitchID]")
        assert not base.tpp_specs and len(variant.tpp_specs) == 1


class TestResultAccessors:
    @pytest.fixture(scope="class")
    def result(self):
        return (Scenario("dumbbell", link_rate_bps=mbps(10))
                .tpp("a", "PUSH [Switch:SwitchID]", filter=PacketFilter(protocol="udp"))
                .tpp("b", "PUSH [Queue:QueueOccupancy]", filter=PacketFilter(dport=1))
                .workload("messages", offered_load=0.2, message_bytes=2000)
                .run(duration_s=0.05))

    def test_app_must_be_named_when_ambiguous(self, result):
        with pytest.raises(ValueError):
            result.aggregators()
        assert set(result.aggregators("a")) == set(result.network.hosts)

    def test_unknown_app_lists_candidates(self, result):
        with pytest.raises(KeyError) as excinfo:
            result.aggregators("zzz")
        assert "'a'" in str(excinfo.value)

    def test_instrumentation_counters_summed(self, result):
        per_host = sum(stack.shim.tpps_attached for stack in result.stacks.values())
        assert result.tpps_attached == per_host > 0


class TestWrapperEquivalence:
    """The legacy run_*_experiment wrappers == the direct Scenario path."""

    def test_microburst_wrapper_matches_scenario(self):
        kwargs = dict(link_rate_bps=mbps(10), offered_load=0.4, seed=3)
        wrapped = run_microburst_experiment(duration_s=0.3, **kwargs)
        direct = microburst_scenario(**kwargs).run(duration_s=0.3)
        assert wrapped.samples == direct.samples
        assert wrapped.messages_sent == direct.messages_sent
        assert wrapped.packets_instrumented == direct.packets_instrumented
        assert wrapped.tpp_overhead_bytes_per_packet == direct.tpp_overhead_bytes_per_packet
        assert sorted(wrapped.series) == sorted(direct.series)
        for key in wrapped.series:
            assert wrapped.series[key].times == direct.series[key].times
            assert wrapped.series[key].values == direct.series[key].values

    def test_rcp_wrapper_matches_scenario(self):
        wrapped = run_rcp_fairness_experiment(alpha=ALPHA_MAXMIN, duration_s=2.0,
                                              link_rate_bps=mbps(10))
        direct = rcp_scenario(alpha=ALPHA_MAXMIN, link_rate_bps=mbps(10)) \
            .run(duration_s=2.0)
        assert wrapped.mean_throughput_bps == direct.mean_throughput_bps
        assert wrapped.control_overhead_fraction == direct.control_overhead_fraction
        for flow in ("a", "b", "c"):
            assert wrapped.throughput_series[flow].values == \
                direct.throughput_series[flow].values


class TestSeedPlumbing:
    def test_identical_seeds_identical_runs(self):
        def fingerprint(seed):
            result = microburst_scenario(link_rate_bps=mbps(10), seed=seed) \
                .run(duration_s=0.3)
            return (len(result.samples), result.packets_instrumented,
                    tuple((s.time, s.queue_key, s.occupancy_packets)
                          for s in result.samples[:200]))

        assert fingerprint(7) == fingerprint(7)
        assert fingerprint(7) != fingerprint(8)

    def test_workload_seed_derived_from_master_rng(self):
        def run(seed):
            result = (Scenario("dumbbell", seed=seed, link_rate_bps=mbps(10))
                      .workload("messages", offered_load=0.3)
                      .run(duration_s=0.2))
            workload = result.workloads["messages"]
            return tuple((m.src, m.dst, m.created_at) for m in workload.messages_sent)

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_ecmp_salting_is_deterministic_and_seed_dependent(self):
        def salts(seed, seed_ecmp=True):
            experiment = Scenario("leaf-spine", seed=seed, seed_ecmp=seed_ecmp,
                                  num_leaves=2, num_spines=2, hosts_per_leaf=1,
                                  stacks=False).build()
            experiment.finish()
            return {(name, gid): group.salt
                    for name, switch in experiment.network.switches.items()
                    for gid, group in switch.group_table.groups.items()
                    if group.policy == "hash"}

        assert salts(1)                     # leaf-spine does install hash groups
        assert salts(1) == salts(1)
        assert salts(1) != salts(2)
        assert all(salt == 0 for salt in salts(1, seed_ecmp=False).values())

    def test_no_global_random_in_simulation_modules(self):
        # Determinism audit: nothing under repro/ may draw from the process-
        # global random module (module-level functions); only seeded
        # random.Random instances are allowed.
        import pathlib
        import re
        root = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = []
        pattern = re.compile(
            r"random\.(random|randint|choice|choices|shuffle|sample|uniform|"
            r"expovariate|gauss|randrange|getrandbits)\(")
        for path in root.rglob("*.py"):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if pattern.search(line):
                    offenders.append(f"{path.name}:{lineno}: {line.strip()}")
        assert not offenders, f"global random usage found: {offenders}"


class TestRegisteredSmoke:
    """Every registered topology and workload builds and runs."""

    TOPOLOGY_KWARGS = {
        "dumbbell": dict(hosts_per_side=2),
        "rcp-chain": {},
        "conga": {},
        "leaf-spine": dict(num_leaves=2, num_spines=2, hosts_per_leaf=1),
        "fat-tree": dict(k=2),
    }

    def test_every_registered_topology_builds(self):
        for name in TOPOLOGIES.names():
            kwargs = self.TOPOLOGY_KWARGS.get(name, {})
            experiment = Scenario(name, stacks=False, **kwargs).build()
            assert experiment.topology.host_names, name
            assert experiment.network.switches, name
            # Routes are installed: every host can reach every other host.
            hosts = experiment.topology.host_names
            path = experiment.network.compute_path(hosts[0], hosts[-1])
            assert path[0] == hosts[0] and path[-1] == hosts[-1]

    def test_every_registered_workload_runs(self):
        workload_kwargs = {
            "messages": dict(offered_load=0.2, message_bytes=2000),
            "paced-flows": dict(flows=[dict(src="h0", dst="h2", rate_bps=1e6,
                                            dport=7000)]),
            "all-to-all-once": dict(payload_bytes=200),
            "cross-pod-bursts": dict(burst_packets=2, burst_interval_s=1e-3),
        }
        for name in WORKLOADS.names():
            if name not in workload_kwargs:
                continue       # workloads registered by other tests
            result = (Scenario("dumbbell", hosts_per_side=2, link_rate_bps=mbps(10))
                      .workload(name, **workload_kwargs[name])
                      .run(duration_s=0.05))
            delivered = sum(host.packets_received
                            for host in result.network.hosts.values())
            assert delivered > 0, name

    def test_workload_names_are_covered_by_smoke(self):
        # If someone registers a new built-in workload, they must extend the
        # smoke kwargs above (or register it from a test with cleanup).
        builtin = {"messages", "paced-flows", "all-to-all-once", "cross-pod-bursts"}
        assert builtin <= set(WORKLOADS.names())


class TestAppScenariosSmoke:
    """All six apps expose a Scenario-based experiment that runs end to end."""

    def test_netsight(self):
        from repro.apps.netsight import NetWatch, run_netsight_experiment
        watch = NetWatch()
        watch.add_loop_freedom_policy()
        result = run_netsight_experiment(duration_s=0.2, netwatch=watch)
        assert result.histories_collected > 0
        assert result.histories_collected == len(result.store)
        assert result.violations == []
        assert result.tpp_overhead_bytes_per_packet == 84

    def test_sketches(self):
        from repro.apps.sketches import run_sketch_experiment
        result = run_sketch_experiment(duration_s=0.5, num_leaves=2, num_spines=1,
                                       hosts_per_leaf=2)
        assert result.estimates
        assert result.packets_instrumented > 0
        assert all(estimate >= 0 for estimate in result.estimates.values())

    def test_netverify(self):
        from repro.apps.netverify import run_route_verification_experiment
        result = run_route_verification_experiment(duration_s=0.35)
        assert result.pre_failure.matches
        assert result.convergence.convergence_seconds is not None
        assert result.convergence.convergence_seconds >= 0.03   # reroute delay
        assert result.probes_sent > 0

    def test_conga_scenario_rejects_bad_scheme(self):
        from repro.apps.conga import conga_scenario
        with pytest.raises(ValueError):
            conga_scenario("valiant")
