"""Tests for flow tables, group tables and the match-action pipeline."""

import pytest

from repro.net.packet import udp_packet
from repro.switches.pipeline import Pipeline
from repro.switches.tables import (FlowEntry, FlowTable, Group, GroupTable,
                                   select_by_dport, select_by_hash, select_by_vlan)


class TestFlowTable:
    def test_lookup_matches_on_fields(self):
        table = FlowTable()
        entry = table.install(FlowEntry(match={"dst": "h1"}, action="forward", output_port=2))
        packet = udp_packet("h0", "h1", 100)
        assert table.lookup(packet) is entry
        assert table.lookup(udp_packet("h0", "h2", 100)) is None

    def test_priority_order(self):
        table = FlowTable()
        low = table.install(FlowEntry(match={"dst": "h1"}, action="forward",
                                      output_port=1, priority=1))
        high = table.install(FlowEntry(match={"dst": "h1", "dport": 80}, action="drop",
                                       priority=10))
        assert table.lookup(udp_packet("h0", "h1", 100, dport=80)) is high
        assert table.lookup(udp_packet("h0", "h1", 100, dport=81)) is low

    def test_version_increases_on_install_and_remove(self):
        table = FlowTable()
        v0 = table.version
        entry = table.install(FlowEntry(match={"dst": "h1"}, action="forward", output_port=0))
        assert table.version == v0 + 1
        assert table.remove(entry.entry_id)
        assert table.version == v0 + 2
        assert not table.remove(12345)

    def test_statistics_updated(self):
        table = FlowTable()
        table.install(FlowEntry(match={"dst": "h1"}, action="forward", output_port=0))
        matched = udp_packet("h0", "h1", 100)
        missed = udp_packet("h0", "h9", 100)
        table.lookup(matched)
        table.lookup(missed)
        assert table.lookup_stats.packets == 2
        assert table.match_stats.packets == 1
        assert table.entries[0].stats.packets == 1

    def test_entry_ids_unique_and_reference_count(self):
        table = FlowTable()
        first = table.install(FlowEntry(match={"dst": "a"}, action="forward", output_port=0))
        second = table.install(FlowEntry(match={"dst": "b"}, action="forward", output_port=1))
        assert first.entry_id != second.entry_id
        assert table.reference_count == 2


class TestGroups:
    def test_vlan_selection(self):
        assert select_by_vlan(udp_packet("a", "b", 10, vlan=3), [10, 11], 0) == 11
        assert select_by_vlan(udp_packet("a", "b", 10, vlan=2), [10, 11], 0) == 10

    def test_dport_selection(self):
        assert select_by_dport(udp_packet("a", "b", 10, dport=7), [0, 1], 0) == 1

    def test_hash_selection_is_deterministic_per_flow(self):
        packet = udp_packet("a", "b", 10, sport=1234, dport=80)
        same = udp_packet("a", "b", 10, sport=1234, dport=80)
        choices = [0, 1, 2, 3]
        assert select_by_hash(packet, choices, 0) == select_by_hash(same, choices, 0)

    def test_hash_selection_spreads_flows(self):
        choices = [0, 1, 2, 3]
        picks = {select_by_hash(udp_packet("a", "b", 10, dport=port), choices, 0)
                 for port in range(200)}
        assert len(picks) == len(choices)

    def test_group_table_lookup(self):
        table = GroupTable()
        table.install(Group(group_id=5, ports=[1, 2], policy="vlan"))
        assert 5 in table
        assert table.select(5, udp_packet("a", "b", 10, vlan=1)) == 2
        with pytest.raises(KeyError):
            table.select(6, udp_packet("a", "b", 10))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Group(group_id=1, ports=[0], policy="bogus").select(udp_packet("a", "b", 10))

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            Group(group_id=1, ports=[]).select(udp_packet("a", "b", 10))


class TestPipeline:
    def test_needs_at_least_one_stage(self):
        with pytest.raises(ValueError):
            Pipeline(num_stages=0)

    def test_first_matching_stage_wins(self):
        pipeline = Pipeline(num_stages=3)
        pipeline.stages[1].table.install(
            FlowEntry(match={"dst": "h1"}, action="forward", output_port=4))
        result = pipeline.process(udp_packet("h0", "h1", 100))
        assert result.action == "forward"
        assert result.output_port == 4
        assert result.matched_stage == 1

    def test_no_match(self):
        assert Pipeline().process(udp_packet("a", "b", 10)).action == "no_match"

    def test_drop_action(self):
        pipeline = Pipeline()
        pipeline.forwarding_table.install(FlowEntry(match={"dst": "bad"}, action="drop"))
        assert pipeline.process(udp_packet("a", "bad", 10)).action == "drop"

    def test_group_action(self):
        pipeline = Pipeline()
        pipeline.forwarding_table.install(
            FlowEntry(match={"dst": "h1"}, action="group", group_id=9))
        result = pipeline.process(udp_packet("a", "h1", 10))
        assert result.action == "group" and result.group_id == 9

    def test_stage_registers(self):
        pipeline = Pipeline()
        stage = pipeline.stage(2)
        assert stage.write_register(3, 99)
        assert stage.read_register(3) == 99
        assert stage.read_register(8) is None
        assert not stage.write_register(-1, 5)
        assert pipeline.stage(99) is None
