"""Cross-module integration tests: full scenarios exercising the whole stack."""

import pytest

from repro.apps.netsight import NetWatch, deploy_netsight
from repro.apps.netverify import RouteVerifier, observation_from_tpp, PATH_TPP_SOURCE
from repro.core.compiler import compile_tpp
from repro.endhost import Collector, PacketFilter, TPPControlPlane, install_stacks
from repro.net import (RateLimitedFlow, Simulator, build_dumbbell, build_leaf_spine, mbps,
                       udp_packet)


class TestMultipleApplicationsCoexist:
    def test_two_apps_with_different_filters_share_the_shim(self):
        sim = Simulator()
        topo = build_dumbbell(sim, link_rate_bps=mbps(10))
        network = topo.network
        stacks = install_stacks(network)
        cp = stacks["h0"].control_plane

        monitor = cp.register_application("monitor")
        debugger = cp.register_application("debugger")
        monitor_results, debugger_results = [], []
        stacks["h5"].shim.bind_application(
            monitor.app_id, on_tpp=lambda tpp, pkt: monitor_results.append(tpp))
        stacks["h5"].shim.bind_application(
            debugger.app_id, on_tpp=lambda tpp, pkt: debugger_results.append(tpp))

        stacks["h0"].agent.add_tpp(
            monitor.app_id, PacketFilter(dport=5000),
            compile_tpp("PUSH [Queue:QueueOccupancy]", app_id=monitor.app_id).tpp)
        stacks["h0"].agent.add_tpp(
            debugger.app_id, PacketFilter(dport=6000),
            compile_tpp("PUSH [Switch:SwitchID]", app_id=debugger.app_id).tpp)

        network.hosts["h0"].send(udp_packet("h0", "h5", 500, dport=5000))
        network.hosts["h0"].send(udp_packet("h0", "h5", 500, dport=6000))
        network.hosts["h0"].send(udp_packet("h0", "h5", 500, dport=7000))
        sim.run(until=0.1)

        assert len(monitor_results) == 1
        assert len(debugger_results) == 1
        assert monitor_results[0].app_id == monitor.app_id
        assert debugger_results[0].app_id == debugger.app_id


class TestFailureDetectionScenario:
    def test_link_failure_is_visible_through_path_probes(self):
        """The §2.6 story: a link fails, routing is updated, and path probes
        observe the change — something end-to-end reachability alone cannot."""
        sim = Simulator()
        topo = build_leaf_spine(sim, num_leaves=2, num_spines=2, hosts_per_leaf=1,
                                link_rate_bps=mbps(10))
        network = topo.network
        stacks = install_stacks(network)
        src, dst = topo.host_names[0], topo.host_names[-1]
        verifier = RouteVerifier(network)

        observations = []
        template = compile_tpp(PATH_TPP_SOURCE, num_hops=8,
                               app_id=stacks[src].executor_app_id).tpp

        def probe():
            stacks[src].executor.execute(
                template.clone(), dst,
                lambda tpp: observations.append(observation_from_tpp(tpp, sim.now))
                if tpp is not None else None,
                retries=0, timeout_s=0.02)

        process = sim.schedule_periodic(5e-3, probe)

        # After 100 ms, fail whichever spine currently carries the traffic and
        # repoint the leaf's route at the other spine.
        def fail_and_reroute():
            network.link_between("leaf0", "spine0").set_down()
            # The control plane repoints both directions at the surviving spine.
            network.switches["leaf0"].install_route(
                dst, network.ports_towards("leaf0", "spine1")[0], priority=100)
            network.switches["leaf1"].install_route(
                src, network.ports_towards("leaf1", "spine1")[0], priority=100)

        sim.schedule(0.1, fail_and_reroute)
        sim.run(until=0.4)
        process.stop()
        network.stop_switch_processes()

        assert observations, "probes must have completed"
        paths_before = {tuple(o.switch_ids) for o in observations if o.time < 0.1}
        paths_after = {tuple(o.switch_ids) for o in observations if o.time > 0.15}
        assert paths_after, "probes must survive the failure via the new route"
        spine1_id = network.switches["spine1"].switch_id
        assert all(spine1_id in path for path in paths_after)

    def test_netwatch_catches_a_misrouted_packet(self):
        """Install a deliberately wrong route and let netwatch flag the packets."""
        sim = Simulator()
        topo = build_dumbbell(sim, link_rate_bps=mbps(10))
        network = topo.network
        stacks = install_stacks(network)
        watch = NetWatch()
        # Policy: traffic from h0 must go through switch s1 (id 2) to reach the
        # far side - a waypoint policy.
        watch.add_waypoint_policy("must-cross-core", "h0",
                                  waypoint_switch=network.switches["s1"].switch_id)
        deploy_netsight(stacks, Collector(), netwatch=watch)

        # Misconfigure s0: packets for h5 are bounced back to h1 (never cross s1).
        port_to_h1 = network.ports_towards("s0", "h1")[0]
        network.switches["s0"].install_route("h5", port_to_h1, priority=50)

        network.hosts["h0"].send(udp_packet("h0", "h5", 300, dport=80))
        sim.run(until=0.1)
        assert len(watch.violations) == 1
        assert watch.violations[0].policy == "must-cross-core"


class TestRateControlledFlowsShareAFabric:
    def test_flows_and_probes_coexist_on_a_leaf_spine(self):
        sim = Simulator()
        topo = build_leaf_spine(sim, num_leaves=2, num_spines=2, hosts_per_leaf=2,
                                link_rate_bps=mbps(10))
        network = topo.network
        stacks = install_stacks(network)
        src, dst = "h0_0", "h1_1"
        flow = RateLimitedFlow(sim, network.hosts[src], dst, rate_bps=2e6, dport=4242)

        samples = []
        template = compile_tpp("PUSH [Link:TX-Utilization]\nPUSH [Queue:QueueOccupancy]",
                               num_hops=6, app_id=stacks[src].executor_app_id).tpp

        def probe():
            stacks[src].executor.execute(
                template.clone(), dst,
                lambda tpp: samples.append(tpp) if tpp is not None else None,
                retries=1, timeout_s=0.05)

        process = sim.schedule_periodic(0.02, probe)
        sim.run(until=1.0)
        process.stop()
        network.stop_switch_processes()

        assert flow.packets_sent > 100
        assert len(samples) > 30
        # The probes see non-zero utilisation on the links the flow shares.
        max_util = max(max(hop[0] for hop in tpp.words_by_hop(2)[:tpp.hop_number])
                       for tpp in samples)
        assert max_util > 500   # > 5 % in basis points
