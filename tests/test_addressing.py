"""Tests for the unified memory-mapped address space."""

import pytest

from repro.core import addressing
from repro.core.exceptions import AddressError


class TestResolve:
    def test_switch_namespace(self):
        assert addressing.resolve("[Switch:SwitchID]") == 0x0000
        assert addressing.resolve("[Switch:ID]") == 0x0000
        assert addressing.resolve("Switch:VersionNumber") == 0x0001

    def test_dynamic_link_namespace(self):
        address = addressing.resolve("[Link:QueueSizeBytes]")
        assert addressing.DYNAMIC_LINK_BASE <= address < addressing.DYNAMIC_QUEUE_BASE

    def test_dynamic_queue_namespace(self):
        address = addressing.resolve("[Queue:QueueOccupancy]")
        assert address == addressing.DYNAMIC_QUEUE_BASE

    def test_concrete_link_block(self):
        base = addressing.resolve("[Link$0:ID]")
        next_block = addressing.resolve("[Link$1:ID]")
        assert base == addressing.LINK_BASE
        assert next_block - base == addressing.LINK_BLOCK_WORDS

    def test_concrete_queue_block(self):
        address = addressing.resolve("[Queue$1$0:QueueOccupancy]")
        expected = addressing.QUEUE_BASE + addressing.QUEUES_PER_PORT * addressing.QUEUE_BLOCK_WORDS
        assert address == expected

    def test_stage_registers(self):
        assert (addressing.resolve("[Stage$1:Reg0]") - addressing.resolve("[Stage$0:Reg0]")
                == addressing.STAGE_BLOCK_WORDS)

    def test_packet_metadata(self):
        assert addressing.resolve("[PacketMetadata:InputPort]") == addressing.PACKET_METADATA_BASE
        assert addressing.resolve("[PacketMetadata:OutputPort]") == addressing.PACKET_METADATA_BASE + 1

    def test_paper_mnemonics_all_resolve(self):
        mnemonics = [
            "[Queue:QueueOccupancy]", "[Switch:SwitchID]", "[Link:QueueSize]",
            "[Link:RX-Utilization]", "[Link:AppSpecific_0]", "[Link:AppSpecific_1]",
            "[Link:RX-Bytes]", "[PacketMetadata:MatchedEntryID]",
            "[PacketMetadata:InputPort]", "[Link:ID]", "[Link:TX-Utilization]",
            "[Link:TX-Bytes]", "[PacketMetadata:OutputPort]", "[Switch:VendorID]",
        ]
        for mnemonic in mnemonics:
            assert 0 <= addressing.resolve(mnemonic) <= addressing.ADDRESS_MAX

    def test_unknown_field_rejected(self):
        with pytest.raises(AddressError):
            addressing.resolve("[Switch:NoSuchThing]")

    def test_unknown_namespace_rejected(self):
        with pytest.raises(AddressError):
            addressing.resolve("[Planet:Mars]")

    def test_malformed_mnemonic_rejected(self):
        with pytest.raises(AddressError):
            addressing.resolve("SwitchID")

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(AddressError):
            addressing.resolve(f"[Link${addressing.MAX_LINKS}:ID]")
        with pytest.raises(AddressError):
            addressing.resolve("[Queue$0$8:QueueOccupancy]")
        with pytest.raises(AddressError):
            addressing.resolve(f"[Stage${addressing.MAX_STAGES}:Reg0]")

    def test_wrong_index_arity_rejected(self):
        with pytest.raises(AddressError):
            addressing.resolve("[Stage:Reg0]")
        with pytest.raises(AddressError):
            addressing.resolve("[Queue$1:QueueOccupancy]")


class TestDecode:
    def test_roundtrip_regions(self):
        cases = {
            "[Switch:Clock]": ("switch", None, None),
            "[Stage$2:MatchBytes]": ("stage", 2, None),
            "[Link$3:TX-Bytes]": ("link", 3, None),
            "[Queue$2$1:Drop-Packets]": ("queue", 2, 1),
            "[PacketMetadata:HopNumber]": ("packet_metadata", None, None),
            "[Link:TX-Utilization]": ("dynamic_link", None, None),
            "[Queue:QueueOccupancyBytes]": ("dynamic_queue", None, None),
        }
        for mnemonic, (region, index, queue_index) in cases.items():
            decoded = addressing.decode(addressing.resolve(mnemonic))
            assert decoded.region == region
            if index is not None:
                assert decoded.index == index
            if queue_index is not None:
                assert decoded.queue_index == queue_index

    def test_decode_out_of_range(self):
        with pytest.raises(AddressError):
            addressing.decode(-1)
        with pytest.raises(AddressError):
            addressing.decode(0x10000)

    def test_unmapped_hole_rejected(self):
        with pytest.raises(AddressError):
            addressing.decode(0xF000)

    def test_rx_fields_are_input_port_relative(self):
        rx = addressing.LINK_FIELDS["RX-Utilization"]
        tx = addressing.LINK_FIELDS["TX-Utilization"]
        assert addressing.is_dynamic_rx_field(rx)
        assert not addressing.is_dynamic_rx_field(tx)


class TestDescribe:
    def test_describe_roundtrips_with_resolve(self):
        for mnemonic in ("[Switch:SwitchID]", "[Link$2:TX-Bytes]", "[Queue:QueueOccupancy]",
                         "[PacketMetadata:OutputPort]", "[Stage$1:Reg3]"):
            address = addressing.resolve(mnemonic)
            assert addressing.resolve(addressing.describe(address)) == address
