"""Tests for traffic generators and the TCP model."""

import pytest

from repro.net.flows import MessageWorkload, RateLimitedFlow, ThroughputMeter, next_flow_id
from repro.net.link import mbps
from repro.net.packet import udp_packet
from repro.net.sim import Simulator
from repro.net.tcp import TcpConnection
from repro.net.topology import Network, build_dumbbell


def two_hosts(rate=mbps(10)):
    net = Network(Simulator())
    net.add_host("a")
    net.add_host("b")
    net.add_switch("s")
    net.connect("a", "s", rate_bps=rate)
    net.connect("b", "s", rate_bps=rate)
    net.install_shortest_path_routes()
    return net.sim, net


class TestRateLimitedFlow:
    def test_rate_is_respected(self):
        sim, net = two_hosts()
        flow = RateLimitedFlow(sim, net.hosts["a"], "b", rate_bps=2e6,
                               packet_payload_bytes=1000)
        sim.run(until=1.0)
        sent_bps = flow.bytes_sent * 8
        assert sent_bps == pytest.approx(2e6, rel=0.05)

    def test_set_rate_changes_pacing(self):
        sim, net = two_hosts()
        flow = RateLimitedFlow(sim, net.hosts["a"], "b", rate_bps=1e6)
        sim.run(until=0.5)
        packets_at_slow = flow.packets_sent
        flow.set_rate(4e6)
        sim.run(until=1.0)
        assert flow.packets_sent - packets_at_slow > 2 * packets_at_slow

    def test_stop_and_stop_time(self):
        sim, net = two_hosts()
        flow = RateLimitedFlow(sim, net.hosts["a"], "b", rate_bps=1e6, stop_time=0.2)
        sim.run(until=1.0)
        total = flow.packets_sent
        assert total * 1042 * 8 <= 1e6 * 0.25
        flow.stop()
        assert not flow.running

    def test_invalid_rate_rejected(self):
        sim, net = two_hosts()
        with pytest.raises(ValueError):
            RateLimitedFlow(sim, net.hosts["a"], "b", rate_bps=0)
        flow = RateLimitedFlow(sim, net.hosts["a"], "b", rate_bps=1e6)
        with pytest.raises(ValueError):
            flow.set_rate(-1)

    def test_vlan_tag_applied_to_packets(self):
        sim, net = two_hosts()
        net.hosts["b"].keep_received_log = True
        flow = RateLimitedFlow(sim, net.hosts["a"], "b", rate_bps=1e6, vlan=0)
        flow.set_vlan(3)
        sim.run(until=0.1)
        assert all(p.vlan == 3 for p in net.hosts["b"].received_log)

    def test_flow_ids_unique(self):
        assert next_flow_id() != next_flow_id()


class TestMessageWorkload:
    def test_offered_load_approximately_respected(self):
        sim = Simulator()
        topo = build_dumbbell(sim, link_rate_bps=mbps(10))
        hosts = [topo.network.hosts[name] for name in topo.host_names]
        workload = MessageWorkload(sim, hosts, link_rate_bps=mbps(10), offered_load=0.3,
                                   message_bytes=10_000, seed=3)
        sim.run(until=2.0)
        offered_bps = sum(m.size_bytes for m in workload.messages_sent) * 8 / 2.0
        expected = 0.3 * mbps(10) * len(hosts)
        assert offered_bps == pytest.approx(expected, rel=0.3)

    def test_messages_split_into_mtu_packets(self):
        sim = Simulator()
        topo = build_dumbbell(sim, link_rate_bps=mbps(10))
        hosts = [topo.network.hosts[name] for name in topo.host_names]
        workload = MessageWorkload(sim, hosts, link_rate_bps=mbps(10),
                                   message_bytes=10_000, packet_payload_bytes=1000, seed=1)
        sim.run(until=0.5)
        assert workload.messages_sent
        assert all(m.packets == 10 for m in workload.messages_sent)

    def test_parameter_validation(self):
        sim = Simulator()
        topo = build_dumbbell(sim)
        hosts = [topo.network.hosts[name] for name in topo.host_names]
        with pytest.raises(ValueError):
            MessageWorkload(sim, hosts, link_rate_bps=mbps(10), offered_load=0.0)
        with pytest.raises(ValueError):
            MessageWorkload(sim, hosts[:1], link_rate_bps=mbps(10))

    def test_deterministic_with_seed(self):
        def run(seed):
            sim = Simulator()
            topo = build_dumbbell(sim, link_rate_bps=mbps(10))
            hosts = [topo.network.hosts[name] for name in topo.host_names]
            workload = MessageWorkload(sim, hosts, link_rate_bps=mbps(10), seed=seed)
            sim.run(until=0.5)
            return [(m.src, m.dst, round(m.created_at, 9)) for m in workload.messages_sent]
        assert run(7) == run(7)
        assert run(7) != run(8)


class TestThroughputMeter:
    def test_windows_and_mean(self):
        sim = Simulator()
        meter = ThroughputMeter(sim, window_s=0.1)
        packet = udp_packet("a", "b", 958)      # 1000 B
        for i in range(10):
            sim.schedule(0.01 + i * 0.01, meter.on_packet, packet)
        sim.run(until=0.35)
        meter.stop()
        assert len(meter.windows) == 3
        assert meter.total_packets == 10
        assert meter.windows[0][1] == pytest.approx(10 * 1000 * 8 / 0.1, rel=0.2)
        assert meter.mean_throughput_bps(skip_windows=1) >= 0


class TestTcp:
    def test_finite_transfer_completes(self):
        sim, net = two_hosts(rate=mbps(10))
        connection = TcpConnection(sim, net.hosts["a"], net.hosts["b"], total_packets=50)
        sim.run(until=5.0)
        assert connection.finished
        assert connection.stats.completed_at is not None
        assert connection.stats.packets_delivered >= 50

    def test_long_lived_flow_fills_the_link(self):
        sim, net = two_hosts(rate=mbps(10))
        connection = TcpConnection(sim, net.hosts["a"], net.hosts["b"])
        sim.run(until=3.0)
        goodput = connection.goodput_bps(3.0)
        assert goodput > 0.5 * mbps(10)

    def test_loss_triggers_retransmission_and_cwnd_reduction(self):
        # A tiny switch queue forces drops once the window opens up.
        net = Network(Simulator())
        net.add_host("a")
        net.add_host("b")
        net.add_switch("s")
        net.connect("a", "s", rate_bps=mbps(50))
        net.connect("b", "s", rate_bps=mbps(5), queue_capacity_packets=5)
        net.install_shortest_path_routes()
        connection = TcpConnection(net.sim, net.hosts["a"], net.hosts["b"])
        net.sim.run(until=3.0)
        assert connection.stats.retransmissions > 0
        assert connection.cwnd < 200

    def test_ack_overhead_in_paper_range(self):
        sim, net = two_hosts(rate=mbps(10))
        connection = TcpConnection(sim, net.hosts["a"], net.hosts["b"])
        sim.run(until=3.0)
        overhead = connection.overhead_fraction()
        assert 0.005 < overhead < 0.035
