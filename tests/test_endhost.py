"""Tests for the end-host stack: filters, control plane, shim, deployment."""

import pytest

from repro.core import addressing
from repro.core.compiler import compile_tpp
from repro.core.exceptions import AccessControlError
from repro.endhost import (Aggregator, Collector, PacketFilter, PiggybackApplication,
                           TPPControlPlane, deploy, install_stacks, match_all)
from repro.endhost.filters import FilterEntry, FilterTable
from repro.net.link import mbps
from repro.net.packet import udp_packet
from repro.net.sim import Simulator
from repro.net.topology import build_dumbbell


@pytest.fixture()
def dumbbell():
    sim = Simulator()
    topo = build_dumbbell(sim, link_rate_bps=mbps(10))
    stacks = install_stacks(topo.network)
    return sim, topo.network, stacks


class TestPacketFilter:
    def test_empty_filter_matches_everything(self):
        assert match_all().matches(udp_packet("a", "b", 10))

    def test_field_matching(self):
        packet = udp_packet("a", "b", 10, dport=80, flow_id=3)
        assert PacketFilter(dst="b", dport=80).matches(packet)
        assert not PacketFilter(dst="c").matches(packet)
        assert not PacketFilter(protocol="tcp").matches(packet)
        assert PacketFilter(dport_range=(70, 90)).matches(packet)
        assert not PacketFilter(dport_range=(90, 100)).matches(packet)
        assert PacketFilter(flow_id=3).matches(packet)

    def test_sampling_frequency_one_stamps_everything(self):
        entry = FilterEntry(filter=match_all(), app_id=1,
                            tpp_template=compile_tpp("PUSH [Switch:SwitchID]"))
        packet = udp_packet("a", "b", 10)
        assert all(entry.should_stamp(packet) for _ in range(5))

    def test_deterministic_sampling_every_nth(self):
        entry = FilterEntry(filter=match_all(), app_id=1,
                            tpp_template=compile_tpp("PUSH [Switch:SwitchID]"),
                            sample_frequency=4)
        packet = udp_packet("a", "b", 10)
        stamps = [entry.should_stamp(packet) for _ in range(12)]
        assert sum(stamps) == 3

    def test_invalid_sampling_rejected(self):
        with pytest.raises(ValueError):
            FilterEntry(filter=match_all(), app_id=1, tpp_template=None, sample_frequency=0)

    def test_filter_table_priority_and_first_match(self):
        table = FilterTable()
        low = FilterEntry(filter=match_all(), app_id=1,
                          tpp_template=compile_tpp("PUSH [Switch:SwitchID]"), priority=0)
        high = FilterEntry(filter=PacketFilter(dport=80), app_id=2,
                           tpp_template=compile_tpp("PUSH [Switch:SwitchID]"), priority=5)
        table.install(low)
        table.install(high)
        assert table.match(udp_packet("a", "b", 10, dport=80)) is high
        assert table.match(udp_packet("a", "b", 10, dport=81)) is low
        assert table.remove_app(2) == 1
        assert table.match(udp_packet("a", "b", 10, dport=80)) is low


class TestControlPlane:
    def test_application_registration(self):
        cp = TPPControlPlane()
        app = cp.register_application("monitor")
        assert app.app_id in cp.applications
        assert app.grants == []

    def test_link_register_allocation_is_exclusive(self):
        cp = TPPControlPlane()
        first = cp.register_application("one")
        second = cp.register_application("two")
        r1 = cp.allocate_link_register(first)
        r2 = cp.allocate_link_register(second)
        assert r1 != r2

    def test_register_exhaustion(self):
        cp = TPPControlPlane()
        app = cp.register_application("greedy")
        for _ in range(cp.NUM_LINK_REGISTERS):
            cp.allocate_link_register(app)
        with pytest.raises(AccessControlError):
            cp.allocate_link_register(app)

    def test_release_returns_registers(self):
        cp = TPPControlPlane()
        app = cp.register_application("temp")
        register = cp.allocate_link_register(app)
        cp.release_application(app.app_id)
        other = cp.register_application("next")
        assert cp.allocate_link_register(other) == register

    def test_validate_read_only_tpp(self):
        cp = TPPControlPlane()
        app = cp.register_application("reader")
        tpp = compile_tpp("PUSH [Switch:SwitchID]").tpp
        cp.validate(app.app_id, tpp)
        assert tpp.app_id == app.app_id

    def test_validate_rejects_unauthorised_write(self):
        cp = TPPControlPlane()
        app = cp.register_application("writer")
        tpp = compile_tpp("STORE [Link:AppSpecific_1], [Packet:Hop[0]]").tpp
        with pytest.raises(AccessControlError):
            cp.validate(app.app_id, tpp)

    def test_validate_accepts_write_within_grant(self):
        cp = TPPControlPlane()
        app = cp.register_application("rcp")
        register = cp.allocate_link_register(app)
        tpp = compile_tpp(f"STORE [Link:AppSpecific_{register}], [Packet:Hop[0]]").tpp
        cp.validate(app.app_id, tpp)

    def test_global_write_disable(self):
        cp = TPPControlPlane(writes_allowed=False)
        app = cp.register_application("rcp")
        register = cp.allocate_link_register(app)
        tpp = compile_tpp(f"STORE [Link:AppSpecific_{register}], [Packet:Hop[0]]").tpp
        with pytest.raises(AccessControlError):
            cp.validate(app.app_id, tpp)

    def test_unknown_app_rejected(self):
        cp = TPPControlPlane()
        with pytest.raises(AccessControlError):
            cp.validate(999, compile_tpp("PUSH [Switch:SwitchID]").tpp)

    def test_explicit_grant(self):
        cp = TPPControlPlane()
        app = cp.register_application("custom")
        address = addressing.resolve("[Stage$1:Reg0]")
        cp.grant(app, "write", address, address)
        tpp = compile_tpp("STORE [Stage$1:Reg0], [Packet:Hop[0]]").tpp
        cp.validate(app.app_id, tpp)
        with pytest.raises(ValueError):
            cp.grant(app, "execute", 0, 1)


class TestDataplaneShim:
    def test_add_tpp_attaches_to_matching_packets(self, dumbbell):
        sim, net, stacks = dumbbell
        cp = stacks["h0"].control_plane
        app = cp.register_application("mon")
        compiled = compile_tpp("PUSH [Switch:SwitchID]", app_id=app.app_id)
        stacks["h0"].agent.add_tpp(app.app_id, PacketFilter(dst="h5"), compiled.tpp)
        net.hosts["h0"].send(udp_packet("h0", "h5", 100, dport=5000))
        net.hosts["h0"].send(udp_packet("h0", "h4", 100, dport=5000))
        sim.run(until=0.05)
        assert stacks["h0"].shim.tpps_attached == 1

    def test_add_tpp_rejected_without_grant_is_not_installed(self, dumbbell):
        _, _, stacks = dumbbell
        cp = stacks["h0"].control_plane
        app = cp.register_application("writer")
        compiled = compile_tpp("POP [Link:AppSpecific_0]", app_id=app.app_id)
        with pytest.raises(AccessControlError):
            stacks["h0"].agent.add_tpp(app.app_id, match_all(), compiled.tpp)
        assert len(stacks["h0"].shim.filters) == 0
        assert stacks["h0"].agent.api_failures == 1

    def test_receiver_strips_tpp_before_delivery(self, dumbbell):
        sim, net, stacks = dumbbell
        cp = stacks["h0"].control_plane
        app = cp.register_application("mon")
        compiled = compile_tpp("PUSH [Switch:SwitchID]", app_id=app.app_id)
        stacks["h0"].agent.add_tpp(app.app_id, match_all(), compiled.tpp)
        net.hosts["h5"].keep_received_log = True
        net.hosts["h0"].send(udp_packet("h0", "h5", 100, dport=7777))
        sim.run(until=0.05)
        delivered = net.hosts["h5"].received_log[0]
        assert delivered.tpp is None                      # application is oblivious
        assert stacks["h5"].shim.tpps_completed == 1

    def test_completed_tpp_dispatched_to_bound_aggregator(self, dumbbell):
        sim, net, stacks = dumbbell
        cp = stacks["h0"].control_plane
        app = cp.register_application("mon")
        compiled = compile_tpp("PUSH [Switch:SwitchID]", app_id=app.app_id)
        seen = []
        stacks["h5"].shim.bind_application(app.app_id,
                                           on_tpp=lambda tpp, pkt: seen.append(tpp))
        stacks["h0"].agent.add_tpp(app.app_id, match_all(), compiled.tpp)
        net.hosts["h0"].send(udp_packet("h0", "h5", 100, dport=7777))
        sim.run(until=0.05)
        assert len(seen) == 1
        assert seen[0].hop_number == 2

    def test_echo_to_source(self, dumbbell):
        sim, net, stacks = dumbbell
        cp = stacks["h0"].control_plane
        app = cp.register_application("rcp-like")
        compiled = compile_tpp("PUSH [Switch:SwitchID]", app_id=app.app_id)
        returned = []
        stacks["h0"].shim.bind_application(app.app_id,
                                           on_tpp=lambda tpp, pkt: returned.append(tpp))
        stacks["h5"].shim.bind_application(app.app_id, echo_to_source=True)
        stacks["h0"].agent.add_tpp(app.app_id, match_all(), compiled.tpp)
        net.hosts["h0"].send(udp_packet("h0", "h5", 100, dport=7777))
        sim.run(until=0.1)
        assert len(returned) == 1
        assert returned[0].pushed_words() == [net.switches["s0"].switch_id,
                                              net.switches["s1"].switch_id]

    def test_only_one_tpp_per_packet(self, dumbbell):
        sim, net, stacks = dumbbell
        cp = stacks["h0"].control_plane
        first = cp.register_application("one")
        second = cp.register_application("two")
        stacks["h0"].agent.add_tpp(first.app_id, match_all(),
                                   compile_tpp("PUSH [Switch:SwitchID]").tpp, priority=5)
        stacks["h0"].agent.add_tpp(second.app_id, match_all(),
                                   compile_tpp("PUSH [Switch:VersionNumber]").tpp, priority=1)
        net.hosts["h0"].send(udp_packet("h0", "h5", 100, dport=1))
        sim.run(until=0.05)
        assert stacks["h0"].shim.tpps_attached == 1


class TestExecutor:
    def test_reliable_execution_returns_executed_tpp(self, dumbbell):
        sim, net, stacks = dumbbell
        results = []
        tpp = compile_tpp("PUSH [Switch:SwitchID]",
                          app_id=stacks["h0"].executor_app_id).tpp
        stacks["h0"].executor.execute(tpp, "h5", results.append)
        sim.run(until=0.2)
        assert len(results) == 1
        assert results[0].pushed_words() == [1, 2]

    def test_timeout_and_retries_then_failure(self, dumbbell):
        sim, net, stacks = dumbbell
        net.link_between("s0", "s1").set_down()
        results = []
        tpp = compile_tpp("PUSH [Switch:SwitchID]",
                          app_id=stacks["h0"].executor_app_id).tpp
        stacks["h0"].executor.execute(tpp, "h5", results.append, retries=2, timeout_s=0.01)
        sim.run(until=1.0)
        assert results == [None]
        assert stacks["h0"].executor.stats.retries == 2
        assert stacks["h0"].executor.stats.failures == 1

    def test_retry_succeeds_after_transient_failure(self, dumbbell):
        sim, net, stacks = dumbbell
        link = net.link_between("s0", "s1")
        link.set_down()
        sim.schedule(0.05, link.set_up)
        results = []
        tpp = compile_tpp("PUSH [Switch:SwitchID]",
                          app_id=stacks["h0"].executor_app_id).tpp
        stacks["h0"].executor.execute(tpp, "h5", results.append, retries=5, timeout_s=0.03)
        sim.run(until=1.0)
        assert len(results) == 1 and results[0] is not None

    def test_targeted_execution_runs_on_one_switch_only(self, dumbbell):
        sim, net, stacks = dumbbell
        results = []
        target = net.switches["s1"].switch_id
        stacks["h0"].executor.execute_targeted(
            ["Switch:SwitchID", "Link:QueueSizePackets"], target, "h5", results.append)
        sim.run(until=0.2)
        hops = results[0].words_by_hop(4)
        assert hops[0][2] == 0            # first hop (s0): CEXEC failed, nothing loaded
        assert hops[1][2] == target       # second hop (s1): statistics collected

    def test_scatter_gather_collects_all_targets(self, dumbbell):
        sim, net, stacks = dumbbell
        collected = {}
        targets = {net.switches["s0"].switch_id: "h5",
                   net.switches["s1"].switch_id: "h5"}
        stacks["h0"].executor.scatter_gather(["Switch:SwitchID"], targets, collected.update)
        sim.run(until=0.3)
        assert set(collected) == set(targets)
        assert all(tpp is not None for tpp in collected.values())

    def test_split_statistics(self):
        from repro.endhost.executor import TPPExecutor
        chunks = TPPExecutor.split_statistics([f"stat{i}" for i in range(12)])
        assert [len(chunk) for chunk in chunks] == [5, 5, 2]

    def test_execute_split_combines_results(self, dumbbell):
        sim, net, stacks = dumbbell
        results = []
        stats = ["Switch:SwitchID", "Switch:VersionNumber", "Link:TX-Bytes",
                 "Link:RX-Bytes", "Queue:QueueOccupancy", "Switch:NumPorts"]
        stacks["h0"].executor.execute_split(stats, "h5", results.append)
        sim.run(until=0.3)
        assert len(results) == 1
        assert len(results[0]) == 2
        assert all(tpp is not None for tpp in results[0])

    def test_reflective_execution_turns_around_at_target_switch(self, dumbbell):
        sim, net, stacks = dumbbell
        results = []
        target = net.switches["s0"].switch_id
        stacks["h0"].executor.execute_targeted(["Switch:SwitchID"], target, "h5",
                                               results.append, reflect=True)
        sim.run(until=0.2)
        assert len(results) == 1 and results[0] is not None
        # Only the target switch executed before the probe was reflected home.
        assert results[0].hop_number >= 1
        assert net.hosts["h5"].packets_received == 0


class TestDeploymentFramework:
    def test_deploy_installs_rules_and_aggregators(self, dumbbell):
        sim, net, stacks = dumbbell
        collector = Collector()
        descriptor = PiggybackApplication(
            name="test-app", packet_filter=PacketFilter(protocol="udp"),
            compiled_tpp=compile_tpp("PUSH [Switch:SwitchID]"),
            aggregator_factory=Aggregator, collector=collector)
        deployed = deploy(descriptor, stacks, stacks["h0"].control_plane)
        assert len(deployed.aggregators) == len(stacks)
        net.hosts["h0"].send(udp_packet("h0", "h5", 100, dport=9))
        sim.run(until=0.05)
        assert deployed.aggregators["h5"].tpps_received == 1
        deployed.push_all_summaries()
        assert len(collector) == len(stacks)

    def test_deploy_subset_of_hosts(self, dumbbell):
        sim, net, stacks = dumbbell
        descriptor = PiggybackApplication(
            name="subset", packet_filter=match_all(),
            compiled_tpp=compile_tpp("PUSH [Switch:SwitchID]"),
            aggregator_factory=Aggregator)
        deployed = deploy(descriptor, stacks, stacks["h0"].control_plane,
                          sender_hosts=["h0"], receiver_hosts=["h5"])
        assert set(deployed.aggregators) == {"h5"}
        assert len(stacks["h1"].shim.filters) == 0
        assert len(stacks["h0"].shim.filters) == 1


class TestAggregatorTruncationDetection:
    def test_out_of_room_tpps_are_counted_separately(self):
        from repro.core.isa import Instruction, Opcode
        from repro.core.packet_format import AddressingMode, make_tpp

        aggregator = Aggregator("h0")
        fine = make_tpp([Instruction(Opcode.LOAD, 0x0000, packet_offset=0)],
                        num_hops=4, mode=AddressingMode.HOP)
        fine.hop_number = 4                      # exactly filled, nothing lost
        truncated = make_tpp([Instruction(Opcode.LOAD, 0x0000, packet_offset=0)],
                             num_hops=4, mode=AddressingMode.HOP)
        truncated.hop_number = 6                 # visited more hops than it can hold
        aggregator.on_tpp(fine, udp_packet("a", "h0", 100))
        aggregator.on_tpp(truncated, udp_packet("a", "h0", 100))
        assert aggregator.tpps_received == 2
        assert aggregator.tpps_truncated == 1
        summary = aggregator.summarize()
        assert summary["tpps_truncated"] == 1

    def test_stack_tpp_out_of_room_only_past_capacity(self):
        tpp = compile_tpp("PUSH [Switch:SwitchID]", num_hops=2).tpp
        assert not tpp.out_of_room
        tpp.hop_number = 2                       # exactly filled: nothing lost
        tpp.stack_pointer = len(tpp.memory)
        assert not tpp.out_of_room
        tpp.hop_number = 3                       # one hop could not record
        assert tpp.out_of_room

    def test_stack_tpp_with_skipped_pushes_not_misreported(self):
        # Hops whose PUSH was skipped for *missing switch memory* leave free
        # room behind; visiting many hops must not count as truncation.
        tpp = compile_tpp("PUSH [Switch:SwitchID]", num_hops=4).tpp
        tpp.hop_number = 6                       # visited 6 switches...
        tpp.stack_pointer = 3 * tpp.word_bytes   # ...but only 3 had the stat
        assert not tpp.out_of_room
