"""Tests for ports, egress queues and links."""

import pytest

from repro.net.link import Link, gbps, mbps
from repro.net.node import Host
from repro.net.packet import udp_packet
from repro.net.port import (DROP_CORRUPTED, DROP_LINK_DOWN, DROP_PEER_DOWN,
                            DROP_QUEUE_OVERFLOW, EgressQueue)
from repro.net.sim import Simulator


def _pair(rate=mbps(100), delay=1e-6, queue_bytes=512 * 1024, queue_packets=None):
    sim = Simulator()
    a, b = Host(sim, "a"), Host(sim, "b")
    pa = a.add_port(queue_bytes, queue_packets)
    pb = b.add_port(queue_bytes, queue_packets)
    link = Link(pa, pb, rate_bps=rate, delay_s=delay)
    return sim, a, b, link


class TestEgressQueue:
    def test_fifo_order(self):
        queue = EgressQueue()
        first, second = udp_packet("a", "b", 10), udp_packet("a", "b", 10)
        queue.enqueue(first)
        queue.enqueue(second)
        assert queue.dequeue() is first
        assert queue.dequeue() is second

    def test_occupancy_tracks_bytes_and_packets(self):
        queue = EgressQueue()
        packet = udp_packet("a", "b", 100)
        queue.enqueue(packet)
        assert queue.occupancy_packets == 1
        assert queue.occupancy_bytes == packet.size
        queue.dequeue()
        assert queue.occupancy_packets == 0
        assert queue.occupancy_bytes == 0

    def test_byte_capacity_drop(self):
        queue = EgressQueue(capacity_bytes=200)
        assert queue.enqueue(udp_packet("a", "b", 100))
        assert not queue.enqueue(udp_packet("a", "b", 100))
        assert queue.packets_dropped_total == 1

    def test_packet_capacity_drop(self):
        queue = EgressQueue(capacity_packets=2)
        assert queue.enqueue(udp_packet("a", "b", 10))
        assert queue.enqueue(udp_packet("a", "b", 10))
        assert not queue.enqueue(udp_packet("a", "b", 10))
        assert queue.packets_dropped_total == 1

    def test_dequeue_empty_returns_none(self):
        assert EgressQueue().dequeue() is None

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            EgressQueue(capacity_bytes=0)


class TestLink:
    def test_invalid_rate_rejected(self):
        sim = Simulator()
        a, b = Host(sim, "a"), Host(sim, "b")
        with pytest.raises(ValueError):
            Link(a.add_port(), b.add_port(), rate_bps=0)

    def test_other_end(self):
        _, a, b, link = _pair()
        assert link.other_end(a.ports[0]) is b.ports[0]
        assert link.other_end(b.ports[0]) is a.ports[0]

    def test_unit_helpers(self):
        assert mbps(100) == 100e6
        assert gbps(10) == 10e9


class TestTransmission:
    def test_packet_delivered_after_serialisation_and_propagation(self):
        sim, a, b, link = _pair(rate=mbps(100), delay=10e-6)
        packet = udp_packet("a", "b", 958)     # 1000 B on the wire
        b.keep_received_log = True
        a.send(packet)
        sim.run_until_idle()
        assert b.packets_received == 1
        expected = 1000 * 8 / mbps(100) + 10e-6
        assert packet.delivered_at == pytest.approx(expected)

    def test_back_to_back_packets_serialise(self):
        sim, a, b, _ = _pair(rate=mbps(10), delay=0.0)
        for _ in range(3):
            a.send(udp_packet("a", "b", 958))
        sim.run_until_idle()
        assert b.packets_received == 3
        # Three 1000-byte packets at 10 Mb/s take 2.4 ms to drain.
        assert sim.now == pytest.approx(3 * 1000 * 8 / mbps(10))

    def test_queue_overflow_drops_excess(self):
        sim, a, b, _ = _pair(rate=mbps(10), queue_packets=2)
        # One packet in flight + two queued fit; the rest are dropped.
        for _ in range(10):
            a.send(udp_packet("a", "b", 958))
        sim.run_until_idle()
        assert b.packets_received == 3
        assert a.ports[0].queue.packets_dropped_total == 7

    def test_link_down_drops_packets(self):
        sim, a, b, link = _pair()
        link.set_down()
        packet = udp_packet("a", "b", 100)
        assert a.send(packet) is False
        assert packet.dropped
        link.set_up()
        assert a.send(udp_packet("a", "b", 100)) is True

    def test_counters_updated(self):
        sim, a, b, link = _pair()
        a.send(udp_packet("a", "b", 958))
        sim.run_until_idle()
        assert a.ports[0].tx_packets == 1
        assert a.ports[0].tx_bytes == 1000
        assert b.ports[0].rx_packets == 1
        assert link.total_packets == 1

    def test_drop_categories_on_transmit_path(self):
        sim, a, b, link = _pair(queue_packets=1)
        link.set_down()
        assert a.send(udp_packet("a", "b", 100)) is False
        link.set_up()
        for _ in range(4):                    # 1 in flight + 1 queued fit
            a.send(udp_packet("a", "b", 958))
        sim.run_until_idle()
        assert a.ports[0].drops_by_reason == {DROP_LINK_DOWN: 1,
                                              DROP_QUEUE_OVERFLOW: 2}

    def test_peer_down_drop_charged_to_sender(self):
        sim, a, b, link = _pair()
        packet = udp_packet("a", "b", 958)
        a.send(packet)
        b.ports[0].up = False                 # fails mid-flight
        sim.run_until_idle()
        assert packet.dropped
        assert packet.drop_reason == "peer port down"
        assert a.ports[0].drops_by_reason == {DROP_PEER_DOWN: 1}
        assert b.ports[0].rx_packets == 0
        # The packet did serialise: tx and link accounting stand.
        assert a.ports[0].tx_packets == 1
        assert link.total_packets == 1


class TestDeliverBurst:
    """Failure-path accounting for the batched injection entry point.

    The asymmetry under test: a send-side failure (link or sending port
    down) drops *before* any serialisation — tx/link counters must not
    move — while a receive-side failure (peer port down, corruption)
    happens *after* the burst crossed the wire, so tx/link counters stand
    and only the peer's rx side stays silent.
    """

    def _burst(self, n=3):
        return [udp_packet("a", "b", 100) for _ in range(n)]

    def test_send_side_link_down(self):
        sim, a, b, link = _pair()
        link.set_down()
        packets = self._burst()
        assert link.deliver_burst(packets, a.ports[0]) == 0
        assert a.ports[0].queue.packets_dropped_total == 3
        assert a.ports[0].drops_by_reason == {DROP_LINK_DOWN: 3}
        assert a.ports[0].tx_packets == 0
        assert link.total_packets == 0
        assert b.ports[0].rx_packets == 0
        assert all(p.dropped and "link down" in p.drop_reason for p in packets)

    def test_send_side_port_down(self):
        sim, a, b, link = _pair()
        a.ports[0].up = False
        assert link.deliver_burst(self._burst(), a.ports[0]) == 0
        assert a.ports[0].drops_by_reason == {DROP_LINK_DOWN: 3}
        assert link.total_packets == 0

    def test_receive_side_peer_down(self):
        sim, a, b, link = _pair()
        b.ports[0].up = False
        packets = self._burst()
        assert link.deliver_burst(packets, a.ports[0]) == 0
        # The burst was serialised before the receive-side loss.
        assert a.ports[0].tx_packets == 3
        assert link.total_packets == 3
        assert a.ports[0].queue.packets_dropped_total == 0
        assert a.ports[0].drops_by_reason == {DROP_PEER_DOWN: 3}
        assert b.ports[0].rx_packets == 0
        assert all(p.drop_reason == "peer port down" for p in packets)

    def test_corrupting_link_filters_burst(self):
        sim, a, b, link = _pair()
        link.set_loss(1.0)
        packets = self._burst()
        assert link.deliver_burst(packets, a.ports[0]) == 0
        assert a.ports[0].tx_packets == 3
        assert link.total_packets == 3
        assert link.packets_corrupted == 3
        assert b.ports[0].rx_packets == 0
        assert b.ports[0].error_packets == 3
        assert b.ports[0].drops_by_reason == {DROP_CORRUPTED: 3}
        assert all("corrupted on" in p.drop_reason for p in packets)

    def test_partial_corruption_delivers_survivors(self):
        sim, a, b, link = _pair()
        link.set_loss(0.5)
        delivered = link.deliver_burst(self._burst(40), a.ports[0])
        assert delivered == 40 - link.packets_corrupted
        assert 0 < link.packets_corrupted < 40
        assert b.ports[0].rx_packets == delivered
        assert b.ports[0].error_packets == link.packets_corrupted


class TestDegradation:
    def test_set_loss_validates_rate(self):
        _, _, _, link = _pair()
        with pytest.raises(ValueError):
            link.set_loss(1.5)
        with pytest.raises(ValueError):
            link.set_loss(-0.1)

    def test_transmit_path_corruption(self):
        sim, a, b, link = _pair()
        link.set_loss(1.0)
        packet = udp_packet("a", "b", 958)
        a.send(packet)
        sim.run_until_idle()
        assert packet.dropped and "corrupted on" in packet.drop_reason
        assert b.ports[0].rx_packets == 0
        assert b.ports[0].error_packets == 1
        assert b.ports[0].drops_by_reason == {DROP_CORRUPTED: 1}
        assert a.ports[0].tx_packets == 1      # it did serialise
        assert link.packets_corrupted == 1
        assert link.bytes_corrupted == 1000

    def test_clear_loss_restores_delivery(self):
        sim, a, b, link = _pair()
        link.set_loss(1.0)
        link.clear_loss()
        a.send(udp_packet("a", "b", 958))
        sim.run_until_idle()
        assert b.packets_received == 1

    def test_default_rng_is_deterministic_per_link_name(self):
        draws = []
        for _ in range(2):
            sim, a, b, link = _pair()
            link.set_loss(0.5)
            outcomes = [link.corrupt(udp_packet("a", "b", 10))
                        for _ in range(32)]
            draws.append(outcomes)
        assert draws[0] == draws[1]

    def test_transitions_counted_and_timestamped(self):
        sim, a, b, link = _pair()
        assert link.down_transitions == link.up_transitions == 0
        assert link.last_transition_time is None
        sim.schedule_at(0.5, link.set_down)
        sim.schedule_at(0.75, link.set_up)
        sim.run(until=1.0)
        assert link.down_transitions == 1
        assert link.up_transitions == 1
        assert link.last_transition_time == pytest.approx(0.75)

    def test_repeated_transitions_do_not_double_count(self):
        _, _, _, link = _pair()
        link.set_down()
        stamp = link.last_transition_time
        link.set_down()                        # already down: no-op
        assert link.down_transitions == 1
        assert link.last_transition_time == stamp
        link.set_up()
        link.set_up()                          # already up: no-op
        assert link.up_transitions == 1
